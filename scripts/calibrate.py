"""Calibration readout against the paper's headline statistics.

Thin wrapper over :mod:`repro.fleet.calibration` (which the test suite
also enforces).  Run after touching the workload catalog, demand
model, or fluid buffer model:

    python scripts/calibrate.py [racks]
"""

import sys

from repro.fleet.calibration import check


def main(racks: int = 20) -> int:
    report = check(racks=racks)
    print(report.render())
    if report.ok:
        print("all targets in band")
        return 0
    print(f"OUT OF BAND: {', '.join(report.failures)}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 20))
