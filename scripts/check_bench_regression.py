#!/usr/bin/env python
"""Compare a fresh pytest-benchmark JSON run against a committed baseline.

CI runners are noisy shared machines, so this gate is deliberately
coarse: it fails only on *gross* regressions (default: a benchmark's
mean slowing by more than 5x), which catches accidental algorithmic
pessimizations (a vectorized path silently falling back to a Python
loop) without flaking on scheduler jitter.  Benchmarks present in only
one file are reported but never fatal, so adding or retiring a
benchmark does not require regenerating the baseline in the same
commit.

Ratios are compared only when the two runs come from the same machine
fingerprint (CPU brand + logical core count, as pytest-benchmark's
``machine_info`` records them): the committed baseline is from a 1-core
VM, and cross-machine ratios are meaningless rather than noisy.  On a
fingerprint mismatch the ratio gates are skipped with a warning;
``--require`` presence checks still apply (a gated benchmark must run
and pass its own asserted floor wherever CI lands).

Usage::

    python scripts/check_bench_regression.py BENCH_substrates.json bench_new.json
    python scripts/check_bench_regression.py baseline.json new.json --max-slowdown 3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text())
    means = {}
    for bench in data.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    return means


def machine_fingerprint(path: Path) -> tuple[str, int] | None:
    """(cpu brand, logical core count) from ``machine_info``, or None
    when the file predates fingerprinting / was stripped."""
    data = json.loads(path.read_text())
    cpu = data.get("machine_info", {}).get("cpu", {})
    brand = cpu.get("brand_raw")
    count = cpu.get("count")
    if not brand or not isinstance(count, int):
        return None
    return (str(brand), count)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("current", type=Path, help="freshly generated JSON")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=5.0,
        help="fail when current mean exceeds baseline mean by this factor",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="benchmark that must be present in the current run; its "
             "absence is fatal instead of a MISSING note (use for gated "
             "substrates like per-shard generation throughput)",
    )
    args = parser.parse_args()

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if not baseline:
        print(f"no benchmarks in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"no benchmarks in current run {args.current}", file=sys.stderr)
        return 2

    missing_required = [name for name in args.require if name not in current]
    if missing_required:
        print(
            f"required benchmark(s) absent from current run: "
            f"{', '.join(missing_required)}",
            file=sys.stderr,
        )
        return 1

    base_machine = machine_fingerprint(args.baseline)
    current_machine = machine_fingerprint(args.current)
    if base_machine is None or current_machine is None or base_machine != current_machine:
        print(
            "warning: machine fingerprint mismatch "
            f"(baseline {base_machine}, current {current_machine}); "
            "cross-machine ratios are meaningless — skipping slowdown "
            "gates (required-benchmark presence already checked)",
            file=sys.stderr,
        )
        return 0

    failures = []
    for name in sorted(baseline.keys() | current.keys()):
        if name not in baseline:
            print(f"NEW      {name}: {current[name] * 1e3:.2f} ms (no baseline)")
            continue
        if name not in current:
            print(f"MISSING  {name}: present only in baseline")
            continue
        ratio = current[name] / baseline[name]
        status = "OK"
        if ratio > args.max_slowdown:
            status = "REGRESSED"
            failures.append((name, ratio))
        print(
            f"{status:<8} {name}: {baseline[name] * 1e3:.2f} ms -> "
            f"{current[name] * 1e3:.2f} ms ({ratio:.2f}x)"
        )

    if failures:
        worst = max(failures, key=lambda item: item[1])
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.max_slowdown:.1f}x (worst: {worst[0]} at {worst[1]:.1f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
