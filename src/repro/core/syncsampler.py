"""SyncMillisampler: rack-synchronous collection (Section 4.4).

A centralized control plane sends data-collection requests to all
servers in a rack, schedules them to start at a specific future time
(far enough ahead that no periodic run is active, and with priority
over periodic collection), then — after all servers finish — fetches
the compressed runs, trims them to the common window, and linearly
interpolates them onto one uniform time base.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import SamplerError
from .alignment import align_runs
from .millisampler import Millisampler
from .run import MillisamplerRun, SyncRun
from .scheduler import RunScheduler
from .storage import HostRunStore


@dataclass
class SampledHost:
    """One server's sampling stack: the in-kernel sampler, the user-space
    scheduler, and the host-local run store."""

    sampler: Millisampler
    scheduler: RunScheduler
    store: HostRunStore
    _enabled_at: float | None = None
    #: sync_id of the run the sampler is currently recording (None for a
    #: periodic run), and the stored start time of each completed sync
    #: run — how ``assemble`` finds *the* sync run even when a
    #: clock-skewed periodic run landed nearby.
    _active_sync_id: str | None = None
    _sync_starts: dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.sampler.meta.host

    def sync_run_start(self, sync_id: str) -> float | None:
        """Stored start time of the run recorded for ``sync_id``, if the
        host produced one (None when it saw no traffic in the window)."""
        return self._sync_starts.get(sync_id)

    def poll(self, now: float) -> None:
        """User-space agent tick: start due runs, harvest completed ones."""
        sampler = self.sampler
        if sampler.enabled:
            start = sampler.start_time
            if start is not None and now >= start + sampler.duration:
                # The window elapsed with no packet past it to
                # self-disable the filter.
                sampler.finish(now)
            elif start is None and self._enabled_at is not None and (
                now >= self._enabled_at + sampler.duration
            ):
                # No traffic at all since enabling: abandon the run.
                sampler.finish(now)
        if not sampler.enabled and sampler.state.value == "disabled":
            if sampler.start_time is not None:
                run = sampler.read_run()
                self.store.store(run)
                if self._active_sync_id is not None:
                    self._sync_starts[self._active_sync_id] = run.meta.start_time
            sampler.detach()
            self._enabled_at = None
            self._active_sync_id = None
        due = self.scheduler.next_run(now)
        if due is not None:
            if sampler.state.value == "detached":
                sampler.attach()
            sampler.enable()
            self._enabled_at = now
            self._active_sync_id = due.sync_id if due.is_sync else None


@dataclass
class PendingCollection:
    """One in-flight SyncMillisampler request across a rack."""

    sync_id: str
    rack: str
    region: str
    start_time: float
    hosts: list[SampledHost]
    hour: int = 0


class SyncMillisampler:
    """Centralized SyncMillisampler control plane."""

    #: Minimum scheduling lead so no periodic run can be active at the
    #: requested start (one full run duration of slack).
    def __init__(self, lead_runs: float = 1.0) -> None:
        if lead_runs < 1.0:
            raise SamplerError("sync lead must cover at least one run duration")
        self.lead_runs = lead_runs
        self._ids = itertools.count()
        self._pending: dict[str, PendingCollection] = {}

    def request_collection(
        self,
        hosts: list[SampledHost],
        rack: str,
        region: str,
        start_time: float,
        now: float,
        hour: int = 0,
    ) -> str:
        """Ask every host in a rack to run at ``start_time``; returns the
        collection id used to assemble the result later."""
        if not hosts:
            raise SamplerError("a rack collection needs at least one host")
        durations = {host.sampler.duration for host in hosts}
        min_lead = self.lead_runs * max(durations)
        if start_time - now < min_lead:
            raise SamplerError(
                f"sync start must be at least {min_lead:.3f}s ahead "
                f"(requested lead {start_time - now:.3f}s)"
            )
        sync_id = f"sync-{next(self._ids)}"
        for host in hosts:
            host.scheduler.request_sync_run(start_time, sync_id, now)
        self._pending[sync_id] = PendingCollection(
            sync_id=sync_id,
            rack=rack,
            region=region,
            start_time=start_time,
            hosts=list(hosts),
            hour=hour,
        )
        return sync_id

    def assemble(self, sync_id: str) -> SyncRun:
        """Fetch each host's run for this collection, align, and build the
        rack-wide :class:`SyncRun`.  Call after every host finished."""
        pending = self._pending.pop(sync_id, None)
        if pending is None:
            raise SamplerError(f"unknown or already-assembled collection {sync_id!r}")

        runs: list[MillisamplerRun] = []
        for host in pending.hosts:
            # The host's agent recorded which stored run answered this
            # sync request — use that exact match when available.
            sync_start = host.sync_run_start(sync_id)
            if sync_start is not None:
                runs.append(host.store.load(sync_start))
                continue
            # Fallback (runs stored outside the poll loop, e.g. replayed
            # from disk): run start times are stamped by *host clocks*,
            # which may sit a sub-millisecond behind true time
            # (Section 4.5) — allow a small tolerance so a sync run is
            # not mistaken for absent, and pick the candidate closest to
            # the requested start rather than the earliest, which could
            # be a periodic run that began just before the sync window.
            tolerance = 50e-3
            candidates = [
                start
                for start in host.store.start_times()
                if start >= pending.start_time - tolerance
            ]
            if candidates:
                best = min(
                    candidates, key=lambda s: (abs(s - pending.start_time), s)
                )
                runs.append(host.store.load(best))
            else:
                # The host saw no packet during the window, so its
                # sampler never started: an idle server contributes an
                # all-zero run (it is data — zero contention — not an
                # error).
                sampler = host.sampler
                meta = sampler.meta.with_start(pending.start_time)
                runs.append(MillisamplerRun.empty(meta, sampler.buckets))

        aligned = align_runs(runs)
        return SyncRun(
            rack=pending.rack,
            region=pending.region,
            runs=aligned,
            hour=pending.hour,
        )

    @staticmethod
    def assemble_from_runs(
        rack: str, region: str, runs: list[MillisamplerRun], hour: int = 0
    ) -> SyncRun:
        """Align already-fetched runs into a :class:`SyncRun` (used by the
        fleet synthesizer and by offline analysis of stored data)."""
        return SyncRun(rack=rack, region=region, runs=align_runs(runs), hour=hour)

    def pending_ids(self) -> list[str]:
        return sorted(self._pending)
