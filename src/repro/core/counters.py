"""Per-CPU counter arrays for Millisampler.

Section 4.1: "Because processing happens on many CPU cores, to avoid
locks, we use per-cpu variables, which increases the memory requirement
to eliminate risk of contention."  Each measured value gets one 64-bit
counter per bucket per CPU; reading a run aggregates across CPUs.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import SamplerError


class CounterKind(enum.Enum):
    """The values Millisampler tallies per bucket (Section 4.2, Figure 2)."""

    IN_BYTES = "in"
    IN_RETX_BYTES = "in_retx"
    OUT_BYTES = "out"
    OUT_RETX_BYTES = "out_retx"
    IN_ECN_BYTES = "in_ecn"
    FLOW_SKETCH = "flow"


#: Counter kinds that tally byte volumes (everything except the sketch).
BYTE_COUNTER_KINDS = (
    CounterKind.IN_BYTES,
    CounterKind.IN_RETX_BYTES,
    CounterKind.OUT_BYTES,
    CounterKind.OUT_RETX_BYTES,
    CounterKind.IN_ECN_BYTES,
)


class PerCpuCounters:
    """A ``cpus x buckets`` array of 64-bit counters for one kind.

    Mirrors the eBPF per-cpu map: increments are lock-free because each
    CPU owns a row; aggregation sums rows at read-out time.
    """

    def __init__(self, cpus: int, buckets: int) -> None:
        if cpus <= 0 or buckets <= 0:
            raise SamplerError("counter dimensions must be positive")
        self.cpus = cpus
        self.buckets = buckets
        self._values = np.zeros((cpus, buckets), dtype=np.uint64)

    def add(self, cpu: int, bucket: int, amount: int) -> None:
        """Increment one counter; bounds are checked because a bad bucket
        index in the kernel would corrupt adjacent map entries."""
        if not 0 <= cpu < self.cpus:
            raise SamplerError(f"cpu {cpu} out of range [0, {self.cpus})")
        if not 0 <= bucket < self.buckets:
            raise SamplerError(f"bucket {bucket} out of range [0, {self.buckets})")
        if amount < 0:
            raise SamplerError("counters are monotonic; negative add rejected")
        self._values[cpu, bucket] += np.uint64(amount)

    def add_batch(self, cpus: np.ndarray, buckets: np.ndarray, amounts: np.ndarray) -> None:
        """Vectorized :meth:`add` for whole packet batches.

        ``np.add.at`` is the unbuffered scatter-add, so repeated
        ``(cpu, bucket)`` pairs accumulate exactly like sequential
        scalar adds.  Bounds are validated batch-wide up front for the
        same reason the scalar path checks them.
        """
        if len(cpus) == 0:
            return
        if cpus.min() < 0 or cpus.max() >= self.cpus:
            raise SamplerError(f"cpu out of range [0, {self.cpus})")
        if buckets.min() < 0 or buckets.max() >= self.buckets:
            raise SamplerError(f"bucket out of range [0, {self.buckets})")
        if amounts.min() < 0:
            raise SamplerError("counters are monotonic; negative add rejected")
        np.add.at(self._values, (cpus, buckets), amounts.astype(np.uint64))

    def aggregate(self) -> np.ndarray:
        """Sum across CPUs, yielding one value per bucket."""
        return self._values.sum(axis=0, dtype=np.uint64)

    def reset(self) -> None:
        """Zero all counters (between runs)."""
        self._values.fill(0)

    @property
    def nbytes(self) -> int:
        """In-kernel memory footprint of this map."""
        return self._values.nbytes


class CounterSet:
    """All Millisampler counters for one run.

    Byte counters are plain per-CPU arrays.  The flow "counter" is a
    per-bucket sketch bitmap; its storage is accounted here but managed
    by :class:`~repro.core.sketch.FlowSketch` instances owned by the
    sampler.
    """

    def __init__(self, cpus: int, buckets: int, count_flows: bool = True) -> None:
        self.cpus = cpus
        self.buckets = buckets
        self.count_flows = count_flows
        self._counters: dict[CounterKind, PerCpuCounters] = {
            kind: PerCpuCounters(cpus, buckets) for kind in BYTE_COUNTER_KINDS
        }

    def __getitem__(self, kind: CounterKind) -> PerCpuCounters:
        try:
            return self._counters[kind]
        except KeyError:
            raise SamplerError(f"{kind} is not a byte counter") from None

    def add(self, kind: CounterKind, cpu: int, bucket: int, amount: int) -> None:
        """Increment the counter of ``kind`` on ``cpu`` at ``bucket``."""
        self[kind].add(cpu, bucket, amount)

    def add_batch(
        self,
        kind: CounterKind,
        cpus: np.ndarray,
        buckets: np.ndarray,
        amounts: np.ndarray,
    ) -> None:
        """Vectorized :meth:`add` over one packet batch."""
        self[kind].add_batch(cpus, buckets, amounts)

    def aggregate(self) -> dict[CounterKind, np.ndarray]:
        """Aggregate every byte counter across CPUs."""
        return {kind: pc.aggregate() for kind, pc in self._counters.items()}

    def reset(self) -> None:
        for pc in self._counters.values():
            pc.reset()

    @property
    def nbytes(self) -> int:
        """Total in-kernel footprint: byte counters plus, if enabled, one
        128-bit sketch bitmap per bucket per CPU."""
        total = sum(pc.nbytes for pc in self._counters.values())
        if self.count_flows:
            total += self.cpus * self.buckets * 16  # 128 bits per sketch
        return total
