"""The Millisampler tc-filter state machine (Section 4.1).

The real tool is an eBPF program attached as a tc filter; here the same
logic runs against simulated packet observations.  The lifecycle is
modelled faithfully:

* **detached** — not in the packet path at all (zero cost);
* **attached, disabled** — in the path but returning near-immediately
  (the 7 ns fast path);
* **attached, enabled** — recording: the timestamp of the first packet
  becomes the run start; each packet's bucket is
  ``(now - start) // sampling_interval``; a packet past the last bucket
  clears the enabled flag, signalling completion to user space.

User code (modelled by :class:`~repro.core.scheduler.RunScheduler` and
:class:`~repro.core.syncsampler.SyncMillisampler`) waits for the flag to
clear, detaches the filter, aggregates the per-CPU counters, and stores
the run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from .. import units
from ..errors import SamplerError
from .counters import CounterKind, CounterSet
from .run import MillisamplerRun, RunMetadata
from .sketch import (
    SKETCH_BITS,
    SKETCH_WORDS,
    FlowSketch,
    hash_flow_key,
    linear_counting_estimates,
)


class Direction(enum.Enum):
    """Packet direction relative to the host."""

    INGRESS = "ingress"
    EGRESS = "egress"


@dataclass(frozen=True)
class PacketObservation:
    """What the tc layer sees for one packet (or GSO/GRO super-segment).

    Section 4.6: the tc layer operates on socket buffers, so ``size`` may
    be up to 64 KB even though the wire carries MTU-sized packets.
    """

    time: float
    direction: Direction
    size: int
    flow_key: object
    cpu: int = 0
    ecn_marked: bool = False
    retransmit: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SamplerError("packet size cannot be negative")


class SamplerState(enum.Enum):
    """tc-filter lifecycle states (Section 4.1)."""

    DETACHED = "detached"
    DISABLED = "disabled"  # attached, enabled flag clear
    ENABLED = "enabled"  # attached, recording


@dataclass(frozen=True)
class CostModel:
    """Per-packet and per-run CPU cost, from the Section 4.3
    microbenchmarks (Intel Skylake @ 1.60 GHz)."""

    per_packet_full_ns: float = 88.0
    per_packet_no_flows_ns: float = 84.0
    per_packet_disabled_ns: float = 7.0
    map_read_ms: float = 4.3
    #: Attaching/detaching the tc filter around each run; sized so the
    #: break-even against tcpdump lands at the paper's ~33,000 packets
    #: (the bare map-read figure alone gives ~23,500).
    attach_detach_ms: float = 1.7
    tcpdump_per_packet_ns: float = 271.0

    def run_cost_ns(self, packets: int, count_flows: bool = True) -> float:
        """Total CPU cost of a run that counted ``packets`` packets,
        including the fixed counter-map read and filter attach/detach."""
        per_packet = self.per_packet_full_ns if count_flows else self.per_packet_no_flows_ns
        return packets * per_packet + (self.map_read_ms + self.attach_detach_ms) * 1e6

    def tcpdump_cost_ns(self, packets: int) -> float:
        return packets * self.tcpdump_per_packet_ns

    def breakeven_packets(self, count_flows: bool = True) -> int:
        """Packets after which Millisampler is cheaper than tcpdump.

        The paper: "Millisampler comes out ahead of tcpdump after just
        33,000 packets."
        """
        per_packet = self.per_packet_full_ns if count_flows else self.per_packet_no_flows_ns
        saved_per_packet = self.tcpdump_per_packet_ns - per_packet
        if saved_per_packet <= 0:
            raise SamplerError("cost model implies tcpdump is never beaten")
        fixed = (self.map_read_ms + self.attach_detach_ms) * 1e6
        return int(np.ceil(fixed / saved_per_packet))


@dataclass
class SamplerStats:
    """Bookkeeping exposed to tests and benchmarks."""

    packets_processed: int = 0
    packets_skipped_disabled: int = 0
    runs_completed: int = 0
    cpu_ns: float = 0.0


class Millisampler:
    """One host's sampler instance."""

    def __init__(
        self,
        meta: RunMetadata,
        sampling_interval: float = units.ANALYSIS_INTERVAL,
        buckets: int = units.MILLISAMPLER_BUCKETS,
        cpus: int = 8,
        count_flows: bool = True,
        cost_model: CostModel | None = None,
    ) -> None:
        if sampling_interval <= 0:
            raise SamplerError("sampling interval must be positive")
        if buckets <= 0:
            raise SamplerError("bucket count must be positive")
        if cpus <= 0:
            raise SamplerError("cpu count must be positive")
        self.meta = meta
        self.sampling_interval = sampling_interval
        self.buckets = buckets
        self.cpus = cpus
        self.count_flows = count_flows
        self.cost_model = cost_model or CostModel()
        self.stats = SamplerStats()

        self._state = SamplerState.DETACHED
        self._counters = CounterSet(cpus, buckets, count_flows=count_flows)
        # Per-CPU, per-bucket sketch bitmaps, backed by one
        # (cpus, buckets, SKETCH_WORDS) uint64 array so the batch path
        # can scatter-OR bits and read-out can OR-reduce across CPUs
        # without materializing a FlowSketch per cell.
        self._sketch_words = np.zeros((cpus, buckets, SKETCH_WORDS), dtype=np.uint64)
        self._start_time: float | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def state(self) -> SamplerState:
        return self._state

    @property
    def enabled(self) -> bool:
        return self._state is SamplerState.ENABLED

    @property
    def start_time(self) -> float | None:
        """Timestamp of the first packet of the current/last run."""
        return self._start_time

    def attach(self) -> None:
        """Install the tc filter (disabled)."""
        if self._state is not SamplerState.DETACHED:
            raise SamplerError("filter already attached")
        self._state = SamplerState.DISABLED

    def enable(self) -> None:
        """Set the enabled flag, starting a run on the next packet."""
        if self._state is SamplerState.DETACHED:
            raise SamplerError("cannot enable a detached filter")
        if self._state is SamplerState.ENABLED:
            raise SamplerError("run already in progress")
        self._counters.reset()
        self._sketch_words.fill(0)
        self._start_time = None
        self._state = SamplerState.ENABLED

    def detach(self) -> None:
        """Remove the filter from the packet path entirely.

        Section 4.1: "Detaching the tc filter ensures that no CPU time
        is used by the Millisampler while it is disabled."
        """
        if self._state is SamplerState.DETACHED:
            raise SamplerError("filter not attached")
        if self._state is SamplerState.ENABLED:
            raise SamplerError("cannot detach mid-run; wait for the enabled flag to clear")
        self._state = SamplerState.DETACHED

    # -- packet path --------------------------------------------------------

    def observe(self, obs: PacketObservation) -> None:
        """Process one packet observation at the tc hook."""
        if self._state is SamplerState.DETACHED:
            raise SamplerError("detached filter cannot observe packets")
        if self._state is SamplerState.DISABLED:
            self.stats.packets_skipped_disabled += 1
            self.stats.cpu_ns += self.cost_model.per_packet_disabled_ns
            return

        if self._start_time is None:
            # The first packet after enabling marks the run start.
            self._start_time = obs.time

        bucket = int((obs.time - self._start_time) / self.sampling_interval)
        if bucket < 0:
            raise SamplerError("observation precedes run start (non-monotonic clock)")
        if bucket >= self.buckets:
            # Past the last bucket: clear the enabled flag as the
            # completion signal and drop the packet from accounting.
            self._state = SamplerState.DISABLED
            self.stats.runs_completed += 1
            self.stats.cpu_ns += self.cost_model.per_packet_disabled_ns
            return

        cpu = obs.cpu % self.cpus
        if obs.direction is Direction.INGRESS:
            self._counters.add(CounterKind.IN_BYTES, cpu, bucket, obs.size)
            if obs.ecn_marked:
                self._counters.add(CounterKind.IN_ECN_BYTES, cpu, bucket, obs.size)
            if obs.retransmit:
                self._counters.add(CounterKind.IN_RETX_BYTES, cpu, bucket, obs.size)
        else:
            self._counters.add(CounterKind.OUT_BYTES, cpu, bucket, obs.size)
            if obs.retransmit:
                self._counters.add(CounterKind.OUT_RETX_BYTES, cpu, bucket, obs.size)
        if self.count_flows:
            bit = hash_flow_key(obs.flow_key)
            self._sketch_words[cpu, bucket, bit >> 6] |= np.uint64(1 << (bit & 63))

        self.stats.packets_processed += 1
        self.stats.cpu_ns += (
            self.cost_model.per_packet_full_ns
            if self.count_flows
            else self.cost_model.per_packet_no_flows_ns
        )

    def observe_batch(
        self,
        times: np.ndarray,
        sizes: np.ndarray,
        directions: np.ndarray,
        cpus: np.ndarray | None = None,
        ecn_marked: np.ndarray | None = None,
        retransmit: np.ndarray | None = None,
        flow_bits: np.ndarray | None = None,
    ) -> None:
        """Process a whole batch of packet observations at once.

        Equivalent to calling :meth:`observe` per packet in array order
        — identical counters, sketch bitmaps, state transitions, and
        stats — but every counter update is one ``np.add.at`` scatter
        and every sketch bit one ``np.bitwise_or.at`` scatter, so the
        per-packet Python cost disappears.  ``directions`` is boolean
        (``True`` = ingress); ``flow_bits`` carries pre-hashed bit
        indices from :func:`repro.core.sketch.hash_flow_keys` and is
        required when the sampler counts flows.  Inputs are validated
        before any state is touched (the scalar path fails packet by
        packet instead).
        """
        if self._state is SamplerState.DETACHED:
            raise SamplerError("detached filter cannot observe packets")
        times = np.asarray(times, dtype=np.float64)
        count = len(times)
        sizes = np.asarray(sizes)
        directions = np.asarray(directions, dtype=bool)
        cpus = (
            np.zeros(count, dtype=np.int64)
            if cpus is None
            else np.asarray(cpus, dtype=np.int64)
        )
        ecn_marked = (
            np.zeros(count, dtype=bool)
            if ecn_marked is None
            else np.asarray(ecn_marked, dtype=bool)
        )
        retransmit = (
            np.zeros(count, dtype=bool)
            if retransmit is None
            else np.asarray(retransmit, dtype=bool)
        )
        for name, array in (
            ("sizes", sizes),
            ("directions", directions),
            ("cpus", cpus),
            ("ecn_marked", ecn_marked),
            ("retransmit", retransmit),
        ):
            if len(array) != count:
                raise SamplerError(f"{name} must have one entry per packet")
        if count and sizes.min() < 0:
            raise SamplerError("packet size cannot be negative")

        if self._state is SamplerState.DISABLED:
            self.stats.packets_skipped_disabled += count
            self.stats.cpu_ns += count * self.cost_model.per_packet_disabled_ns
            return
        if count == 0:
            return
        if self.count_flows:
            if flow_bits is None:
                raise SamplerError("flow_bits required when counting flows")
            flow_bits = np.asarray(flow_bits, dtype=np.int64)
            if len(flow_bits) != count:
                raise SamplerError("flow_bits must have one entry per packet")
            if flow_bits.min() < 0 or flow_bits.max() >= SKETCH_BITS:
                raise SamplerError("flow bit index out of range")

        if self._start_time is None:
            self._start_time = float(times[0])
        bucket = ((times - self._start_time) / self.sampling_interval).astype(np.int64)

        # The scalar loop disables the filter at the first packet past
        # the window and skips everything after it; replicate the split.
        past_end = np.nonzero(bucket >= self.buckets)[0]
        processed = int(past_end[0]) if len(past_end) else count
        if np.any(bucket[:processed] < 0):
            raise SamplerError("observation precedes run start (non-monotonic clock)")

        cpu = cpus[:processed] % self.cpus
        bkt = bucket[:processed]
        size = sizes[:processed]
        ingress = directions[:processed]
        masks = {
            CounterKind.IN_BYTES: ingress,
            CounterKind.IN_ECN_BYTES: ingress & ecn_marked[:processed],
            CounterKind.IN_RETX_BYTES: ingress & retransmit[:processed],
            CounterKind.OUT_BYTES: ~ingress,
            CounterKind.OUT_RETX_BYTES: ~ingress & retransmit[:processed],
        }
        for kind, mask in masks.items():
            self._counters.add_batch(kind, cpu[mask], bkt[mask], size[mask])
        if self.count_flows:
            bits = flow_bits[:processed]
            flat = self._sketch_words.reshape(-1)
            index = (cpu * self.buckets + bkt) * SKETCH_WORDS + (bits >> 6)
            np.bitwise_or.at(flat, index, np.uint64(1) << (bits & 63).astype(np.uint64))

        per_packet = (
            self.cost_model.per_packet_full_ns
            if self.count_flows
            else self.cost_model.per_packet_no_flows_ns
        )
        self.stats.packets_processed += processed
        self.stats.cpu_ns += processed * per_packet
        if processed < count:
            # The completing packet clears the enabled flag; the rest of
            # the batch hits the disabled fast path.
            self._state = SamplerState.DISABLED
            self.stats.runs_completed += 1
            skipped = count - processed
            self.stats.cpu_ns += skipped * self.cost_model.per_packet_disabled_ns
            self.stats.packets_skipped_disabled += skipped - 1

    def sketch(self, cpu: int, bucket: int) -> FlowSketch:
        """The (cpu, bucket) sketch as a :class:`FlowSketch` view.

        The bitmaps live in one uint64 array; this rebuilds the
        historical int-bitmap object for tests and ablations.
        """
        if not 0 <= cpu < self.cpus or not 0 <= bucket < self.buckets:
            raise SamplerError("sketch index out of range")
        return FlowSketch.from_words(self._sketch_words[cpu, bucket])

    def finish(self, now: float) -> None:
        """Force-complete a run because the expected duration elapsed with
        no further packets (the filter only self-disables on a packet
        *past* the window).  A run that never saw a packet is abandoned
        without counting as completed."""
        if self._state is not SamplerState.ENABLED:
            return
        if self._start_time is None:
            self._state = SamplerState.DISABLED
            return
        if now < self._start_time + self.duration:
            raise SamplerError("run window has not elapsed yet")
        self._state = SamplerState.DISABLED
        self.stats.runs_completed += 1

    @property
    def duration(self) -> float:
        return self.sampling_interval * self.buckets

    # -- read-out -----------------------------------------------------------

    def read_run(self) -> MillisamplerRun:
        """Aggregate counters into a :class:`MillisamplerRun`.

        Models the fixed-cost bpf map read (4.3 ms regardless of packet
        count — "designing for the worst, most heavily loaded case").
        """
        if self._state is SamplerState.ENABLED:
            raise SamplerError("cannot read counters mid-run")
        if self._start_time is None:
            raise SamplerError("no completed run to read")
        self.stats.cpu_ns += self.cost_model.map_read_ms * 1e6

        aggregated = self._counters.aggregate()
        conn = np.zeros(self.buckets, dtype=np.float64)
        if self.count_flows:
            # One OR-reduce across the CPU axis merges every per-CPU
            # bitmap (no intermediate FlowSketch objects), then the
            # linear-counting estimator runs over all buckets at once.
            merged = np.bitwise_or.reduce(self._sketch_words, axis=0)
            bits_set = np.bitwise_count(merged).sum(axis=1, dtype=np.int64)
            conn = linear_counting_estimates(SKETCH_BITS - bits_set)

        # One construction path: override only what the sampler owns (the
        # observed start and its configured interval) and preserve every
        # other metadata field, so extending RunMetadata cannot silently
        # desync the read-out.
        meta = replace(
            self.meta,
            start_time=self._start_time,
            sampling_interval=self.sampling_interval,
        )
        return MillisamplerRun(
            meta=meta,
            in_bytes=aggregated[CounterKind.IN_BYTES].astype(np.float64),
            out_bytes=aggregated[CounterKind.OUT_BYTES].astype(np.float64),
            in_retx_bytes=aggregated[CounterKind.IN_RETX_BYTES].astype(np.float64),
            out_retx_bytes=aggregated[CounterKind.OUT_RETX_BYTES].astype(np.float64),
            in_ecn_bytes=aggregated[CounterKind.IN_ECN_BYTES].astype(np.float64),
            conn_estimate=conn,
        )

    @property
    def memory_footprint_bytes(self) -> int:
        """In-kernel footprint (Section 4.3: ~3.6 MB on average)."""
        return self._counters.nbytes
