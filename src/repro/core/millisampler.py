"""The Millisampler tc-filter state machine (Section 4.1).

The real tool is an eBPF program attached as a tc filter; here the same
logic runs against simulated packet observations.  The lifecycle is
modelled faithfully:

* **detached** — not in the packet path at all (zero cost);
* **attached, disabled** — in the path but returning near-immediately
  (the 7 ns fast path);
* **attached, enabled** — recording: the timestamp of the first packet
  becomes the run start; each packet's bucket is
  ``(now - start) // sampling_interval``; a packet past the last bucket
  clears the enabled flag, signalling completion to user space.

User code (modelled by :class:`~repro.core.scheduler.RunScheduler` and
:class:`~repro.core.syncsampler.SyncMillisampler`) waits for the flag to
clear, detaches the filter, aggregates the per-CPU counters, and stores
the run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from .. import units
from ..errors import SamplerError
from .counters import CounterKind, CounterSet
from .run import MillisamplerRun, RunMetadata
from .sketch import FlowSketch


class Direction(enum.Enum):
    """Packet direction relative to the host."""

    INGRESS = "ingress"
    EGRESS = "egress"


@dataclass(frozen=True)
class PacketObservation:
    """What the tc layer sees for one packet (or GSO/GRO super-segment).

    Section 4.6: the tc layer operates on socket buffers, so ``size`` may
    be up to 64 KB even though the wire carries MTU-sized packets.
    """

    time: float
    direction: Direction
    size: int
    flow_key: object
    cpu: int = 0
    ecn_marked: bool = False
    retransmit: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SamplerError("packet size cannot be negative")


class SamplerState(enum.Enum):
    """tc-filter lifecycle states (Section 4.1)."""

    DETACHED = "detached"
    DISABLED = "disabled"  # attached, enabled flag clear
    ENABLED = "enabled"  # attached, recording


@dataclass(frozen=True)
class CostModel:
    """Per-packet and per-run CPU cost, from the Section 4.3
    microbenchmarks (Intel Skylake @ 1.60 GHz)."""

    per_packet_full_ns: float = 88.0
    per_packet_no_flows_ns: float = 84.0
    per_packet_disabled_ns: float = 7.0
    map_read_ms: float = 4.3
    #: Attaching/detaching the tc filter around each run; sized so the
    #: break-even against tcpdump lands at the paper's ~33,000 packets
    #: (the bare map-read figure alone gives ~23,500).
    attach_detach_ms: float = 1.7
    tcpdump_per_packet_ns: float = 271.0

    def run_cost_ns(self, packets: int, count_flows: bool = True) -> float:
        """Total CPU cost of a run that counted ``packets`` packets,
        including the fixed counter-map read and filter attach/detach."""
        per_packet = self.per_packet_full_ns if count_flows else self.per_packet_no_flows_ns
        return packets * per_packet + (self.map_read_ms + self.attach_detach_ms) * 1e6

    def tcpdump_cost_ns(self, packets: int) -> float:
        return packets * self.tcpdump_per_packet_ns

    def breakeven_packets(self, count_flows: bool = True) -> int:
        """Packets after which Millisampler is cheaper than tcpdump.

        The paper: "Millisampler comes out ahead of tcpdump after just
        33,000 packets."
        """
        per_packet = self.per_packet_full_ns if count_flows else self.per_packet_no_flows_ns
        saved_per_packet = self.tcpdump_per_packet_ns - per_packet
        if saved_per_packet <= 0:
            raise SamplerError("cost model implies tcpdump is never beaten")
        fixed = (self.map_read_ms + self.attach_detach_ms) * 1e6
        return int(np.ceil(fixed / saved_per_packet))


@dataclass
class SamplerStats:
    """Bookkeeping exposed to tests and benchmarks."""

    packets_processed: int = 0
    packets_skipped_disabled: int = 0
    runs_completed: int = 0
    cpu_ns: float = 0.0


class Millisampler:
    """One host's sampler instance."""

    def __init__(
        self,
        meta: RunMetadata,
        sampling_interval: float = units.ANALYSIS_INTERVAL,
        buckets: int = units.MILLISAMPLER_BUCKETS,
        cpus: int = 8,
        count_flows: bool = True,
        cost_model: CostModel | None = None,
    ) -> None:
        if sampling_interval <= 0:
            raise SamplerError("sampling interval must be positive")
        if buckets <= 0:
            raise SamplerError("bucket count must be positive")
        if cpus <= 0:
            raise SamplerError("cpu count must be positive")
        self.meta = meta
        self.sampling_interval = sampling_interval
        self.buckets = buckets
        self.cpus = cpus
        self.count_flows = count_flows
        self.cost_model = cost_model or CostModel()
        self.stats = SamplerStats()

        self._state = SamplerState.DETACHED
        self._counters = CounterSet(cpus, buckets, count_flows=count_flows)
        # Per-CPU, per-bucket sketches (merged at read-out).
        self._sketches: list[list[FlowSketch]] = []
        self._start_time: float | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def state(self) -> SamplerState:
        return self._state

    @property
    def enabled(self) -> bool:
        return self._state is SamplerState.ENABLED

    @property
    def start_time(self) -> float | None:
        """Timestamp of the first packet of the current/last run."""
        return self._start_time

    def attach(self) -> None:
        """Install the tc filter (disabled)."""
        if self._state is not SamplerState.DETACHED:
            raise SamplerError("filter already attached")
        self._state = SamplerState.DISABLED

    def enable(self) -> None:
        """Set the enabled flag, starting a run on the next packet."""
        if self._state is SamplerState.DETACHED:
            raise SamplerError("cannot enable a detached filter")
        if self._state is SamplerState.ENABLED:
            raise SamplerError("run already in progress")
        self._counters.reset()
        self._sketches = [
            [FlowSketch() for _ in range(self.buckets)] for _ in range(self.cpus)
        ]
        self._start_time = None
        self._state = SamplerState.ENABLED

    def detach(self) -> None:
        """Remove the filter from the packet path entirely.

        Section 4.1: "Detaching the tc filter ensures that no CPU time
        is used by the Millisampler while it is disabled."
        """
        if self._state is SamplerState.DETACHED:
            raise SamplerError("filter not attached")
        if self._state is SamplerState.ENABLED:
            raise SamplerError("cannot detach mid-run; wait for the enabled flag to clear")
        self._state = SamplerState.DETACHED

    # -- packet path --------------------------------------------------------

    def observe(self, obs: PacketObservation) -> None:
        """Process one packet observation at the tc hook."""
        if self._state is SamplerState.DETACHED:
            raise SamplerError("detached filter cannot observe packets")
        if self._state is SamplerState.DISABLED:
            self.stats.packets_skipped_disabled += 1
            self.stats.cpu_ns += self.cost_model.per_packet_disabled_ns
            return

        if self._start_time is None:
            # The first packet after enabling marks the run start.
            self._start_time = obs.time

        bucket = int((obs.time - self._start_time) / self.sampling_interval)
        if bucket < 0:
            raise SamplerError("observation precedes run start (non-monotonic clock)")
        if bucket >= self.buckets:
            # Past the last bucket: clear the enabled flag as the
            # completion signal and drop the packet from accounting.
            self._state = SamplerState.DISABLED
            self.stats.runs_completed += 1
            self.stats.cpu_ns += self.cost_model.per_packet_disabled_ns
            return

        cpu = obs.cpu % self.cpus
        if obs.direction is Direction.INGRESS:
            self._counters.add(CounterKind.IN_BYTES, cpu, bucket, obs.size)
            if obs.ecn_marked:
                self._counters.add(CounterKind.IN_ECN_BYTES, cpu, bucket, obs.size)
            if obs.retransmit:
                self._counters.add(CounterKind.IN_RETX_BYTES, cpu, bucket, obs.size)
        else:
            self._counters.add(CounterKind.OUT_BYTES, cpu, bucket, obs.size)
            if obs.retransmit:
                self._counters.add(CounterKind.OUT_RETX_BYTES, cpu, bucket, obs.size)
        if self.count_flows:
            self._sketches[cpu][bucket].observe(obs.flow_key)

        self.stats.packets_processed += 1
        self.stats.cpu_ns += (
            self.cost_model.per_packet_full_ns
            if self.count_flows
            else self.cost_model.per_packet_no_flows_ns
        )

    def finish(self, now: float) -> None:
        """Force-complete a run because the expected duration elapsed with
        no further packets (the filter only self-disables on a packet
        *past* the window).  A run that never saw a packet is abandoned
        without counting as completed."""
        if self._state is not SamplerState.ENABLED:
            return
        if self._start_time is None:
            self._state = SamplerState.DISABLED
            return
        if now < self._start_time + self.duration:
            raise SamplerError("run window has not elapsed yet")
        self._state = SamplerState.DISABLED
        self.stats.runs_completed += 1

    @property
    def duration(self) -> float:
        return self.sampling_interval * self.buckets

    # -- read-out -----------------------------------------------------------

    def read_run(self) -> MillisamplerRun:
        """Aggregate counters into a :class:`MillisamplerRun`.

        Models the fixed-cost bpf map read (4.3 ms regardless of packet
        count — "designing for the worst, most heavily loaded case").
        """
        if self._state is SamplerState.ENABLED:
            raise SamplerError("cannot read counters mid-run")
        if self._start_time is None:
            raise SamplerError("no completed run to read")
        self.stats.cpu_ns += self.cost_model.map_read_ms * 1e6

        aggregated = self._counters.aggregate()
        conn = np.zeros(self.buckets, dtype=np.float64)
        if self.count_flows:
            for bucket in range(self.buckets):
                merged = FlowSketch()
                for cpu in range(self.cpus):
                    merged = merged.merge(self._sketches[cpu][bucket])
                conn[bucket] = merged.estimate()

        # One construction path: override only what the sampler owns (the
        # observed start and its configured interval) and preserve every
        # other metadata field, so extending RunMetadata cannot silently
        # desync the read-out.
        meta = replace(
            self.meta,
            start_time=self._start_time,
            sampling_interval=self.sampling_interval,
        )
        return MillisamplerRun(
            meta=meta,
            in_bytes=aggregated[CounterKind.IN_BYTES].astype(np.float64),
            out_bytes=aggregated[CounterKind.OUT_BYTES].astype(np.float64),
            in_retx_bytes=aggregated[CounterKind.IN_RETX_BYTES].astype(np.float64),
            out_retx_bytes=aggregated[CounterKind.OUT_RETX_BYTES].astype(np.float64),
            in_ecn_bytes=aggregated[CounterKind.IN_ECN_BYTES].astype(np.float64),
            conn_estimate=conn,
        )

    @property
    def memory_footprint_bytes(self) -> int:
        """In-kernel footprint (Section 4.3: ~3.6 MB on average)."""
        return self._counters.nbytes
