"""128-bit connection-counting sketch.

Section 4.2: "Millisampler uses a 128-bit sketch [Estan, Varghese, Fisk
2003] to estimate the number of active (incoming and outgoing)
connections ... precise up to a dozen connections and saturates at
around 500 connections per sampling interval."

This is a *direct bitmap* with a linear-counting estimator: each flow
key hashes to one of 128 bits; the estimate is ``m * ln(m / z)`` where
``z`` is the number of zero bits.  It is stateless across intervals —
a flow active in one bucket leaves no trace in the next, exactly as the
paper notes.
"""

from __future__ import annotations

import math

from ..errors import SamplerError

#: Number of bits in the production sketch.
SKETCH_BITS = 128

#: With 128 bits the linear-counting estimate is finite only while at
#: least one bit is zero; a full bitmap is reported as this saturation
#: value (the paper: "saturates at around 500 connections").
SATURATION_ESTIMATE = int(SKETCH_BITS * math.log(SKETCH_BITS))  # ~620

# 64-bit FNV-1a parameters, used to hash flow keys into the bitmap.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def hash_flow_key(key: object) -> int:
    """Deterministically hash a flow key (e.g. a 5-tuple) to a bit index."""
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, int):
        data = key.to_bytes(8, "little", signed=False) if key >= 0 else repr(key).encode()
    elif isinstance(key, tuple):
        data = repr(key).encode("utf-8")
    else:
        raise SamplerError(f"unhashable flow key type: {type(key).__name__}")
    return _fnv1a(data) % SKETCH_BITS


class FlowSketch:
    """A single 128-bit bitmap covering one sampling interval."""

    __slots__ = ("_bitmap",)

    def __init__(self, bitmap: int = 0) -> None:
        if bitmap < 0 or bitmap >= (1 << SKETCH_BITS):
            raise SamplerError("bitmap must fit in 128 bits")
        self._bitmap = bitmap

    def observe(self, flow_key: object) -> None:
        """Record that ``flow_key`` was active in this interval."""
        self._bitmap |= 1 << hash_flow_key(flow_key)

    def observe_bit(self, bit: int) -> None:
        """Record a pre-hashed bit (used when merging per-CPU sketches)."""
        if not 0 <= bit < SKETCH_BITS:
            raise SamplerError("bit index out of range")
        self._bitmap |= 1 << bit

    def merge(self, other: "FlowSketch") -> "FlowSketch":
        """OR-merge with another sketch (per-CPU bitmaps combine this way)."""
        return FlowSketch(self._bitmap | other._bitmap)

    @property
    def bitmap(self) -> int:
        return self._bitmap

    @property
    def bits_set(self) -> int:
        return self._bitmap.bit_count()

    def estimate(self) -> float:
        """Linear-counting estimate of the number of distinct flows.

        Exact-ish for small counts (every flow sets its own bit), rising
        error as the bitmap fills, and saturating when all bits are set.
        """
        zeros = SKETCH_BITS - self.bits_set
        if zeros == 0:
            return float(SATURATION_ESTIMATE)
        return SKETCH_BITS * math.log(SKETCH_BITS / zeros)

    def reset(self) -> None:
        self._bitmap = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowSketch(bits_set={self.bits_set}, estimate={self.estimate():.1f})"


def estimate_from_bitmap(bitmap: int) -> float:
    """Estimate flow count directly from a stored 128-bit bitmap."""
    return FlowSketch(bitmap).estimate()


def expected_bits_set(flows: int) -> float:
    """Expected number of set bits after ``flows`` distinct insertions.

    Used by tests to check the sketch against its occupancy model:
    ``m * (1 - (1 - 1/m)^n)``.
    """
    if flows < 0:
        raise SamplerError("flow count cannot be negative")
    return SKETCH_BITS * (1.0 - (1.0 - 1.0 / SKETCH_BITS) ** flows)
