"""128-bit connection-counting sketch.

Section 4.2: "Millisampler uses a 128-bit sketch [Estan, Varghese, Fisk
2003] to estimate the number of active (incoming and outgoing)
connections ... precise up to a dozen connections and saturates at
around 500 connections per sampling interval."

This is a *direct bitmap* with a linear-counting estimator: each flow
key hashes to one of 128 bits; the estimate is ``m * ln(m / z)`` where
``z`` is the number of zero bits.  It is stateless across intervals —
a flow active in one bucket leaves no trace in the next, exactly as the
paper notes.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from ..errors import SamplerError

#: Number of bits in the production sketch.
SKETCH_BITS = 128

#: 64-bit words backing one sketch bitmap (word 0 holds bits 0-63).
SKETCH_WORDS = SKETCH_BITS // 64

#: With 128 bits the linear-counting estimate is finite only while at
#: least one bit is zero; a full bitmap is reported as this saturation
#: value (the paper: "saturates at around 500 connections").
SATURATION_ESTIMATE = int(SKETCH_BITS * math.log(SKETCH_BITS))  # ~620

# 64-bit FNV-1a parameters, used to hash flow keys into the bitmap.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _hash_flow_key_raw(key: object) -> int:
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, int):
        data = key.to_bytes(8, "little", signed=False) if key >= 0 else repr(key).encode()
    elif isinstance(key, tuple):
        data = repr(key).encode("utf-8")
    else:
        raise SamplerError(f"unhashable flow key type: {type(key).__name__}")
    return _fnv1a(data) % SKETCH_BITS


#: Bounded memo for the byte-at-a-time FNV walk: packet streams repeat
#: a small working set of 5-tuples millions of times, so in steady
#: state the hash is one dict probe instead of ~40 byte operations.
_hash_flow_key_cached = lru_cache(maxsize=1 << 16)(_hash_flow_key_raw)


def hash_flow_key(key: object) -> int:
    """Deterministically hash a flow key (e.g. a 5-tuple) to a bit index.

    Hashable keys (tuples, ints, strings, bytes) are served from a
    bounded LRU memo; anything unhashable falls through to the direct
    FNV walk with the historical semantics.
    """
    try:
        return _hash_flow_key_cached(key)
    except TypeError:
        # e.g. a tuple containing a list: not memoizable, still hashable
        # by repr - take the uncached path.
        return _hash_flow_key_raw(key)


def hash_flow_keys(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hash_flow_key` for integer key arrays.

    Computes FNV-1a over the 8 little-endian bytes of each key — the
    same walk the scalar path takes for a non-negative int — across the
    whole array at once, and returns each key's bit index in
    ``[0, SKETCH_BITS)``.  Feed the result to
    :meth:`repro.core.millisampler.Millisampler.observe_batch` as
    ``flow_bits``.
    """
    keys = np.asarray(keys)
    if keys.dtype.kind not in "iu":
        raise SamplerError("batch flow keys must be integers")
    if keys.dtype.kind == "i" and keys.size and int(keys.min()) < 0:
        raise SamplerError("batch flow keys must be non-negative")
    words = keys.astype(np.uint64)
    value = np.full(words.shape, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    byte_mask = np.uint64(0xFF)
    for shift in range(0, 64, 8):
        value = (value ^ ((words >> np.uint64(shift)) & byte_mask)) * prime
    return (value % np.uint64(SKETCH_BITS)).astype(np.int64)


class FlowSketch:
    """A single 128-bit bitmap covering one sampling interval."""

    __slots__ = ("_bitmap",)

    def __init__(self, bitmap: int = 0) -> None:
        if bitmap < 0 or bitmap >= (1 << SKETCH_BITS):
            raise SamplerError("bitmap must fit in 128 bits")
        self._bitmap = bitmap

    def observe(self, flow_key: object) -> None:
        """Record that ``flow_key`` was active in this interval."""
        self._bitmap |= 1 << hash_flow_key(flow_key)

    def observe_bit(self, bit: int) -> None:
        """Record a pre-hashed bit (used when merging per-CPU sketches)."""
        if not 0 <= bit < SKETCH_BITS:
            raise SamplerError("bit index out of range")
        self._bitmap |= 1 << bit

    def merge(self, other: "FlowSketch") -> "FlowSketch":
        """OR-merge with another sketch (per-CPU bitmaps combine this way)."""
        return FlowSketch(self._bitmap | other._bitmap)

    @property
    def bitmap(self) -> int:
        return self._bitmap

    @property
    def bits_set(self) -> int:
        return self._bitmap.bit_count()

    def estimate(self) -> float:
        """Linear-counting estimate of the number of distinct flows.

        Exact-ish for small counts (every flow sets its own bit), rising
        error as the bitmap fills, and saturating when all bits are set.
        """
        return float(linear_counting_estimates(SKETCH_BITS - self.bits_set))

    def as_words(self) -> np.ndarray:
        """The bitmap as ``SKETCH_WORDS`` little-endian uint64 words —
        the layout the vectorized per-CPU sketch array uses."""
        return np.array(
            [
                (self._bitmap >> (64 * word)) & _MASK64
                for word in range(SKETCH_WORDS)
            ],
            dtype=np.uint64,
        )

    @classmethod
    def from_words(cls, words: np.ndarray) -> "FlowSketch":
        """Rebuild a sketch from its uint64 word backing (the inverse of
        :meth:`as_words`); this is how the array-backed sampler exposes
        the historical int-bitmap API as a view."""
        if len(words) != SKETCH_WORDS:
            raise SamplerError(f"sketch backing must have {SKETCH_WORDS} words")
        bitmap = 0
        for word in range(SKETCH_WORDS):
            bitmap |= int(words[word]) << (64 * word)
        return cls(bitmap)

    def reset(self) -> None:
        self._bitmap = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowSketch(bits_set={self.bits_set}, estimate={self.estimate():.1f})"


def linear_counting_estimates(zeros):
    """Linear-counting estimates from zero-bit counts, elementwise.

    The single source of truth for the estimator math: the scalar
    :meth:`FlowSketch.estimate` and the sampler's vectorized read-out
    both evaluate this, so batched and per-sketch estimates are
    bit-identical.  A full bitmap (``zeros == 0``) reports the
    saturation value.
    """
    zeros = np.asarray(zeros, dtype=np.float64)
    return np.where(
        zeros == 0,
        float(SATURATION_ESTIMATE),
        SKETCH_BITS * np.log(SKETCH_BITS / np.maximum(zeros, 1.0)),
    )


def estimate_from_bitmap(bitmap: int) -> float:
    """Estimate flow count directly from a stored 128-bit bitmap."""
    return FlowSketch(bitmap).estimate()


def expected_bits_set(flows: int) -> float:
    """Expected number of set bits after ``flows`` distinct insertions.

    Used by tests to check the sketch against its occupancy model:
    ``m * (1 - (1 - 1/m)^n)``.
    """
    if flows < 0:
        raise SamplerError("flow count cannot be negative")
    return SKETCH_BITS * (1.0 - (1.0 - 1.0 / SKETCH_BITS) ** flows)
