"""Aligning concurrent Millisampler runs onto a uniform time base.

Section 4.4: "each [run] may start at a slightly different time.  Each
start time is recorded, so to combine these runs into a single one with
uniform timestamps, we use linear interpolation to construct data
points for those series that are not already aligned."

Section 5: "Since the collection at each server may start and end at
slightly different times, we trim data to only consider the common time
region.  After selecting only the overlapping interval, the average
length of a SyncMillisampler run is 1.85 seconds."
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .run import MillisamplerRun, RunMetadata


def common_window(runs: list[MillisamplerRun]) -> tuple[float, float]:
    """The time interval covered by every run in the list."""
    if not runs:
        raise AnalysisError("no runs to align")
    start = max(run.meta.start_time for run in runs)
    end = min(run.end_time for run in runs)
    if end <= start:
        raise AnalysisError("runs share no common time window")
    return start, end


def resample_run(run: MillisamplerRun, start: float, buckets: int) -> MillisamplerRun:
    """Resample a run onto a uniform grid beginning at ``start``.

    Byte counters are *rates over a bucket*, so interpolation operates on
    the cumulative series and differences back — this conserves total
    volume, which matters because the analysis sums byte counts.  The
    connection estimate is a level signal and is interpolated directly.
    """
    interval = run.meta.sampling_interval
    if buckets <= 0:
        raise AnalysisError("resample bucket count must be positive")

    old_edges = run.meta.start_time + np.arange(run.buckets + 1) * interval
    new_edges = start + np.arange(buckets + 1) * interval

    # Tolerance scales with the bucket width: the bucket-count rounding in
    # align_runs can place the last new edge up to ~1e-9 buckets past the
    # source run's final edge.
    tolerance = 1e-9 * interval
    if new_edges[0] < old_edges[0] - tolerance or new_edges[-1] > old_edges[-1] + tolerance:
        raise AnalysisError("resample window extends beyond the source run")

    def resample_counts(series: np.ndarray) -> np.ndarray:
        cumulative = np.concatenate([[0.0], np.cumsum(series, dtype=np.float64)])
        at_edges = np.interp(new_edges, old_edges, cumulative)
        return np.diff(at_edges)

    old_centers = old_edges[:-1] + interval / 2
    new_centers = new_edges[:-1] + interval / 2
    # A new center can fall (within float tolerance) outside the span of
    # the old centers at either end of the run.  np.interp *clamps* there,
    # holding the first/last observed estimate flat — the right behavior
    # for a level signal.  Deliberate: a refactor must not turn these edge
    # values into NaN or linear extrapolation (pinned by tests).
    conn = np.interp(new_centers, old_centers, run.conn_estimate)

    meta = RunMetadata(
        host=run.meta.host,
        rack=run.meta.rack,
        region=run.meta.region,
        task=run.meta.task,
        start_time=start,
        sampling_interval=interval,
        line_rate=run.meta.line_rate,
    )
    return MillisamplerRun(
        meta=meta,
        in_bytes=resample_counts(run.in_bytes),
        out_bytes=resample_counts(run.out_bytes),
        in_retx_bytes=resample_counts(run.in_retx_bytes),
        out_retx_bytes=resample_counts(run.out_retx_bytes),
        in_ecn_bytes=resample_counts(run.in_ecn_bytes),
        conn_estimate=conn,
    )


def trim_to_common_window(runs: list[MillisamplerRun]) -> list[MillisamplerRun]:
    """Trim every run to whole buckets inside the common window, without
    resampling (fast path when starts are already bucket-aligned)."""
    start, end = common_window(runs)
    trimmed = []
    for run in runs:
        interval = run.meta.sampling_interval
        first = int(np.ceil((start - run.meta.start_time) / interval - 1e-9))
        last = int(np.floor((end - run.meta.start_time) / interval + 1e-9))
        if last <= first:
            raise AnalysisError(f"run on {run.meta.host} has no buckets in common window")
        trimmed.append(run.slice(first, last))
    # Trimming can still leave off-by-one lengths; cut to the minimum.
    min_buckets = min(run.buckets for run in trimmed)
    return [run.slice(0, min_buckets) for run in trimmed]


def align_runs(runs: list[MillisamplerRun]) -> list[MillisamplerRun]:
    """Full SyncMillisampler alignment: trim to the common window and
    linearly interpolate every series onto one uniform time base."""
    if not runs:
        raise AnalysisError("no runs to align")
    intervals = {run.meta.sampling_interval for run in runs}
    if len(intervals) != 1:
        raise AnalysisError("cannot align runs with different sampling intervals")
    interval = intervals.pop()

    start, end = common_window(runs)
    # Start times are sums of float intervals, so (end - start) / interval
    # can land just under a whole bucket count (e.g. 86.99999999999999 for
    # an exactly-87-bucket window); plain int() truncation would then drop
    # the final bucket, or reject a valid one-bucket overlap outright.
    buckets = int(np.floor((end - start) / interval + 1e-9))
    if buckets <= 0:
        raise AnalysisError("common window shorter than one bucket")
    return [resample_run(run, start, buckets) for run in runs]
