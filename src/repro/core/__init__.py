"""Millisampler core: the paper's primary contribution.

This package models the host-side sampler exactly as Section 4
describes it: a tc-filter-like packet hook with per-CPU counter arrays,
a fixed number of time buckets, an enabled flag that self-clears when a
run completes, a 128-bit connection-counting sketch, host-local
compressed storage with week retention, a periodic run scheduler, and
the SyncMillisampler control plane that aligns simultaneous runs across
a rack.
"""

from .counters import CounterKind, CounterSet, PerCpuCounters
from .millisampler import CostModel, Millisampler, PacketObservation
from .run import MillisamplerRun, RunMetadata, SyncRun
from .scheduler import (
    CadenceSpec,
    MultiRateScheduler,
    PRODUCTION_CADENCES,
    RunScheduler,
    ScheduledRun,
)
from .sketch import FlowSketch
from .storage import HostRunStore
from .syncsampler import SyncMillisampler
from .alignment import align_runs, trim_to_common_window

__all__ = [
    "CounterKind",
    "CounterSet",
    "PerCpuCounters",
    "CostModel",
    "Millisampler",
    "PacketObservation",
    "MillisamplerRun",
    "RunMetadata",
    "SyncRun",
    "CadenceSpec",
    "MultiRateScheduler",
    "PRODUCTION_CADENCES",
    "RunScheduler",
    "ScheduledRun",
    "FlowSketch",
    "HostRunStore",
    "SyncMillisampler",
    "align_runs",
    "trim_to_common_window",
]
