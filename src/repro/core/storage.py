"""Host-local run storage (Section 4.1-4.2).

User code "stores this data in the local disk to be available on
demand"; compressed runs are retained "for about a week, typically a
few hundred megabytes", enabling diagnostic analysis of atypical
events.  This model keeps compressed blobs keyed by start time with
week retention and on-demand decompression, and can optionally be
backed by a directory on disk.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from .. import units
from ..errors import StorageError
from .run import MillisamplerRun

#: Production retention: about a week.
DEFAULT_RETENTION = 7 * units.DAY


class HostRunStore:
    """Compressed, retention-bounded store of one host's runs."""

    def __init__(
        self,
        host: str,
        retention: float = DEFAULT_RETENTION,
        directory: str | None = None,
    ) -> None:
        if retention <= 0:
            raise StorageError("retention must be positive")
        self.host = host
        self.retention = retention
        self.directory = directory
        #: start_time -> compressed blob, insertion-ordered (monotonic time).
        self._blobs: OrderedDict[float, bytes] = OrderedDict()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def store(self, run: MillisamplerRun) -> None:
        """Compress and retain a completed run."""
        if run.meta.host != self.host:
            raise StorageError(
                f"run from host {run.meta.host!r} offered to store for {self.host!r}"
            )
        start = run.meta.start_time
        blob = run.to_compressed()
        self._blobs[start] = blob
        if self.directory is not None:
            path = self._path_for(start)
            with open(path, "wb") as handle:
                handle.write(blob)
        self.prune(now=start)

    def load(self, start_time: float) -> MillisamplerRun:
        """Decompress and return the run that started at ``start_time``."""
        blob = self._blobs.get(start_time)
        if blob is None and self.directory is not None:
            path = self._path_for(start_time)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except FileNotFoundError:
                blob = None
        if blob is None:
            raise StorageError(f"no run starting at {start_time} on host {self.host}")
        return MillisamplerRun.from_compressed(blob)

    def prune(self, now: float) -> int:
        """Drop runs older than the retention window; returns count dropped."""
        cutoff = now - self.retention
        expired = [start for start in self._blobs if start < cutoff]
        for start in expired:
            del self._blobs[start]
            if self.directory is not None:
                try:
                    os.remove(self._path_for(start))
                except FileNotFoundError:
                    pass
        return len(expired)

    def start_times(self) -> list[float]:
        return sorted(self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, start_time: float) -> bool:
        return start_time in self._blobs

    @property
    def stored_bytes(self) -> int:
        """Total compressed footprint currently retained."""
        return sum(len(blob) for blob in self._blobs.values())

    def _path_for(self, start_time: float) -> str:
        if self.directory is None:
            raise StorageError("store is memory-only")
        return os.path.join(self.directory, f"{self.host}_{start_time:.6f}.msrun")
