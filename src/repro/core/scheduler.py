"""Periodic run scheduling with SyncMillisampler priority (Section 4.4).

Each host's user-space agent schedules periodic Millisampler runs.
SyncMillisampler requests are scheduled "far enough in advance that no
run will be active", and scheduled sync runs take priority over
periodic collection.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from ..errors import SamplerError


@dataclass(frozen=True, order=True)
class ScheduledRun:
    """A pending run request on one host's schedule."""

    start_time: float
    #: Lower sorts first at equal start time; sync runs use priority 0,
    #: periodic runs 1, so sync wins ties.
    priority: int = 1
    sync_id: str = ""

    @property
    def is_sync(self) -> bool:
        return self.priority == 0


class RunScheduler:
    """A host's run calendar.

    Decides, for each moment, whether a run should start — enforcing
    that runs never overlap and that sync requests displace conflicting
    periodic runs.
    """

    def __init__(self, period: float, run_duration: float, first_start: float = 0.0) -> None:
        if period <= 0:
            raise SamplerError("period must be positive")
        if run_duration <= 0:
            raise SamplerError("run duration must be positive")
        if run_duration > period:
            raise SamplerError("run duration cannot exceed the scheduling period")
        self.period = period
        self.run_duration = run_duration
        self._heap: list[tuple[float, int, int, ScheduledRun]] = []
        self._tiebreak = itertools.count()
        self._next_periodic = first_start
        self._busy_until = float("-inf")

    def request_sync_run(self, start_time: float, sync_id: str, now: float) -> None:
        """Schedule a SyncMillisampler run.

        The control plane must schedule far enough ahead that no periodic
        run will be active at ``start_time``; a request inside a window
        that could already be busy is rejected.
        """
        if start_time <= now:
            raise SamplerError("sync runs must be scheduled in the future")
        if start_time < self._busy_until:
            raise SamplerError("sync run conflicts with an active run; schedule further ahead")
        entry = ScheduledRun(start_time=start_time, priority=0, sync_id=sync_id)
        heapq.heappush(self._heap, (start_time, 0, next(self._tiebreak), entry))

    def next_run(self, now: float) -> ScheduledRun | None:
        """The run (if any) that should begin at or before ``now``.

        Periodic runs are generated lazily on their cadence; any
        periodic run that would overlap a scheduled sync run is skipped
        (sync has priority).
        """
        # Materialize due periodic runs.
        while self._next_periodic <= now:
            entry = ScheduledRun(start_time=self._next_periodic, priority=1)
            heapq.heappush(
                self._heap, (entry.start_time, entry.priority, next(self._tiebreak), entry)
            )
            self._next_periodic += self.period

        while self._heap:
            start, _priority, _tb, entry = self._heap[0]
            if start > now:
                return None
            heapq.heappop(self._heap)
            if start < self._busy_until:
                continue  # displaced by a run already in progress
            if not entry.is_sync and self._sync_conflict(entry):
                continue  # periodic run yields to an upcoming sync run
            self._busy_until = start + self.run_duration
            return entry
        return None

    def _sync_conflict(self, periodic: ScheduledRun) -> bool:
        """Would running ``periodic`` now overlap any scheduled sync run?"""
        window_end = periodic.start_time + self.run_duration
        return any(
            entry.is_sync and entry.start_time < window_end
            for _s, _p, _t, entry in self._heap
        )

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def pending_sync_runs(self) -> list[ScheduledRun]:
        return sorted(entry for _s, _p, _t, entry in self._heap if entry.is_sync)


@dataclass(frozen=True)
class CadenceSpec:
    """One sampling cadence in the production rotation (Section 4.1:
    "we schedule runs with three values: 10ms, 1ms, and 100us")."""

    name: str
    sampling_interval: float
    period: float

    @property
    def run_duration(self) -> float:
        """2000 buckets at this interval."""
        return self.sampling_interval * 2000


#: The production rotation: each cadence runs periodically; observation
#: windows are 20 s, 2 s, and 0.2 s respectively.
PRODUCTION_CADENCES = (
    CadenceSpec("10ms", 10e-3, period=600.0),
    CadenceSpec("1ms", 1e-3, period=120.0),
    CadenceSpec("100us", 100e-6, period=60.0),
)


class MultiRateScheduler:
    """Interleaves periodic runs at several sampling cadences.

    One Millisampler instance records one run at a time, so the
    schedule must serialize runs across cadences; sync requests (which
    are always at the 1 ms analysis cadence) still preempt periodic
    collection.  ``next_run`` reports *which* cadence should record.
    """

    def __init__(
        self,
        cadences: tuple[CadenceSpec, ...] = PRODUCTION_CADENCES,
        first_start: float = 0.0,
    ) -> None:
        if not cadences:
            raise SamplerError("need at least one cadence")
        names = [c.name for c in cadences]
        if len(names) != len(set(names)):
            raise SamplerError("cadence names must be unique")
        self.cadences = {c.name: c for c in cadences}
        #: Stagger cadence phases so they do not all fire at once.
        self._next_start = {
            c.name: first_start + index * max(c.run_duration for c in cadences)
            for index, c in enumerate(cadences)
        }
        self._busy_until = float("-inf")
        self._sync: list[tuple[float, str]] = []

    def request_sync_run(self, start_time: float, sync_id: str, now: float) -> None:
        if start_time <= now:
            raise SamplerError("sync runs must be scheduled in the future")
        if start_time < self._busy_until:
            raise SamplerError("sync run conflicts with an active run")
        heapq.heappush(self._sync, (start_time, sync_id))

    def next_run(self, now: float) -> tuple[CadenceSpec | None, str] | None:
        """(cadence, sync_id) due at ``now``; sync entries return
        (the 1 ms cadence if configured else None, sync_id)."""
        if now < self._busy_until:
            return None
        # Sync first.
        while self._sync and self._sync[0][0] <= now:
            start, sync_id = heapq.heappop(self._sync)
            cadence = self.cadences.get("1ms")
            duration = cadence.run_duration if cadence else 2.0
            self._busy_until = now + duration
            return cadence, sync_id
        # Periodic cadences, earliest due first.
        due = [
            (start, name)
            for name, start in self._next_start.items()
            if start <= now
        ]
        if not due:
            return None
        _start, name = min(due)
        cadence = self.cadences[name]
        # Yield to an upcoming sync run rather than overlap it.
        window_end = now + cadence.run_duration
        if any(sync_start < window_end for sync_start, _ in self._sync):
            self._next_start[name] = now + cadence.period
            return None
        self._next_start[name] = now + cadence.period
        self._busy_until = window_end
        return cadence, ""

    @property
    def busy_until(self) -> float:
        return self._busy_until
