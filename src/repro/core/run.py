"""Data model for Millisampler runs.

A :class:`MillisamplerRun` is the read-out of one sampler run on one
server: aggregated (cross-CPU) per-bucket series for every counter kind
plus metadata.  A :class:`SyncRun` is a rack-wide collection of runs
that SyncMillisampler has aligned onto a common time base; it is the
unit every analysis in Sections 5-8 consumes.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from .. import units
from ..errors import AnalysisError, StorageError


@dataclass(frozen=True)
class RunMetadata:
    """Identity and context recorded with each run.

    Host-side collection is what makes service context ("rich context
    such as service information", Section 1) available — the task name
    travels with the data.
    """

    host: str
    rack: str = ""
    region: str = ""
    task: str = ""
    start_time: float = 0.0
    sampling_interval: float = units.ANALYSIS_INTERVAL
    line_rate: float = units.SERVER_LINK_RATE

    def with_start(self, start_time: float) -> "RunMetadata":
        return replace(self, start_time=start_time)


@dataclass
class MillisamplerRun:
    """One sampler run: per-bucket counter series plus metadata.

    All byte series share one length (the number of buckets actually
    recorded).  ``conn_estimate`` is the sketch's per-bucket estimate of
    active connections.
    """

    meta: RunMetadata
    in_bytes: np.ndarray
    out_bytes: np.ndarray
    in_retx_bytes: np.ndarray
    out_retx_bytes: np.ndarray
    in_ecn_bytes: np.ndarray
    conn_estimate: np.ndarray

    _SERIES = (
        "in_bytes",
        "out_bytes",
        "in_retx_bytes",
        "out_retx_bytes",
        "in_ecn_bytes",
        "conn_estimate",
    )

    def __post_init__(self) -> None:
        lengths = {len(getattr(self, name)) for name in self._SERIES}
        if len(lengths) != 1:
            raise AnalysisError(f"series lengths differ: {sorted(lengths)}")

    @classmethod
    def empty(cls, meta: RunMetadata, buckets: int) -> "MillisamplerRun":
        """An all-zero run (used by tests and the fleet synthesizer)."""
        zero = lambda: np.zeros(buckets, dtype=np.float64)  # noqa: E731
        return cls(meta, zero(), zero(), zero(), zero(), zero(), zero())

    @property
    def buckets(self) -> int:
        return len(self.in_bytes)

    @property
    def duration(self) -> float:
        """Observed duration in seconds."""
        return self.buckets * self.meta.sampling_interval

    @property
    def end_time(self) -> float:
        return self.meta.start_time + self.duration

    def timestamps(self) -> np.ndarray:
        """Absolute start time of each bucket."""
        return self.meta.start_time + np.arange(self.buckets) * self.meta.sampling_interval

    def ingress_utilization(self) -> np.ndarray:
        """Per-bucket ingress utilization as a fraction of line rate."""
        capacity = self.meta.line_rate * self.meta.sampling_interval
        return np.asarray(self.in_bytes, dtype=np.float64) / capacity

    def egress_utilization(self) -> np.ndarray:
        """Per-bucket egress utilization as a fraction of line rate."""
        capacity = self.meta.line_rate * self.meta.sampling_interval
        return np.asarray(self.out_bytes, dtype=np.float64) / capacity

    def bursty_mask(self, threshold: float = units.BURST_UTILIZATION_THRESHOLD) -> np.ndarray:
        """Boolean per-bucket mask: ingress utilization exceeds ``threshold``
        (the paper's burst definition, Section 5)."""
        return self.ingress_utilization() > threshold

    def slice(self, start_bucket: int, end_bucket: int) -> "MillisamplerRun":
        """A new run covering buckets ``[start_bucket, end_bucket)``."""
        if not 0 <= start_bucket <= end_bucket <= self.buckets:
            raise AnalysisError("slice out of range")
        new_meta = self.meta.with_start(
            self.meta.start_time + start_bucket * self.meta.sampling_interval
        )
        kwargs = {
            name: getattr(self, name)[start_bucket:end_bucket] for name in self._SERIES
        }
        return MillisamplerRun(meta=new_meta, **kwargs)

    # -- serialization ------------------------------------------------------

    def to_record(self) -> dict:
        """A JSON-serializable record (lists, not arrays)."""
        return {
            "meta": {
                "host": self.meta.host,
                "rack": self.meta.rack,
                "region": self.meta.region,
                "task": self.meta.task,
                "start_time": self.meta.start_time,
                "sampling_interval": self.meta.sampling_interval,
                "line_rate": self.meta.line_rate,
            },
            "series": {name: getattr(self, name).tolist() for name in self._SERIES},
        }

    @classmethod
    def from_record(cls, record: dict) -> "MillisamplerRun":
        try:
            meta = RunMetadata(**record["meta"])
            series = {
                name: np.asarray(values, dtype=np.float64)
                for name, values in record["series"].items()
            }
            return cls(meta=meta, **series)
        except (KeyError, TypeError) as exc:
            raise StorageError(f"malformed run record: {exc}") from exc

    def to_compressed(self) -> bytes:
        """Compressed wire/storage form (Section 4.1: data is compressed
        and stored on the host)."""
        return zlib.compress(json.dumps(self.to_record()).encode("utf-8"), level=6)

    @classmethod
    def from_compressed(cls, blob: bytes) -> "MillisamplerRun":
        try:
            record = json.loads(zlib.decompress(blob).decode("utf-8"))
        except (zlib.error, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StorageError(f"corrupt run blob: {exc}") from exc
        return cls.from_record(record)


@dataclass
class SyncRun:
    """A rack-wide set of Millisampler runs on a common, uniform time base.

    Produced by :class:`~repro.core.syncsampler.SyncMillisampler` (or
    synthesized directly by the fleet model).  All member runs share
    ``start_time``, ``sampling_interval`` and bucket count after
    alignment, so cross-server comparisons are per-bucket.
    """

    rack: str
    region: str
    runs: list[MillisamplerRun]
    #: Wall-clock hour-of-day at which the run was collected (0-23).
    hour: int = 0
    #: Per-minute switch discard/volume counters for the rack, if the
    #: substrate exports them (used by Figure 17).
    switch_discard_bytes: float = 0.0
    switch_ingress_bytes: float = 0.0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.runs:
            raise AnalysisError("a SyncRun must contain at least one server run")
        buckets = {run.buckets for run in self.runs}
        if len(buckets) != 1:
            raise AnalysisError(f"aligned runs must share bucket count, got {sorted(buckets)}")
        intervals = {run.meta.sampling_interval for run in self.runs}
        if len(intervals) != 1:
            raise AnalysisError("aligned runs must share sampling interval")

    @property
    def buckets(self) -> int:
        return self.runs[0].buckets

    @property
    def sampling_interval(self) -> float:
        return self.runs[0].meta.sampling_interval

    @property
    def duration(self) -> float:
        return self.runs[0].duration

    @property
    def servers(self) -> int:
        return len(self.runs)

    def bursty_matrix(self, threshold: float = units.BURST_UTILIZATION_THRESHOLD) -> np.ndarray:
        """``servers x buckets`` boolean matrix of bursty samples."""
        return np.vstack([run.bursty_mask(threshold) for run in self.runs])

    def contention_series(
        self, threshold: float = units.BURST_UTILIZATION_THRESHOLD
    ) -> np.ndarray:
        """Per-bucket contention: number of simultaneously bursty servers
        (the paper's definition, Section 5)."""
        return self.bursty_matrix(threshold).sum(axis=0)
