"""Experiment result types."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import AnalysisError
from ..viz.series import Series, write_csv
from ..viz.table import render_table


def format_metric(experiment_id: str, name: str, value) -> str:
    """Render one headline metric value.

    Metrics are documented as numeric (``name -> value`` floats); a
    stray string or None would otherwise surface as a bare
    ``TypeError``/``ValueError`` deep inside ``str.format`` while
    rendering — long after the experiment that produced it returned.
    """
    try:
        return f"{value:.6g}"
    except (TypeError, ValueError):
        raise AnalysisError(
            f"{experiment_id} metric {name!r} has non-numeric value "
            f"{value!r} ({type(value).__name__}); metric values must be numbers"
        ) from None


@dataclass
class ResultTable:
    """One table of an experiment's output."""

    title: str
    headers: list[str]
    rows: list[list]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    experiment_id: str
    title: str
    #: The paper's description of what this result showed.
    paper_claim: str
    #: Data series behind the figure (empty for pure tables).
    series: list[Series] = field(default_factory=list)
    tables: list[ResultTable] = field(default_factory=list)
    #: Headline metrics, name -> value, used by EXPERIMENTS.md and tests.
    metrics: dict[str, float] = field(default_factory=dict)
    #: ASCII rendering of the figure.
    rendering: str = ""
    #: Free-text comparison against the paper.
    notes: str = ""

    def render(self) -> str:
        """Full text report for the terminal."""
        parts = [f"== {self.experiment_id}: {self.title} ==", f"Paper: {self.paper_claim}"]
        if self.rendering:
            parts.append(self.rendering)
        for table in self.tables:
            parts.append(table.render())
        if self.metrics:
            metric_lines = [
                f"  {name} = {format_metric(self.experiment_id, name, value)}"
                for name, value in sorted(self.metrics.items())
            ]
            parts.append("Metrics:\n" + "\n".join(metric_lines))
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)

    def save(self, directory: str) -> list[str]:
        """Write CSV series and the text report under ``directory``;
        returns the created paths."""
        os.makedirs(directory, exist_ok=True)
        created = []
        if self.series:
            csv_path = os.path.join(directory, f"{self.experiment_id}.csv")
            write_csv(self.series, csv_path)
            created.append(csv_path)
        report_path = os.path.join(directory, f"{self.experiment_id}.txt")
        with open(report_path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        created.append(report_path)
        return created

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(
                f"{self.experiment_id} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from None
