"""Figure 5: deep dive into one low-contention and one high-contention
SyncMillisampler run.

Synthesizes one spread-placement rack run and one ML-co-located rack
run and renders the per-queue burst raster plus the contention series,
as in the paper's two example panels.
"""

from __future__ import annotations

import numpy as np

from ..fleet.rackrun import RackRunSynthesizer
from ..workload.region import REGION_A, build_region_workloads
from ..viz.ascii import sparkline
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def _example_runs(seed: int = 11):
    rng = np.random.default_rng(seed)
    workloads = build_region_workloads(REGION_A, racks=12, rng=rng)
    low = next(w for w in workloads if not w.colocated)
    high = next(w for w in workloads if w.colocated)
    synthesizer = RackRunSynthesizer()
    low_run = synthesizer.synthesize(low, hour=6, rng=rng)
    high_run = synthesizer.synthesize(high, hour=6, rng=rng)
    return low_run, high_run


def _raster(sync_run, max_servers: int = 24, window: int = 400) -> str:
    matrix = sync_run.bursty_matrix()[:, :window]
    bursty_servers = [i for i in range(matrix.shape[0]) if matrix[i].any()]
    lines = []
    for queue_id in bursty_servers[:max_servers]:
        row = "".join("." if b else " " for b in matrix[queue_id])
        lines.append(f"  q{queue_id:3d} |{row}|")
    contention = sync_run.contention_series()[:window]
    lines.append("  cont |" + sparkline(contention) + "|")
    return "\n".join(lines)


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    low_run, high_run = _example_runs()
    low_contention = low_run.contention_series()
    high_contention = high_run.contention_series()

    series = [
        Series("low-contention", np.arange(len(low_contention), dtype=float),
               low_contention.astype(float)),
        Series("high-contention", np.arange(len(high_contention), dtype=float),
               high_contention.astype(float)),
    ]
    rendering = "\n".join(
        [
            "Figure 5a: low-contention run (bursty-sample raster + contention)",
            _raster(low_run),
            "",
            "Figure 5b: high-contention run",
            _raster(high_run),
        ]
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Example runs: low vs high contention",
        paper_claim=(
            "A typical run's contention varies between 0 and 3; a "
            "high-contention run varies between 3 and 12, with many "
            "well-separated bursts per server."
        ),
        series=series,
        metrics={
            "low_contention_max": float(low_contention.max()),
            "low_contention_mean": float(low_contention.mean()),
            "high_contention_max": float(high_contention.max()),
            "high_contention_mean": float(high_contention.mean()),
        },
        rendering=rendering,
        notes=(
            f"Low-contention run: mean {low_contention.mean():.2f}, max "
            f"{low_contention.max():.0f}.  High-contention run: mean "
            f"{high_contention.mean():.2f}, max {high_contention.max():.0f}."
        ),
    )
