"""Figure 10: distinct tasks per rack, by rack class.

Paper: the median RegA-High rack runs only 8 tasks; RegA-Typical and
RegB medians are 14 and 15 — dense placement means few distinct tasks.
"""

from __future__ import annotations

import numpy as np

from ..analysis.racks import RackClass
from ..analysis.stats import cdf
from ..analysis.tasks import task_diversity
from ..viz.ascii import ascii_cdf
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    classes = ctx.rega_classes()
    groups = {
        "RegA-Typical": task_diversity(classes[RackClass.TYPICAL]),
        "RegA-High": task_diversity(classes[RackClass.HIGH]),
        "RegB": task_diversity(ctx.profiles("RegB")),
    }
    series = []
    metrics = {}
    for name, values in groups.items():
        x, y = cdf(values)
        series.append(Series(name, x, y))
        metrics[f"median_tasks_{name}"] = float(np.median(values))
    rendering = ascii_cdf(
        groups, x_label="number of distinct tasks",
        title="Figure 10: task diversity across racks",
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Task diversity across racks",
        paper_claim=(
            "Median distinct tasks: 8 on RegA-High racks vs 14 on "
            "RegA-Typical and 15 on RegB."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"medians: RegA-High {metrics['median_tasks_RegA-High']:.0f} (8), "
            f"RegA-Typical {metrics['median_tasks_RegA-Typical']:.0f} (14), "
            f"RegB {metrics['median_tasks_RegB']:.0f} (15)."
        ),
    )
