"""Figure 14: average contention vs per-minute rack ingress volume.

Production switches export volume at 1-minute granularity, so the
paper buckets runs by the rack's ingress bytes over the minute of the
run and shows contention rising with volume.  The fluid dataset keeps
per-run switch ingress counters; we scale them to per-minute rates.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import bucket_means, pearson_correlation
from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    summaries = ctx.summaries("RegA")
    volumes = []
    contentions = []
    for summary in summaries:
        if summary.duration_s <= 0:
            continue
        per_minute = summary.switch_ingress_bytes / summary.duration_s * 60.0
        volumes.append(per_minute / 1e9)  # GB per minute
        contentions.append(summary.contention.mean)
    volumes_arr = np.array(volumes)
    contentions_arr = np.array(contentions)

    edges = np.percentile(volumes_arr, np.linspace(0, 100, 9))
    edges = np.unique(edges)
    centers, means, counts = bucket_means(volumes_arr, contentions_arr, edges)
    valid = ~np.isnan(means)
    correlation = pearson_correlation(volumes_arr, contentions_arr)

    series = [Series("avg-contention", centers[valid], means[valid])]
    rendering = ascii_plot(
        centers[valid],
        {"avg contention": means[valid]},
        x_label="rack ingress (GB per minute)",
        y_label="avg contention",
        title="Figure 14: contention vs rack ingress volume (RegA)",
        height=12,
    )
    monotonic_fraction = float(
        (np.diff(means[valid]) > 0).mean()
    ) if valid.sum() > 1 else 0.0
    return ExperimentResult(
        experiment_id="fig14",
        title="Contention vs ingress traffic volume",
        paper_claim=(
            "Ingress volumes show a clear (but loose) positive correlation "
            "with average contention."
        ),
        series=series,
        metrics={
            "pearson_r": correlation,
            "monotonic_bucket_fraction": monotonic_fraction,
        },
        rendering=rendering,
        notes=(
            f"Pearson r = {correlation:.2f} between per-minute ingress and "
            f"average contention; {monotonic_fraction * 100:.0f}% of adjacent "
            f"volume buckets increase monotonically."
        ),
    )
