"""Figure 13: diurnal trends in contention (hourly box plots).

Paper: RegA-High contention rises ~27.6% between hours 4 and 10; RegB
shows clear diurnal patterns too, most pronounced at high percentiles.
"""

from __future__ import annotations

import numpy as np

from ..analysis.diurnal import peak_window_increase
from ..viz.ascii import ascii_boxplot
from ..viz.series import Series
from ..viz.table import render_table
from .base import ExperimentResult
from .context import ExperimentContext


def _box_table(title: str, boxes) -> str:
    rows = [
        [hour, stats.low_whisker, stats.q1, stats.median, stats.q3,
         stats.high_whisker, stats.mean]
        for hour, stats in boxes.items()
    ]
    table = render_table(
        ["hour", "low", "q1", "median", "q3", "high", "mean"], rows, title=title
    )
    plot = ascii_boxplot({f"h{hour:02d}": stats for hour, stats in boxes.items()})
    return table + "\n\n" + plot


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    high_racks = ctx.rega_high_racks()

    # Streaming under a shard store, in-memory otherwise — bit-identical.
    boxes_high = ctx.hourly_boxes("RegA", racks=high_racks)
    boxes_regb = ctx.hourly_boxes("RegB")

    means_high = {hour: stats.mean for hour, stats in boxes_high.items()}
    means_regb = {hour: stats.mean for hour, stats in boxes_regb.items()}

    series = [
        Series(
            "RegA-High-median",
            np.array(sorted(boxes_high), dtype=float),
            np.array([boxes_high[h].median for h in sorted(boxes_high)]),
        ),
        Series(
            "RegB-median",
            np.array(sorted(boxes_regb), dtype=float),
            np.array([boxes_regb[h].median for h in sorted(boxes_regb)]),
        ),
    ]
    increase_high = peak_window_increase(means_high, window=(4, 10))
    # RegB's profile peaks in the local evening in this synthesis.
    increase_regb = peak_window_increase(means_regb, window=(16, 22))
    rendering = "\n\n".join(
        [
            _box_table("Figure 13 (top): RegA-High contention by hour", boxes_high),
            _box_table("Figure 13 (bottom): RegB contention by hour", boxes_regb),
        ]
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Diurnal trends in contention",
        paper_claim=(
            "RegA-High contention increases ~27.6% between hours 4 and 10; "
            "RegB also shows clear diurnal patterns."
        ),
        series=series,
        metrics={
            "rega_high_peak_increase": increase_high,
            "regb_peak_increase": increase_regb,
        },
        rendering=rendering,
        notes=(
            f"RegA-High hours 4-10 mean contention is "
            f"{increase_high * 100:.1f}% above other hours (paper 27.6%); "
            f"RegB evening window is {increase_regb * 100:.1f}% above."
        ),
    )
