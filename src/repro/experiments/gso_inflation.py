"""Section 4.6 discussion: GSO super-segments inflate fine-timescale
burstiness.

"The tc layer sees segments before the sending NIC's segmentation
offload and after the receiver's offloaded reassembly.  Thus, the
filter may see 64 KB segments, potentially inflating burstiness at
very fine timescales (e.g., 100 us buckets).  At such rates, we often
see periods of data rates in excess of line speed."

This experiment samples the same wire traffic at 10 ms, 1 ms, and
100 us with GRO-coalesced super-segments and shows that (i) apparent
per-bucket rates exceed line speed only at 100 us, and (ii) the 1 ms
interval the paper standardizes on is immune.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..core.millisampler import Millisampler
from ..core.run import RunMetadata
from ..core.sketch import hash_flow_key
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

INTERVALS = {"10ms": 10e-3, "1ms": 1e-3, "100us": 100e-6}


def _simulate_sampling(interval: float, rng: np.random.Generator) -> float:
    """Feed line-rate wire traffic, delivered as 64 KB GRO
    super-segments, to a sampler at ``interval``; return the maximum
    apparent utilization of any bucket."""
    line_rate = units.SERVER_LINK_RATE
    segment = units.GSO_MAX_BYTES
    sampler = Millisampler(
        RunMetadata(host="gso", line_rate=line_rate),
        sampling_interval=interval,
        buckets=200,
        cpus=1,
    )
    sampler.attach()
    sampler.enable()
    # The wire carries MTU packets at line rate; GRO hands the stack one
    # 64 KB super-segment when its last wire packet arrives — so the
    # tap's observation time is quantized to segment boundaries with
    # small jitter from interrupt coalescing.  Arrival times accumulate
    # sequentially (each RNG draw feeds the next timestamp), then one
    # observe_batch call replaces the per-segment observe loop.
    time = 0.0
    duration = 150 * interval
    times = []
    while time < duration:
        time += segment / line_rate * float(rng.uniform(0.7, 1.3))
        times.append(time)
    arrivals = np.asarray(times, dtype=np.float64)
    count = len(arrivals)
    sampler.observe_batch(
        arrivals,
        np.full(count, segment, dtype=np.int64),
        np.ones(count, dtype=bool),
        flow_bits=np.full(count, hash_flow_key("bulk"), dtype=np.int64),
    )
    assert sampler.start_time is not None
    sampler.finish(now=sampler.start_time + sampler.duration)
    run = sampler.read_run()
    # Ignore the tail buckets the stream did not fill.
    filled = run.in_bytes[: int(duration / interval) - 1]
    return float(filled.max() / (line_rate * interval))


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    rng = np.random.default_rng(0)
    rows = []
    metrics = {}
    for name, interval in INTERVALS.items():
        peaks = [_simulate_sampling(interval, rng) for _ in range(5)]
        peak = float(np.max(peaks))
        rows.append([name, f"{peak * 100:.1f}%", "YES" if peak > 1.0 else "no"])
        metrics[f"peak_utilization_{name}"] = peak

    table = ResultTable(
        title="Apparent peak utilization of line-rate traffic vs sampling interval",
        headers=["interval", "max apparent utilization", "exceeds line rate?"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="gso",
        title="GSO inflation at fine timescales (Section 4.6)",
        paper_claim=(
            "64 KB super-segments make 100 us buckets show rates above line "
            "speed; 1 ms sampling avoids the issue — one reason the paper "
            "standardizes on 1 ms."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"100 us peak {metrics['peak_utilization_100us'] * 100:.0f}% vs "
            f"1 ms peak {metrics['peak_utilization_1ms'] * 100:.0f}% of line "
            f"rate: segment-boundary quantization only aliases above the "
            f"segment service time (~42 us at 12.5 Gbps)."
        ),
    )
