"""Figure 18: burst length vs loss, contended vs non-contended.

Paper (RegA-Typical): loss is low for very short bursts (buffers
absorb them), rises sharply with length, then stabilizes once bursts
are long enough for congestion control to adapt; past ~8 ms, contended
bursts stay lossier than non-contended ones.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext

#: Burst-length buckets in milliseconds.
LENGTH_EDGES = np.array([1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24])


def loss_by_length(ctx: ExperimentContext) -> dict[str, dict[int, tuple[int, int]]]:
    """group -> length bucket -> (bursts, lossy bursts), RegA-Typical only."""
    counts: dict[str, dict[int, list[int]]] = {
        "contended": defaultdict(lambda: [0, 0]),
        "non-contended": defaultdict(lambda: [0, 0]),
    }
    for summary in ctx.summaries("RegA"):
        if ctx.class_of_run(summary) != "RegA-Typical":
            continue
        ms = summary.sampling_interval / 1e-3
        for burst in summary.bursts:
            length = burst.length * ms
            bucket = int(np.digitize(length, LENGTH_EDGES))
            key = "contended" if burst.contended else "non-contended"
            entry = counts[key][bucket]
            entry[0] += 1
            entry[1] += int(burst.lossy)
    return {
        name: {b: (v[0], v[1]) for b, v in buckets.items()}
        for name, buckets in counts.items()
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    data = loss_by_length(ctx)
    centers = np.concatenate([LENGTH_EDGES.astype(float), [32.0]])
    series = []
    ys = {}
    for name in ("non-contended", "contended"):
        buckets = data[name]
        pct = np.full(len(centers), np.nan)
        for bucket_index in range(len(centers)):
            total, lossy = buckets.get(bucket_index, (0, 0))
            if total >= 20:
                pct[bucket_index] = lossy / total * 100
        series.append(Series(name, centers, pct))
        ys[name] = pct

    contended_pct = ys["contended"]
    nc_pct = ys["non-contended"]
    long_mask = centers >= 8
    valid_long = long_mask & np.isfinite(contended_pct) & np.isfinite(nc_pct)
    short_mask = centers <= 2

    def _nanmean(values: np.ndarray) -> float:
        finite = values[np.isfinite(values)]
        return float(finite.mean()) if finite.size else 0.0

    metrics = {
        "short_burst_loss_pct": _nanmean(
            np.concatenate([contended_pct[short_mask], nc_pct[short_mask]])
        ),
        "peak_contended_loss_pct": float(np.nanmax(contended_pct))
        if np.isfinite(contended_pct).any()
        else 0.0,
        "contended_minus_nc_at_long": _nanmean(
            contended_pct[valid_long] - nc_pct[valid_long]
        ),
    }
    rendering = ascii_plot(
        centers, ys,
        x_label="burst length (ms)",
        y_label="% of bursts with loss",
        title="Figure 18: burst length vs loss (RegA-Typical)",
    )
    return ExperimentResult(
        experiment_id="fig18",
        title="Burst length vs loss",
        paper_claim=(
            "Loss starts low (buffers absorb short bursts), rises sharply "
            "with length, then stabilizes as congestion control adapts; "
            "beyond ~8 ms contended bursts are lossier."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"loss at <=2 ms: {metrics['short_burst_loss_pct']:.2f}%; peak "
            f"contended loss {metrics['peak_contended_loss_pct']:.2f}%; "
            f"contended exceeds non-contended by "
            f"{metrics['contended_minus_nc_at_long']:.2f} points past 8 ms."
        ),
    )
