"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigError
from .base import ExperimentResult
from .context import ExperimentContext


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    experiment_id: str
    module: str
    title: str
    #: Whether the experiment needs the fleet dataset (vs packet-level
    #: simulation or pure analytics) — used to order runs so the
    #: dataset generates once, early.
    needs_dataset: bool = True


EXPERIMENTS: dict[str, ExperimentEntry] = {
    entry.experiment_id: entry
    for entry in (
        ExperimentEntry("fig1", "fig01_queue_share", "Dynamic-threshold queue share", False),
        ExperimentEntry("fig3", "fig03_multicast_validation", "Multicast sync validation", False),
        ExperimentEntry("fig4", "fig04_burst_validation", "Bursty-server count validation", False),
        ExperimentEntry("fig5", "fig05_example_runs", "Example low/high contention runs", False),
        ExperimentEntry("fig6", "fig06_burst_frequency", "Burst frequency CDF"),
        ExperimentEntry("fig7", "fig07_burst_length", "Burst length distribution"),
        ExperimentEntry("fig8", "fig08_connections", "Connections inside/outside bursts"),
        ExperimentEntry("fig9", "fig09_contention_cdf", "Busy-hour contention across racks"),
        ExperimentEntry("fig10", "fig10_task_diversity", "Task diversity across racks"),
        ExperimentEntry("fig11", "fig11_dominant_task", "Dominant task density"),
        ExperimentEntry("fig12", "fig12_rack_variation", "Per-rack contention over a day"),
        ExperimentEntry("fig13", "fig13_diurnal", "Diurnal contention trends"),
        ExperimentEntry("fig14", "fig14_volume_correlation", "Contention vs ingress volume"),
        ExperimentEntry("fig15", "fig15_run_variation", "Within-run contention variation"),
        ExperimentEntry("fig16", "fig16_contention_loss", "Contention vs loss"),
        ExperimentEntry("fig17", "fig17_switch_discards", "Normalized switch discards"),
        ExperimentEntry("fig18", "fig18_length_loss", "Burst length vs loss"),
        ExperimentEntry("fig19", "fig19_incast_loss", "Incast (connections) vs loss"),
        ExperimentEntry("table1", "table1_dataset", "Dataset summary"),
        ExperimentEntry("table2", "table2_burst_summary", "Burst summary per rack class"),
        ExperimentEntry("perf", "perf_sampler", "Millisampler cost model (Section 4.3)", False),
        ExperimentEntry("gso", "gso_inflation", "GSO inflation at fine timescales (Section 4.6)", False),
        ExperimentEntry(
            "crossval", "crossval_fluid", "Fluid vs packet-level cross-validation", False
        ),
        ExperimentEntry(
            "ablation-policies", "ablation_policies", "Buffer-sharing policy ablation", False
        ),
        ExperimentEntry(
            "policy-sweep",
            "policy_sweep",
            "Contention vs loss across the buffer-sharing policy zoo",
            False,
        ),
        ExperimentEntry(
            "ablation-threshold",
            "ablation_threshold",
            "Burst-definition sensitivity",
            False,
        ),
        ExperimentEntry(
            "implication-placement",
            "implication_placement",
            "Placement-metric comparison (Section 9)",
        ),
        ExperimentEntry(
            "fabric-smoothing",
            "fabric_smoothing",
            "Fabric smoothing of bursts (Section 8.1)",
            False,
        ),
        ExperimentEntry(
            "ablation-sketch",
            "ablation_sketch",
            "Connection-sketch accuracy",
            False,
        ),
    )
}


def ordered_ids() -> list[str]:
    """Every experiment id in the canonical run order.

    Short ids sort first (fig1..fig9 before fig10), matching ``list``
    output; the orchestrator, CLI, and report all iterate this order so
    runs are comparable across entry points.
    """
    return sorted(EXPERIMENTS, key=lambda k: (len(k), k))


def get_experiment(experiment_id: str) -> Callable[[ExperimentContext], ExperimentResult]:
    """Resolve an experiment id to its run function."""
    entry = EXPERIMENTS.get(experiment_id)
    if entry is None:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    module = importlib.import_module(f".{entry.module}", package=__package__)
    return module.run


def run_experiment(
    experiment_id: str, ctx: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment (creating a default context if none given)."""
    ctx = ctx or ExperimentContext()
    return get_experiment(experiment_id)(ctx)
