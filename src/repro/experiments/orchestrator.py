"""Fault-isolated experiment orchestration.

``millisampler-repro run all`` drives ~25 experiments; the original
loop was serial and fail-fast, so one broken experiment killed the
whole suite and left no record of what had already run.  The
orchestrator gives every experiment its own failure boundary and
telemetry:

* each experiment produces an :class:`ExperimentOutcome` — status
  (``ok`` / ``failed`` / ``skipped``), wall time, peak memory
  (``tracemalloc`` traced peak when running serially, process RSS
  high-water mark via :mod:`resource` always), dataset-cache traffic,
  and the result's headline metrics;
* a raising experiment is recorded and the suite continues; the caller
  decides the exit code from :attr:`OrchestrationResult.failures`;
* ``exp_jobs > 1`` fans experiments out over a thread pool after a
  single shared dataset warm-up, with outcomes collected in requested
  order so output and manifests are deterministic.  Experiments are
  pure functions of the (pre-warmed, immutable) context, so thread
  scheduling cannot change their metrics.
"""

from __future__ import annotations

import time
import tracemalloc
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigError
from ..fleet.parallel import resolve_jobs
from .base import ExperimentResult
from .context import ExperimentContext
from .registry import EXPERIMENTS, get_experiment

try:  # POSIX-only; outcomes carry None for RSS where unavailable.
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

#: Counter names the dataset cache records (see repro.fleet.cache);
#: per-experiment deltas of these become the outcome's cache stats.
CACHE_HIT_COUNTER = "dataset.cache.hit"
CACHE_MISS_COUNTER = "dataset.cache.miss"

#: Regions the shared warm-up generates before a parallel run.
WARMUP_REGIONS = ("RegA", "RegB")


@dataclass
class ExperimentOutcome:
    """The structured record of one experiment's execution."""

    experiment_id: str
    status: str  # "ok" | "failed" | "skipped"
    wall_time_s: float = 0.0
    error: str | None = None
    #: tracemalloc traced-allocation peak during the experiment; None
    #: when running on a thread pool (the tracer is process-global).
    peak_tracemalloc_bytes: int | None = None
    #: Process RSS high-water mark after the experiment (monotonic
    #: per process, so attribution is approximate); None off-POSIX.
    peak_rss_bytes: int | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: The result's headline metrics (empty unless status is "ok").
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class OrchestrationResult:
    """Everything one orchestrated suite run produced."""

    #: One outcome per requested experiment, in requested order.
    outcomes: list[ExperimentOutcome]
    #: Results of the successful experiments, in requested order.
    results: dict[str, ExperimentResult]

    @property
    def failures(self) -> list[ExperimentOutcome]:
        """Every outcome that did not complete (failed or skipped)."""
        return [o for o in self.outcomes if o.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def failure_summary(self) -> str:
        """Terminal-ready summary of every failure (empty string if none)."""
        failures = self.failures
        if not failures:
            return ""
        lines = [f"FAILURES ({len(failures)}/{len(self.outcomes)} experiments):"]
        for outcome in failures:
            lines.append(
                f"  {outcome.experiment_id} [{outcome.status}]: {outcome.error}"
            )
        return "\n".join(lines)


def _peak_rss_bytes() -> int | None:
    """Process RSS high-water mark (Linux reports ru_maxrss in KiB)."""
    if resource is None:
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024


def warm_datasets(
    ctx: ExperimentContext, regions: tuple[str, ...] = WARMUP_REGIONS
) -> None:
    """Generate (or cache-load) the shared datasets once, up front.

    Run before fanning experiments out so workers never race to build
    the same region-day; afterwards every ``ctx.dataset()`` call is an
    in-memory lookup.
    """
    with ctx.metrics.span("warmup"):
        for region in regions:
            ctx.dataset(region)


def _run_one(
    ctx: ExperimentContext,
    experiment_id: str,
    trace_memory: bool,
    reraise: bool,
) -> tuple[ExperimentOutcome, ExperimentResult | None]:
    """Execute one experiment inside its failure boundary."""
    counters_before = ctx.metrics.counters()
    started_tracing = False
    if trace_memory:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True
        tracemalloc.reset_peak()
    started = time.perf_counter()
    result: ExperimentResult | None = None
    error: str | None = None
    try:
        # audit_scope installs the context's InvariantAuditor (when
        # --audit is on) around the experiment body *inside* the failure
        # boundary: a conservation-law violation fails that experiment
        # like any other error, and the scope's exit re-verifies global
        # state (occupancy vs in-flight admissions) after a clean run.
        with ctx.audit_scope(), ctx.metrics.span(f"experiment/{experiment_id}"):
            result = get_experiment(experiment_id)(ctx)
    except Exception as exc:
        if reraise:
            # The normal epilogue below never runs on this path, so the
            # process-wide tracer must be released here or it stays on
            # for the rest of the process (skewing every later
            # tracemalloc user).
            if started_tracing:
                tracemalloc.stop()
            raise
        error = f"{type(exc).__name__}: {exc}"
    wall_time = time.perf_counter() - started
    peak_traced: int | None = None
    if trace_memory and tracemalloc.is_tracing():
        peak_traced = tracemalloc.get_traced_memory()[1]
        if started_tracing:
            tracemalloc.stop()
    counters_after = ctx.metrics.counters()

    def delta(name: str) -> int:
        return int(counters_after.get(name, 0) - counters_before.get(name, 0))

    outcome = ExperimentOutcome(
        experiment_id=experiment_id,
        status="ok" if error is None else "failed",
        wall_time_s=wall_time,
        error=error,
        peak_tracemalloc_bytes=peak_traced,
        peak_rss_bytes=_peak_rss_bytes(),
        cache_hits=delta(CACHE_HIT_COUNTER),
        cache_misses=delta(CACHE_MISS_COUNTER),
        metrics=dict(result.metrics) if result is not None else {},
    )
    return outcome, result


def run_experiments(
    ctx: ExperimentContext,
    experiment_ids: list[str],
    exp_jobs: int = 1,
    progress: Callable[[ExperimentOutcome, ExperimentResult | None], None] | None = None,
    on_error: str = "collect",
) -> OrchestrationResult:
    """Run experiments with per-experiment isolation and telemetry.

    ``exp_jobs`` follows the ``--jobs`` convention (0 = every core,
    1 = serial).  ``on_error`` is ``"collect"`` (record the failure,
    keep going — the orchestrated default) or ``"raise"`` (legacy
    fail-fast, used where callers want the exception).  ``progress``
    is invoked once per experiment *in requested order* with the
    outcome and the result (None on failure), so streamed output is
    identical for any job count.
    """
    if on_error not in ("collect", "raise"):
        raise ConfigError(f"on_error must be 'collect' or 'raise', got {on_error!r}")
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        raise ConfigError(
            f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}"
        )
    reraise = on_error == "raise"
    jobs = min(resolve_jobs(exp_jobs), max(len(experiment_ids), 1))

    outcomes: list[ExperimentOutcome] = []
    results: dict[str, ExperimentResult] = {}

    def collect(outcome: ExperimentOutcome, result: ExperimentResult | None) -> None:
        outcomes.append(outcome)
        if result is not None:
            results[outcome.experiment_id] = result
        if progress is not None:
            progress(outcome, result)

    skip_reason: str | None = None
    if jobs > 1 and any(EXPERIMENTS[e].needs_dataset for e in experiment_ids):
        try:
            warm_datasets(ctx)
        except Exception as exc:
            if reraise:
                raise
            # The shared datasets cannot be built: every dataset-bound
            # experiment would fail the same way, so skip them with the
            # root cause and still run the standalone experiments.
            skip_reason = f"dataset warm-up failed: {type(exc).__name__}: {exc}"

    def runnable(experiment_id: str) -> bool:
        return skip_reason is None or not EXPERIMENTS[experiment_id].needs_dataset

    def skipped(experiment_id: str) -> ExperimentOutcome:
        return ExperimentOutcome(
            experiment_id=experiment_id,
            status="skipped",
            error=skip_reason,
            peak_rss_bytes=_peak_rss_bytes(),
        )

    if jobs == 1:
        for experiment_id in experiment_ids:
            collect(*_run_one(ctx, experiment_id, trace_memory=True, reraise=reraise))
    else:
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="experiment"
        ) as pool:
            futures = [
                (
                    experiment_id,
                    pool.submit(_run_one, ctx, experiment_id, False, reraise)
                    if runnable(experiment_id)
                    else None,
                )
                for experiment_id in experiment_ids
            ]
            for experiment_id, future in futures:
                if future is None:
                    collect(skipped(experiment_id), None)
                else:
                    collect(*future.result())
    return OrchestrationResult(outcomes=outcomes, results=results)
