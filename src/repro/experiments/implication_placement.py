"""Implication experiment: which metric should placement consume?

Section 9: placement can affect buffer contention, but "the fact that
higher contention does not translate to more loss across workloads
indicates the need for more detailed metrics that combine burst
properties and contention".

This experiment scores every RegA rack with three candidate metrics —
per-minute ingress volume (what schedulers see today), average
contention (what SyncMillisampler newly measures), and a combined
burst-risk score (contended, mid-length, high-fan-in burst volume) —
and ranks them by how well they predict the rack's realized lossy-burst
fraction.
"""

from __future__ import annotations


from ..analysis.placement_metrics import rank_correlation, score_racks
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    scores = score_racks(ctx.summaries("RegA"))
    racks = sorted(scores)
    losses = [scores[r]["realized_loss"] for r in racks]

    rows = []
    metrics = {}
    for candidate in ("volume", "contention", "burst_risk"):
        values = [scores[r][candidate] for r in racks]
        rho = rank_correlation(values, losses)
        metrics[f"spearman_{candidate}"] = rho
        rows.append([candidate, f"{rho:+.3f}"])

    table = ResultTable(
        title="Spearman rank correlation with realized lossy-burst fraction "
              f"({len(racks)} RegA racks)",
        headers=["candidate placement metric", "rank correlation with loss"],
        rows=rows,
    )
    best = max(
        ("volume", "contention", "burst_risk"),
        key=lambda c: metrics[f"spearman_{c}"],
    )
    return ExperimentResult(
        experiment_id="implication-placement",
        title="Placement-metric comparison (Section 9)",
        paper_claim=(
            "Contention only loosely correlates with volume, and loss does "
            "not follow contention across workloads — placement needs a "
            "metric combining burst properties and contention."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"Best predictor of rack loss: {best} "
            f"(rho = {metrics['spearman_' + best]:+.3f}); "
            f"plain contention scores {metrics['spearman_contention']:+.3f} — "
            + (
                "the combined burst/contention metric wins, as Section 9 "
                "anticipates."
                if best == "burst_risk"
                else "at this scale the simpler metric suffices."
            )
        ),
    )
