"""Ablation: sensitivity of the findings to the burst definition.

The paper defines a burst as samples exceeding 50% of line rate,
"following previous work [Zhang et al. 2017]", arguing traffic below
that rate does not typically result in buffering.  This ablation
re-runs the contention and loss analysis with thresholds of 30%, 50%,
and 70% on the same dataset and checks which conclusions are
threshold-robust: the bimodal rack split, the contended-burst
fraction, and — most importantly — the loss inversion.
"""

from __future__ import annotations

import numpy as np

from ..analysis.racks import rack_profiles
from ..analysis.summary import summarize_run
from ..fleet.rackrun import RackRunSynthesizer
from ..workload.region import REGION_A, build_region_workloads
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

THRESHOLDS = (0.3, 0.5, 0.7)


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    # Re-synthesize a compact RegA slice once, then re-analyze the same
    # raw runs under each threshold (the threshold is an analysis
    # parameter, not a generation parameter).
    rng = np.random.default_rng(ctx.fleet.seed + 17)
    racks = max(12, ctx.fleet.racks_per_region // 4)
    workloads = build_region_workloads(REGION_A, racks=racks, rng=rng)
    synthesizer = RackRunSynthesizer()
    raw_runs = [
        synthesizer.synthesize(workload, hour=6, rng=rng) for workload in workloads
    ]

    rows = []
    metrics: dict[str, float] = {}
    for threshold in THRESHOLDS:
        summaries = [summarize_run(run, threshold=threshold) for run in raw_runs]
        profiles = rack_profiles(summaries)
        contention = np.array([p.mean_contention for p in profiles])
        coloc = np.array([p.colocated for p in profiles])

        bursts = [b for s in summaries for b in s.bursts]
        contended = sum(1 for b in bursts if b.contended)
        lossy_coloc = [
            (b.lossy, b.contended)
            for s in summaries
            if s.extras.get("colocated")
            for b in s.bursts
        ]
        lossy_spread = [
            b.lossy
            for s in summaries
            if not s.extras.get("colocated")
            for b in s.bursts
        ]
        coloc_lossy_pct = (
            np.mean([l for l, _ in lossy_coloc]) * 100 if lossy_coloc else 0.0
        )
        spread_lossy_pct = np.mean(lossy_spread) * 100 if lossy_spread else 0.0
        gap = (
            contention[coloc].mean() / max(contention[~coloc].mean(), 1e-9)
            if coloc.any() and (~coloc).any()
            else 0.0
        )
        inversion = spread_lossy_pct > coloc_lossy_pct

        label = f"{int(threshold * 100)}pct"
        metrics[f"contended_fraction_{label}"] = contended / max(len(bursts), 1)
        metrics[f"contention_gap_{label}"] = float(gap)
        metrics[f"inversion_holds_{label}"] = float(inversion)
        rows.append(
            [
                f"{threshold:.0%}",
                len(bursts),
                f"{contended / max(len(bursts), 1) * 100:.1f}%",
                f"{gap:.1f}x",
                f"{spread_lossy_pct:.2f}%",
                f"{coloc_lossy_pct:.2f}%",
                "yes" if inversion else "NO",
            ]
        )

    table = ResultTable(
        title="Burst-threshold sensitivity (RegA slice, busy hour)",
        headers=["threshold", "bursts", "contended", "coloc/spread contention",
                 "spread lossy", "coloc lossy", "inversion holds"],
        rows=rows,
    )
    robust = all(metrics[f"inversion_holds_{int(t * 100)}pct"] for t in THRESHOLDS)
    return ExperimentResult(
        experiment_id="ablation-threshold",
        title="Burst-definition sensitivity",
        paper_claim=(
            "The 50%-of-line-rate burst definition follows prior work; the "
            "qualitative findings should not hinge on the exact cut."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            "Loss inversion holds at every threshold."
            if robust
            else "Loss inversion is threshold-sensitive at this scale."
        ),
    )
