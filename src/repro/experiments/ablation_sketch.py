"""Ablation: how much does the 128-bit sketch distort the connection
analysis?

Section 4.2 accepts the sketch's coarseness: "more than the actual
number of connections, the qualitative variation between a few
connections to dozens or hundreds of connections has been helpful".
This ablation quantifies that claim for the analyses that consume
connection counts (Figures 8 and 19): estimator bias/error across the
operating range, and whether Figure 19's connection-count buckets are
preserved under sketch noise.
"""

from __future__ import annotations

import numpy as np

from ..core.sketch import SATURATION_ESTIMATE, FlowSketch
from ..experiments.fig19_incast_loss import CONN_EDGES
from ..fleet.rackrun import sketch_estimates
from ..viz.ascii import ascii_plot
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

TRUE_COUNTS = (1, 3, 6, 12, 25, 50, 100, 200, 400, 800)
TRIALS = 400


def _real_sketch_estimates(true_count: int, trials: int, rng) -> np.ndarray:
    """Estimates from the actual 128-bit FlowSketch with random keys."""
    estimates = np.empty(trials)
    for trial in range(trials):
        sketch = FlowSketch()
        for key in rng.integers(0, 2**62, size=true_count):
            sketch.observe(int(key))
        estimates[trial] = sketch.estimate()
    return estimates


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    rng = np.random.default_rng(2)
    rows = []
    means = []
    rel_errors = []
    bucket_agreement = []
    model_gap = []
    for true_count in TRUE_COUNTS:
        estimates = _real_sketch_estimates(true_count, TRIALS, rng)
        model = sketch_estimates(np.full(4000, float(true_count)), rng)
        mean = float(estimates.mean())
        rel_error = float(np.abs(estimates - true_count).mean() / true_count)
        means.append(mean)
        rel_errors.append(rel_error)
        model_gap.append(abs(float(model.mean()) - mean) / max(mean, 1e-9))
        # Does the estimate land in the same Figure 19 bucket as the truth?
        true_bucket = int(np.digitize(true_count, CONN_EDGES))
        est_buckets = np.digitize(estimates, CONN_EDGES)
        agreement = float((est_buckets == true_bucket).mean())
        bucket_agreement.append(agreement)
        rows.append(
            [true_count, f"{mean:.1f}", f"{rel_error * 100:.1f}%",
             f"{agreement * 100:.0f}%", f"{model_gap[-1] * 100:.1f}%"]
        )

    counts = np.array(TRUE_COUNTS, dtype=float)
    metrics = {
        "rel_error_at_12": rel_errors[TRUE_COUNTS.index(12)],
        "rel_error_at_100": rel_errors[TRUE_COUNTS.index(100)],
        "bucket_agreement_at_50": bucket_agreement[TRUE_COUNTS.index(50)],
        "saturation_estimate": float(SATURATION_ESTIMATE),
        "mean_estimate_at_800": means[TRUE_COUNTS.index(800)],
        "max_fleet_model_gap": float(max(model_gap)),
    }
    table = ResultTable(
        title="128-bit sketch estimator accuracy (real sketch, random keys)",
        headers=["true connections", "mean estimate", "mean |rel error|",
                 "same Fig-19 bucket", "fleet-model mean gap"],
        rows=rows,
    )
    rendering = ascii_plot(
        np.log10(counts),
        {"mean estimate": np.log10(np.maximum(means, 1e-9)),
         "truth": np.log10(counts)},
        x_label="log10(true connections)",
        y_label="log10(estimate)",
        title="Sketch estimate vs truth (saturates near 500+)",
        height=12,
    )
    return ExperimentResult(
        experiment_id="ablation-sketch",
        title="Connection-sketch accuracy",
        paper_claim=(
            "The 128-bit sketch is precise up to a dozen connections and "
            "saturates around 500; the qualitative few-vs-dozens-vs-hundreds "
            "distinction is what the analysis needs."
        ),
        tables=[table],
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"Relative error {metrics['rel_error_at_12'] * 100:.1f}% at 12 "
            f"connections and {metrics['rel_error_at_100'] * 100:.1f}% at 100; "
            f"estimates land in the correct Figure 19 bucket "
            f"{metrics['bucket_agreement_at_50'] * 100:.0f}% of the time at "
            f"fan-in 50; above ~500 the sketch pins to "
            f"{SATURATION_ESTIMATE} — the paper's stated envelope."
        ),
    )
