"""Ablation: buffer-sharing policies under the paper's workloads.

Section 9 argues for "tailoring buffer sharing policies to groups of
racks" and Section 10 surveys the alternatives (EDT, FAB, per-port
alpha).  This experiment replays identical rack workloads — one
spread/low-contention, one ML-co-located/high-contention — through the
fluid model under each policy and reports loss and buffer behaviour,
quantifying which policy suits which regime.
"""

from __future__ import annotations

import numpy as np

from ..fleet.buffermodel import FluidBufferModel
from ..fleet.demand import DemandModel
from ..fleet.policies import standard_policies
from ..workload.region import REGION_A, build_region_workloads
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext


def _evaluate(workload, policy, seeds) -> dict[str, float]:
    lost = offered = 0.0
    occupancy_p99 = []
    share_variability = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        demand = DemandModel().generate(workload, hour=6, buckets=1000, rng=rng)
        model = FluidBufferModel(servers=workload.placement.servers, policy=policy)
        result = model.run(
            demand.demand, demand.persistence,
            demand.initial_multiplier, demand.initial_alpha,
        )
        lost += result.dropped.sum()
        offered += demand.demand.sum()
        occupancy_p99.append(np.percentile(result.queue_occupancy, 99))
        busy = result.queue_occupancy[result.queue_occupancy > 0]
        if busy.size > 1:
            share_variability.append(float(busy.std() / busy.mean()))
    return {
        "loss_permille": lost / offered * 1000 if offered else 0.0,
        "occupancy_p99_kb": float(np.mean(occupancy_p99)) / 1024,
        "occupancy_cv": float(np.mean(share_variability)) if share_variability else 0.0,
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    rng = np.random.default_rng(ctx.fleet.seed)
    workloads = build_region_workloads(REGION_A, racks=12, rng=rng)
    spread = next(w for w in workloads if not w.colocated)
    colocated = next(w for w in workloads if w.colocated)
    queues_per_quadrant = -(-spread.placement.servers // 4)

    seeds = range(3)
    rows = []
    metrics: dict[str, float] = {}
    for policy in standard_policies(queues_per_quadrant):
        spread_eval = _evaluate(spread, policy, seeds)
        coloc_eval = _evaluate(colocated, policy, seeds)
        rows.append(
            [
                policy.name,
                f"{spread_eval['loss_permille']:.3f}",
                f"{coloc_eval['loss_permille']:.3f}",
                f"{spread_eval['occupancy_p99_kb']:.0f}",
                f"{coloc_eval['occupancy_p99_kb']:.0f}",
            ]
        )
        metrics[f"spread_loss_{policy.name}"] = spread_eval["loss_permille"]
        metrics[f"coloc_loss_{policy.name}"] = coloc_eval["loss_permille"]

    table = ResultTable(
        title="Buffer-sharing policy ablation (loss per mille of offered bytes)",
        headers=["policy", "spread loss", "coloc loss",
                 "spread p99 occ (KB)", "coloc p99 occ (KB)"],
        rows=rows,
    )
    dt_spread = metrics["spread_loss_dynamic-threshold"]
    static_spread = metrics["spread_loss_static-partition"]
    return ExperimentResult(
        experiment_id="ablation-policies",
        title="Buffer-sharing policy ablation",
        paper_claim=(
            "Implication (Section 9): tailor buffer sharing per rack class; "
            "burst-absorbing policies help low-contention racks where "
            "variable buffers hurt fresh bursts."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"Deployed DT loses {dt_spread:.3f} per mille on the spread rack vs "
            f"{static_spread:.3f} under static partitioning — dynamic sharing "
            f"absorbs bursts that hard slicing drops; burst-absorbing policies "
            f"(EDT / flow-aware) reduce loss further at the cost of isolation."
        ),
    )
