"""Figure 7: burst length distribution — all, contended, non-contended.

Paper: median 2 ms, p90 8 ms overall; 84.8% of RegA bursts contended;
non-contended bursts are shorter (88% below 3 ms) and smaller (median
1 MB vs 1.8 MB; p90 2.9 MB vs 9 MB).
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import cdf, cdf_value_at, percentile
from ..viz.ascii import ascii_cdf
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    summaries = ctx.summaries("RegA")
    all_lengths = []
    contended_lengths = []
    non_contended_lengths = []
    all_volumes = []
    non_contended_volumes = []
    for summary in summaries:
        ms = summary.sampling_interval / 1e-3
        for burst in summary.bursts:
            length = burst.length * ms
            all_lengths.append(length)
            all_volumes.append(burst.volume)
            if burst.contended:
                contended_lengths.append(length)
            else:
                non_contended_lengths.append(length)
                non_contended_volumes.append(burst.volume)

    all_arr = np.array(all_lengths)
    contended_fraction = len(contended_lengths) / len(all_lengths)
    metrics = {
        "median_length_ms": percentile(all_arr, 50),
        "p90_length_ms": percentile(all_arr, 90),
        "contended_fraction": contended_fraction,
        "non_contended_under_3ms_pct": cdf_value_at(non_contended_lengths, 3.0),
        "median_volume_mb": float(np.median(all_volumes)) / 1e6,
        "p90_volume_mb": float(np.percentile(all_volumes, 90)) / 1e6,
        "nc_median_volume_mb": float(np.median(non_contended_volumes)) / 1e6,
        "nc_p90_volume_mb": float(np.percentile(non_contended_volumes, 90)) / 1e6,
    }
    groups = {
        "all": all_arr,
        "non-contended": np.array(non_contended_lengths),
        "contended": np.array(contended_lengths),
    }
    series = []
    for name, values in groups.items():
        x, y = cdf(values)
        series.append(Series(name, x, y))
    rendering = ascii_cdf(
        groups, x_label="burst length (ms)",
        title="Figure 7: burst length distribution (RegA)",
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Burst length distribution",
        paper_claim=(
            "Median burst 2 ms, p90 8 ms; 84.8% of bursts contended; 88% of "
            "non-contended bursts under 3 ms; volumes: median 1.8 MB "
            "(p90 9 MB) overall vs 1 MB (2.9 MB) non-contended."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"median {metrics['median_length_ms']:.0f} ms (2), p90 "
            f"{metrics['p90_length_ms']:.0f} ms (8); contended "
            f"{contended_fraction * 100:.1f}% (84.8); non-contended <3 ms: "
            f"{metrics['non_contended_under_3ms_pct']:.0f}% (88); volume "
            f"median/p90 {metrics['median_volume_mb']:.1f}/"
            f"{metrics['p90_volume_mb']:.1f} MB (1.8/9); non-contended "
            f"{metrics['nc_median_volume_mb']:.1f}/{metrics['nc_p90_volume_mb']:.1f} MB "
            f"(1.0/2.9)."
        ),
    )
