"""Figure 6 + Section 6 text statistics: burst frequency and utilization.

CDF of bursts-per-second across bursty server runs (paper: median 7.5,
p90 39.8), plus the section's supporting numbers: fraction of server
runs that are bursty (34%), fraction of ingress bytes inside bursts
(49.7%), and in-burst / outside-burst utilization medians (65.5% /
5.5%).
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import cdf, percentile
from ..viz.ascii import ascii_cdf
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    summaries = ctx.summaries("RegA")
    frequencies = []
    in_util = []
    out_util = []
    run_avg_util = []
    total_bytes = 0.0
    burst_bytes = 0.0
    bursty_runs = 0
    server_runs = 0
    for summary in summaries:
        for stat in summary.server_stats:
            server_runs += 1
            total_bytes += stat.total_in_bytes
            burst_bytes += stat.in_burst_bytes
            if stat.bursty:
                bursty_runs += 1
                frequencies.append(stat.bursts_per_second)
                run_avg_util.append(stat.avg_utilization)
                if np.isfinite(stat.utilization_in_bursts):
                    in_util.append(stat.utilization_in_bursts)
                if np.isfinite(stat.utilization_outside_bursts):
                    out_util.append(stat.utilization_outside_bursts)

    freq = np.array(frequencies)
    x, y = cdf(freq)
    series = [Series("bursts-per-second", x, y)]
    metrics = {
        "median_bursts_per_sec": percentile(freq, 50),
        "p90_bursts_per_sec": percentile(freq, 90),
        "bursty_server_run_fraction": bursty_runs / server_runs,
        "burst_byte_fraction": burst_bytes / total_bytes if total_bytes else 0.0,
        "median_run_avg_utilization": float(np.median(run_avg_util)),
        "p95_run_avg_utilization": float(np.percentile(run_avg_util, 95)),
        "median_in_burst_utilization": float(np.median(in_util)),
        "median_outside_burst_utilization": float(np.median(out_util)),
    }
    rendering = ascii_cdf(
        {"bursts/sec": freq},
        x_label="frequency of bursts (per sec)",
        title="Figure 6: burst frequency per bursty server run (RegA)",
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Burst frequency in a run",
        paper_claim=(
            "Median bursty run sees 7.5 bursts/s, p90 39.8; 34% of server "
            "runs are bursty; 49.7% of ingress bytes travel in bursts; "
            "median utilization 65.5% inside bursts vs 5.5% outside."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"median {metrics['median_bursts_per_sec']:.1f} bursts/s "
            f"(paper 7.5), p90 {metrics['p90_bursts_per_sec']:.1f} (39.8); "
            f"{metrics['bursty_server_run_fraction'] * 100:.0f}% of server runs "
            f"bursty (34%); {metrics['burst_byte_fraction'] * 100:.0f}% of bytes "
            f"in bursts (49.7%); utilization in/out "
            f"{metrics['median_in_burst_utilization'] * 100:.0f}%/"
            f"{metrics['median_outside_burst_utilization'] * 100:.1f}% (65.5/5.5)."
        ),
    )
