"""Figure 15: within-run contention variation and its buffer impact.

For each run: the minimum contention (over samples with at least one
active server) and the p90 contention, sorted by minimum; and the
corresponding dynamic-threshold buffer shares.  Paper: 6.2% of runs
excluded (p90 = 0); the median run's buffer share drops 33.3% from its
peak, and 15% of runs drop >= 70%.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contention import buffer_share, buffer_share_drop
from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    # Per-run contention in global run order — streamed shard-by-shard
    # under a shard store, from the summary list otherwise.
    view = ctx.run_contention("RegA")
    excluded = view.excluded

    mins = view.mins
    p90s = view.p90s
    # The p90 is taken over *all* samples (zeros included) with linear
    # interpolation, so on a mostly-idle run it can land fractionally
    # below the minimum over active samples; the buffer-share drop of
    # such a run is zero.
    p90s = np.maximum(p90s, mins)
    order = np.lexsort((p90s, mins))
    mins = mins[order]
    p90s = p90s[order]
    run_ids = np.arange(len(mins), dtype=float)

    share_min = np.array([buffer_share(m) * 100 for m in mins])
    share_p90 = np.array([buffer_share(p) * 100 for p in p90s])
    drops = np.array(
        [buffer_share_drop(m, p) for m, p in zip(mins, p90s)]
    )

    series = [
        Series("min-contention", run_ids, mins),
        Series("p90-contention", run_ids, p90s),
        Series("share-at-min", run_ids, share_min),
        Series("share-at-p90", run_ids, share_p90),
    ]
    metrics = {
        "excluded_fraction": excluded / view.total if view.total else 0.0,
        "median_share_drop": float(np.median(drops)),
        "frac_drop_ge_70pct": float((drops >= 0.70).mean()),
        "median_min_contention": float(np.median(mins)),
        "median_p90_contention": float(np.median(p90s)),
    }
    rendering = "\n\n".join(
        [
            ascii_plot(
                run_ids,
                {"min": mins, "p90": p90s},
                x_label="run id (sorted)",
                y_label="contention",
                title="Figure 15a: min and p90 contention per run (RegA)",
                height=12,
            ),
            ascii_plot(
                run_ids,
                {"share@min": share_min, "share@p90": share_p90},
                x_label="run id (sorted)",
                y_label="queue share (% of buffer)",
                title="Figure 15b: buffer share at min vs p90 contention",
                height=12,
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="Within-run contention variation and buffer share",
        paper_claim=(
            "6.2% of runs have zero p90 contention and are excluded; the "
            "median run's per-queue buffer share drops 33.3% between its "
            "calmest and p90 contention; for 15% of runs the drop is >=70%."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"excluded {metrics['excluded_fraction'] * 100:.1f}% of runs "
            f"(paper 6.2%); median share drop "
            f"{metrics['median_share_drop'] * 100:.1f}% (33.3%); drop >=70% for "
            f"{metrics['frac_drop_ge_70pct'] * 100:.1f}% of runs (15%)."
        ),
    )
