"""Figure 17: CDF of switch congestion discards normalized to volume.

Paper: per-rack per-queue discard counters, summed per minute and
normalized by traffic volume, confirm the host-side finding —
RegA-High racks discard *less* per byte than RegA-Typical.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import cdf
from ..viz.ascii import ascii_cdf
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    classes = ctx.rega_classes()
    groups = {}
    for rack_class, profiles in classes.items():
        values = np.array(
            [p.normalized_discards * 1e6 for p in profiles]
        )  # discarded bytes per MB of ingress
        groups[rack_class.value] = values

    series = []
    metrics = {}
    for name, values in groups.items():
        if values.size == 0:
            continue
        x, y = cdf(values)
        series.append(Series(name, x, y))
        metrics[f"median_discards_per_mb_{name}"] = float(np.median(values))
        metrics[f"mean_discards_per_mb_{name}"] = float(values.mean())

    plot_groups = {k: v for k, v in groups.items() if v.size}
    rendering = ascii_cdf(
        plot_groups,
        x_label="congestion discards (bytes per MB of ingress)",
        title="Figure 17: normalized switch discards by rack class (RegA)",
    )
    typical = metrics.get("median_discards_per_mb_RegA-Typical", 0.0)
    high = metrics.get("median_discards_per_mb_RegA-High", 0.0)
    return ExperimentResult(
        experiment_id="fig17",
        title="Normalized switch congestion discards",
        paper_claim=(
            "RegA-High racks see fewer congestion discards per byte in the "
            "switch counters, consistent with the host-side loss analysis."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"median discards per MB of ingress: RegA-Typical {typical:.1f} "
            f"vs RegA-High {high:.1f} — "
            + ("consistent with the inversion." if high <= typical else
               "NOT consistent; investigate.")
        ),
    )
