"""Table 2: burst summary per rack class.

Paper:

=============  =========  ===========  =======
Class          # bursts   % contended  % lossy
=============  =========  ===========  =======
RegA-Typical   10.2M      70.9%        1.05%
RegA-High      9.3M       100%         0.36%
RegB           23.9M      96.8%        0.78%
=============  =========  ===========  =======

Plus the headline aggregates: RegA-High holds 20% of racks but 47.8%
of RegA bursts; 91.4% of all bursts experience contention; and the
surprise — RegA-Typical is 2.9x lossier than RegA-High.
"""

from __future__ import annotations

from collections import defaultdict

from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

PAPER = {
    "RegA-Typical": dict(contended=70.9, lossy=1.05),
    "RegA-High": dict(contended=100.0, lossy=0.36),
    "RegB": dict(contended=96.8, lossy=0.78),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    totals: dict[str, list[int]] = defaultdict(lambda: [0, 0, 0])  # bursts, contended, lossy
    for region in ("RegA", "RegB"):
        for summary in ctx.summaries(region):
            burst_class = ctx.class_of_run(summary)
            entry = totals[burst_class]
            for burst in summary.bursts:
                entry[0] += 1
                entry[1] += int(burst.contended)
                entry[2] += int(burst.lossy)

    rows = []
    metrics = {}
    for name in ("RegA-Typical", "RegA-High", "RegB"):
        bursts, contended, lossy = totals.get(name, [0, 0, 0])
        contended_pct = contended / bursts * 100 if bursts else 0.0
        lossy_pct = lossy / bursts * 100 if bursts else 0.0
        rows.append(
            [
                name, bursts, f"{contended_pct:.1f}%", f"{lossy_pct:.2f}%",
                f"{PAPER[name]['contended']:.1f}%", f"{PAPER[name]['lossy']:.2f}%",
            ]
        )
        metrics[f"bursts_{name}"] = float(bursts)
        metrics[f"contended_pct_{name}"] = contended_pct
        metrics[f"lossy_pct_{name}"] = lossy_pct

    rega_total = metrics["bursts_RegA-Typical"] + metrics["bursts_RegA-High"]
    metrics["rega_high_burst_share"] = (
        metrics["bursts_RegA-High"] / rega_total if rega_total else 0.0
    )
    all_bursts = sum(v[0] for v in totals.values())
    all_contended = sum(v[1] for v in totals.values())
    metrics["overall_contended_pct"] = (
        all_contended / all_bursts * 100 if all_bursts else 0.0
    )
    metrics["loss_inversion_ratio"] = (
        metrics["lossy_pct_RegA-Typical"] / metrics["lossy_pct_RegA-High"]
        if metrics["lossy_pct_RegA-High"] > 0
        else float("inf")
    )

    table = ResultTable(
        title="Table 2: bursts per rack class (measured vs paper)",
        headers=["Class", "# bursts", "% contended", "% lossy",
                 "paper contended", "paper lossy"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Burst summary by rack class",
        paper_claim=(
            "RegA-High: 20% of racks, 47.8% of bursts, all contended, "
            "0.36% lossy; RegA-Typical 70.9% contended but 1.05% lossy "
            "(2.9x more); RegB 96.8% contended, 0.78% lossy; 91.4% of all "
            "bursts contended."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"RegA-High burst share {metrics['rega_high_burst_share'] * 100:.1f}% "
            f"(paper 47.8%); overall contended "
            f"{metrics['overall_contended_pct']:.1f}% (91.4%); loss inversion "
            f"{metrics['loss_inversion_ratio']:.1f}x (2.9x)."
        ),
    )
