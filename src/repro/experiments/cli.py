"""Command-line entry point: regenerate paper tables and figures.

Examples::

    millisampler-repro list
    millisampler-repro run fig9 fig16 --racks 60
    millisampler-repro run all --out results/ --racks 150
    millisampler-repro run all --exp-jobs 4 --manifest out/manifest.json

Suite runs (`run`, `report`) go through the experiment orchestrator:
every experiment executes inside its own failure boundary, so one
broken experiment never kills the rest — the suite completes, prints a
failure summary, and exits nonzero.  ``--manifest`` leaves a
machine-readable JSON record (config, telemetry, per-experiment
outcomes); ``--profile`` prints the timer/counter profile.
"""

from __future__ import annotations

import argparse
import sys

from ..config import KERNEL_CHOICES, FleetConfig
from .context import ExperimentContext
from .registry import EXPERIMENTS, ordered_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="millisampler-repro",
        description=(
            "Reproduce the tables and figures of 'A Microscopic View of "
            "Bursts, Buffer Contention, and Loss in Data Centers' (IMC 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (fig1..fig19, table1, table2, perf) or 'all'",
    )
    run_parser.add_argument("--racks", type=int, default=100,
                            help="racks per region for the synthetic dataset")
    run_parser.add_argument("--runs-per-rack", type=int, default=10)
    run_parser.add_argument("--seed", type=int, default=20221025)
    run_parser.add_argument("--out", type=str, default=None,
                            help="directory for CSV series and text reports")
    run_parser.add_argument("--quiet", action="store_true")
    _add_generation_args(run_parser)
    _add_orchestration_args(run_parser)

    export_parser = sub.add_parser(
        "export",
        help="generate a synthetic region-day and write it in the "
             "Millisampler dataset format (NDJSON.gz per rack run)",
    )
    export_parser.add_argument("out", help="output directory")
    export_parser.add_argument("--region", choices=("RegA", "RegB"), default="RegA")
    export_parser.add_argument("--racks", type=int, default=10)
    export_parser.add_argument("--runs-per-rack", type=int, default=4)
    export_parser.add_argument("--seed", type=int, default=20221025)
    export_parser.add_argument(
        "--policy", type=_policy_arg, default=None, metavar="NAME[:K=V,...]",
        help="buffer-sharing policy for the exported runs "
             "(see `run`'s --policy)",
    )

    analyze_parser = sub.add_parser(
        "analyze",
        help="run the paper's burst/contention/loss analysis on a "
             "directory of Millisampler dataset files (released or exported)",
    )
    analyze_parser.add_argument("directory")

    serve_parser = sub.add_parser(
        "serve",
        help="run the persistent query service: one shard store, one "
             "worker pool, dataset/table1/figure queries over local HTTP "
             "or a unix socket with NDJSON streaming (see repro.service)",
    )
    serve_parser.add_argument("--racks", type=int, default=100,
                              help="racks per region for the synthetic dataset")
    serve_parser.add_argument("--runs-per-rack", type=int, default=10)
    serve_parser.add_argument("--seed", type=int, default=20221025)
    serve_parser.add_argument("--host", type=str, default="127.0.0.1",
                              help="TCP bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8787,
                              help="TCP port (0 picks a free port; default 8787)")
    serve_parser.add_argument(
        "--unix-socket", type=str, default=None, metavar="PATH",
        help="also (or instead) listen on a unix domain socket",
    )
    serve_parser.add_argument(
        "--no-tcp", action="store_true",
        help="listen only on --unix-socket (requires it)",
    )
    serve_parser.add_argument(
        "--request-threads", type=int, default=2,
        help="threads executing query bodies; counted as reserved cores "
             "when --jobs 0 sizes the worker pool, so pool + request "
             "threads never oversubscribe the machine (default 2)",
    )
    _add_generation_args(serve_parser)

    report_parser = sub.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    report_parser.add_argument("out", help="output markdown path (e.g. REPORT.md)")
    report_parser.add_argument("--racks", type=int, default=60)
    report_parser.add_argument("--runs-per-rack", type=int, default=8)
    report_parser.add_argument("--seed", type=int, default=20221025)
    _add_generation_args(report_parser)
    _add_orchestration_args(report_parser)
    return parser


def _add_orchestration_args(parser: argparse.ArgumentParser) -> None:
    """Orchestration/observability knobs shared by `run` and `report`."""
    parser.add_argument(
        "--exp-jobs", type=int, default=1,
        help="run experiments on a thread pool of this size after a "
             "shared dataset warm-up (0 = all cores, 1 = serial; "
             "default 1); results are identical for any value",
    )
    parser.add_argument(
        "--manifest", type=str, default=None, metavar="PATH",
        help="write a JSON run manifest (config, telemetry, "
             "per-experiment status/timing/memory) to PATH",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the timer/counter profile after the run",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="continuously check simulator conservation laws (buffer "
             "occupancy, byte accounting, admission release, time "
             "monotonicity) while experiments run; violations fail the "
             "experiment and audit totals land in the manifest telemetry",
    )


def _policy_arg(text: str):
    """argparse type for ``--policy``: a validated PolicySpec."""
    from ..errors import ConfigError
    from ..fleet.policies import parse_policy_arg

    try:
        return parse_policy_arg(text)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _add_generation_args(parser: argparse.ArgumentParser) -> None:
    """Dataset-generation knobs shared by `run` and `report`.

    The per-(rack, run) seed streams make generation identical for any
    --jobs value, and the cache key covers everything that shapes the
    data, so these flags change cost, never results.  ``--policy`` is
    the exception by design: the sharing policy shapes the data, so it
    feeds the cache key and per-policy datasets never collide.
    """
    parser.add_argument(
        "--policy", type=_policy_arg, default=None, metavar="NAME[:K=V,...]",
        help="buffer-sharing policy every synthesized rack runs under, "
             "as a registered name with optional parameters, e.g. "
             "'delay-driven:alpha=1,target_delay_steps=2' (default: the "
             "deployed dynamic threshold; see repro.fleet.policies)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for dataset generation "
             "(0 = all cores, 1 = serial; default 0)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk dataset cache directory (default "
             "$MILLISAMPLER_CACHE_DIR or ~/.cache/millisampler-repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always regenerate datasets; neither read nor write the cache",
    )
    parser.add_argument(
        "--store-dir", type=str, default=None, metavar="DIR",
        help="root of the sharded out-of-core region store; when set, "
             "region-days are generated, cached, and aggregated shard by "
             "shard (peak memory = one shard) and the monolithic pickle "
             "cache is bypassed",
    )
    parser.add_argument(
        "--shard-racks", type=int, default=None, metavar="N",
        help="racks per shard for --store-dir (default 64)",
    )
    parser.add_argument(
        "--shard-hours", type=int, default=None, metavar="N",
        help="hours per shard for --store-dir (default 12)",
    )
    parser.add_argument(
        "--shm-transfer", action="store_true",
        help="return worker results through a shared-memory segment "
             "instead of pickling them over the pool's result pipe; "
             "bit-identical to the default pickled transport (which "
             "remains the exactness oracle), cheaper at scale",
    )
    parser.add_argument(
        "--kernel", choices=KERNEL_CHOICES, default="auto",
        help="fluid-model kernel: 'native' is the numba-jitted time "
             "loop, 'numpy' the vectorized oracle, 'auto' (default) "
             "native when numba is installed; bit-identical datasets "
             "either way, so the choice never affects the cache key",
    )


def _cache_dir(args) -> str | None:
    from ..fleet.cache import default_cache_dir

    if args.no_cache:
        return None
    return args.cache_dir or default_cache_dir()


def _export(args) -> int:
    """Handle `export`: write a synthetic region in dataset format."""
    import numpy as np

    from ..fleet.rackrun import RackRunSynthesizer
    from ..io.msdata import write_sync_run
    from ..workload.region import REGION_A, REGION_B, build_region_workloads

    # Run hours are drawn without replacement from the 24 hours of the
    # region-day; validate here so the limit surfaces as a CLI error,
    # not an opaque numpy ValueError from rng.choice.
    if not 1 <= args.runs_per_rack <= 24:
        print(
            f"error: --runs-per-rack must be between 1 and 24 "
            f"(each rack is sampled at distinct hours of one 24-hour "
            f"day), got {args.runs_per_rack}",
            file=sys.stderr,
        )
        return 2

    spec = REGION_A if args.region == "RegA" else REGION_B
    rng = np.random.default_rng(args.seed)
    synthesizer = RackRunSynthesizer(policy=args.policy)
    workloads = build_region_workloads(spec, args.racks, rng)
    written = 0
    for workload in workloads:
        hours = np.sort(rng.choice(24, size=args.runs_per_rack, replace=False))
        for hour in hours:
            sync_run = synthesizer.synthesize(workload, int(hour), rng)
            write_sync_run(sync_run, args.out)
            written += 1
    print(f"wrote {written} rack runs to {args.out}")
    return 0


def _analyze(args) -> int:
    """Handle `analyze`: the Section 5-8 pipeline over dataset files."""
    import numpy as np

    from ..analysis.stats import percentile
    from ..analysis.summary import summarize_run
    from ..io.msdata import load_rack_directory
    from ..viz.table import render_table

    sync_runs = load_rack_directory(args.directory)
    summaries = [summarize_run(run) for run in sync_runs]
    bursts = [b for s in summaries for b in s.bursts]
    if not bursts:
        print("no bursts found in the dataset")
        return 0
    # Burst.length counts sample buckets; convert via each run's actual
    # sampling interval so e.g. a 100 us export is not reported 10x long.
    lengths_ms = [
        burst.length_ms(summary.sampling_interval)
        for summary in summaries
        for burst in summary.bursts
    ]
    contended = sum(1 for b in bursts if b.contended)
    lossy = sum(1 for b in bursts if b.lossy)
    contention = [s.contention.mean for s in summaries]
    rows = [
        ["rack runs", len(summaries)],
        ["server runs", sum(s.servers for s in summaries)],
        ["bursts", len(bursts)],
        ["median burst length (ms)", percentile(lengths_ms, 50)],
        ["p90 burst length (ms)", percentile(lengths_ms, 90)],
        ["contended bursts", f"{contended / len(bursts) * 100:.1f}%"],
        ["lossy bursts", f"{lossy / len(bursts) * 100:.2f}%"],
        ["mean avg contention", f"{float(np.mean(contention)):.2f}"],
        ["p90 avg contention", percentile(contention, 90)],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"Millisampler dataset analysis: {args.directory}"))
    return 0


def _context(args, verbose: bool = False) -> ExperimentContext:
    """Build the shared context from `run`/`report` CLI arguments."""
    from ..fleet.shards import DEFAULT_SHARD_HOURS, DEFAULT_SHARD_RACKS

    store_dir = getattr(args, "store_dir", None)
    policy = getattr(args, "policy", None)
    return ExperimentContext(
        fleet=FleetConfig(
            racks_per_region=args.racks,
            runs_per_rack=args.runs_per_rack,
            seed=args.seed,
            jobs=args.jobs,
            shm_transfer=getattr(args, "shm_transfer", False),
            kernel=getattr(args, "kernel", "auto"),
            **({"policy": policy} if policy is not None else {}),
        ),
        cache_dir=_cache_dir(args),
        store_dir=store_dir,
        shard_racks=getattr(args, "shard_racks", None) or DEFAULT_SHARD_RACKS,
        shard_hours=getattr(args, "shard_hours", None) or DEFAULT_SHARD_HOURS,
        verbose=verbose,
        audit=getattr(args, "audit", False),
    )


def _finish_orchestrated(args, ctx, orchestration) -> int:
    """Manifest / profile / failure-summary epilogue for `run`/`report`."""
    if args.manifest:
        from ..obs.manifest import build_manifest, write_manifest

        manifest = build_manifest(
            ctx.fleet,
            orchestration.outcomes,
            telemetry=ctx.metrics.snapshot(),
            cache_dir=ctx.cache_dir,
            exp_jobs=args.exp_jobs,
            store_dir=ctx.store_dir,
            shard_racks=ctx.shard_racks if ctx.store_dir else None,
            shard_hours=ctx.shard_hours if ctx.store_dir else None,
        )
        print(f"wrote manifest {write_manifest(manifest, args.manifest)}")
    if args.profile:
        print(ctx.metrics.render_profile())
    if not orchestration.ok:
        print(orchestration.failure_summary(), file=sys.stderr)
        return 1
    return 0


def _serve(args) -> int:
    """Handle `serve`: run the persistent query service until signaled."""
    from ..service import QueryService, ServiceConfig, run_server

    if args.no_tcp and not args.unix_socket:
        print("error: --no-tcp requires --unix-socket", file=sys.stderr)
        return 2
    service = QueryService(
        ServiceConfig(
            fleet=FleetConfig(
                racks_per_region=args.racks,
                runs_per_rack=args.runs_per_rack,
                seed=args.seed,
                jobs=args.jobs,
                shm_transfer=args.shm_transfer,
                kernel=getattr(args, "kernel", "auto"),
                **({"policy": args.policy} if args.policy is not None else {}),
            ),
            cache_dir=_cache_dir(args),
            store_dir=args.store_dir,
            shard_racks=args.shard_racks,
            shard_hours=args.shard_hours,
            request_threads=args.request_threads,
        )
    )

    def ready(port: int | None) -> None:
        where = [] if port is None else [f"http://{args.host}:{port}"]
        if args.unix_socket:
            where.append(f"unix:{args.unix_socket}")
        print(f"repro serve listening on {', '.join(where)} "
              f"(pool={service.pool_jobs()} workers, "
              f"{args.request_threads} request threads)", flush=True)

    run_server(
        service,
        host=None if args.no_tcp else args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        ready=ready,
    )
    print("repro serve drained cleanly")
    return 0


def _report(args) -> int:
    """Handle `report`: run everything, write one markdown report."""
    from .report import orchestrate, render_markdown

    ctx = _context(args)
    orchestration = orchestrate(
        ctx,
        exp_jobs=args.exp_jobs,
        progress=lambda eid, took: print(f"  {eid}: {took:.1f}s"),
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(orchestration.results, ctx, orchestration.outcomes))
    print(f"wrote {args.out}")
    return _finish_orchestrated(args, ctx, orchestration)


def _run(args) -> int:
    """Handle `run`: orchestrate the requested experiments."""
    from .orchestrator import run_experiments

    requested = args.experiments
    if requested == ["all"]:
        requested = ordered_ids()
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    ctx = _context(args, verbose=not args.quiet)

    def progress(outcome, result) -> None:
        if outcome.status == "failed":
            print(
                f"[{outcome.experiment_id} FAILED after "
                f"{outcome.wall_time_s:.1f}s: {outcome.error}]",
                file=sys.stderr,
            )
            return
        if outcome.status == "skipped":
            print(
                f"[{outcome.experiment_id} skipped: {outcome.error}]",
                file=sys.stderr,
            )
            return
        if not args.quiet:
            print(result.render())
            print(f"[{outcome.experiment_id} finished in {outcome.wall_time_s:.1f}s]\n")
        if args.out:
            for path in result.save(args.out):
                if not args.quiet:
                    print(f"  wrote {path}")

    orchestration = run_experiments(
        ctx, requested, exp_jobs=args.exp_jobs, progress=progress
    )
    return _finish_orchestrated(args, ctx, orchestration)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "export":
        return _export(args)
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "report":
        return _report(args)
    if args.command == "list":
        for experiment_id in ordered_ids():
            print(f"{experiment_id:8s} {EXPERIMENTS[experiment_id].title}")
        return 0
    return _run(args)


if __name__ == "__main__":
    raise SystemExit(main())
