"""Command-line entry point: regenerate paper tables and figures.

Examples::

    millisampler-repro list
    millisampler-repro run fig9 fig16 --racks 60
    millisampler-repro run all --out results/ --racks 150
"""

from __future__ import annotations

import argparse
import sys
import time

from ..config import FleetConfig
from .context import ExperimentContext
from .registry import EXPERIMENTS, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="millisampler-repro",
        description=(
            "Reproduce the tables and figures of 'A Microscopic View of "
            "Bursts, Buffer Contention, and Loss in Data Centers' (IMC 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (fig1..fig19, table1, table2, perf) or 'all'",
    )
    run_parser.add_argument("--racks", type=int, default=100,
                            help="racks per region for the synthetic dataset")
    run_parser.add_argument("--runs-per-rack", type=int, default=10)
    run_parser.add_argument("--seed", type=int, default=20221025)
    run_parser.add_argument("--out", type=str, default=None,
                            help="directory for CSV series and text reports")
    run_parser.add_argument("--quiet", action="store_true")
    _add_generation_args(run_parser)

    export_parser = sub.add_parser(
        "export",
        help="generate a synthetic region-day and write it in the "
             "Millisampler dataset format (NDJSON.gz per rack run)",
    )
    export_parser.add_argument("out", help="output directory")
    export_parser.add_argument("--region", choices=("RegA", "RegB"), default="RegA")
    export_parser.add_argument("--racks", type=int, default=10)
    export_parser.add_argument("--runs-per-rack", type=int, default=4)
    export_parser.add_argument("--seed", type=int, default=20221025)

    analyze_parser = sub.add_parser(
        "analyze",
        help="run the paper's burst/contention/loss analysis on a "
             "directory of Millisampler dataset files (released or exported)",
    )
    analyze_parser.add_argument("directory")

    report_parser = sub.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    report_parser.add_argument("out", help="output markdown path (e.g. REPORT.md)")
    report_parser.add_argument("--racks", type=int, default=60)
    report_parser.add_argument("--runs-per-rack", type=int, default=8)
    report_parser.add_argument("--seed", type=int, default=20221025)
    _add_generation_args(report_parser)
    return parser


def _add_generation_args(parser: argparse.ArgumentParser) -> None:
    """Dataset-generation knobs shared by `run` and `report`.

    The per-(rack, run) seed streams make generation identical for any
    --jobs value, and the cache key covers everything that shapes the
    data, so these flags change cost, never results.
    """
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for dataset generation "
             "(0 = all cores, 1 = serial; default 0)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="on-disk dataset cache directory (default "
             "$MILLISAMPLER_CACHE_DIR or ~/.cache/millisampler-repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always regenerate datasets; neither read nor write the cache",
    )


def _cache_dir(args) -> str | None:
    from ..fleet.cache import default_cache_dir

    if args.no_cache:
        return None
    return args.cache_dir or default_cache_dir()


def _export(args) -> int:
    """Handle `export`: write a synthetic region in dataset format."""
    import numpy as np

    from ..fleet.rackrun import RackRunSynthesizer
    from ..io.msdata import write_sync_run
    from ..workload.region import REGION_A, REGION_B, build_region_workloads

    spec = REGION_A if args.region == "RegA" else REGION_B
    rng = np.random.default_rng(args.seed)
    synthesizer = RackRunSynthesizer()
    workloads = build_region_workloads(spec, args.racks, rng)
    written = 0
    for workload in workloads:
        hours = np.sort(rng.choice(24, size=args.runs_per_rack, replace=False))
        for hour in hours:
            sync_run = synthesizer.synthesize(workload, int(hour), rng)
            write_sync_run(sync_run, args.out)
            written += 1
    print(f"wrote {written} rack runs to {args.out}")
    return 0


def _analyze(args) -> int:
    """Handle `analyze`: the Section 5-8 pipeline over dataset files."""
    import numpy as np

    from ..analysis.stats import percentile
    from ..analysis.summary import summarize_run
    from ..io.msdata import load_rack_directory
    from ..viz.table import render_table

    sync_runs = load_rack_directory(args.directory)
    summaries = [summarize_run(run) for run in sync_runs]
    bursts = [b for s in summaries for b in s.bursts]
    if not bursts:
        print("no bursts found in the dataset")
        return 0
    lengths = [b.length for b in bursts]
    contended = sum(1 for b in bursts if b.contended)
    lossy = sum(1 for b in bursts if b.lossy)
    contention = [s.contention.mean for s in summaries]
    rows = [
        ["rack runs", len(summaries)],
        ["server runs", sum(s.servers for s in summaries)],
        ["bursts", len(bursts)],
        ["median burst length (ms)", percentile(lengths, 50)],
        ["p90 burst length (ms)", percentile(lengths, 90)],
        ["contended bursts", f"{contended / len(bursts) * 100:.1f}%"],
        ["lossy bursts", f"{lossy / len(bursts) * 100:.2f}%"],
        ["mean avg contention", f"{float(np.mean(contention)):.2f}"],
        ["p90 avg contention", percentile(contention, 90)],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"Millisampler dataset analysis: {args.directory}"))
    return 0


def _report(args) -> int:
    """Handle `report`: run everything, write one markdown report."""
    from .report import write_report

    ctx = ExperimentContext(
        fleet=FleetConfig(
            racks_per_region=args.racks,
            runs_per_rack=args.runs_per_rack,
            seed=args.seed,
            jobs=args.jobs,
        ),
        cache_dir=_cache_dir(args),
    )
    path = write_report(
        ctx, args.out,
        progress=lambda eid, took: print(f"  {eid}: {took:.1f}s"),
    )
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "export":
        return _export(args)
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "report":
        return _report(args)
    if args.command == "list":
        for experiment_id, entry in sorted(
            EXPERIMENTS.items(), key=lambda kv: (len(kv[0]), kv[0])
        ):
            print(f"{experiment_id:8s} {entry.title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = sorted(EXPERIMENTS, key=lambda k: (len(k), k))
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    ctx = ExperimentContext(
        fleet=FleetConfig(
            racks_per_region=args.racks,
            runs_per_rack=args.runs_per_rack,
            seed=args.seed,
            jobs=args.jobs,
        ),
        cache_dir=_cache_dir(args),
        verbose=not args.quiet,
    )
    for experiment_id in requested:
        started = time.time()
        result = get_experiment(experiment_id)(ctx)
        elapsed = time.time() - started
        if not args.quiet:
            print(result.render())
            print(f"[{experiment_id} finished in {elapsed:.1f}s]\n")
        if args.out:
            for path in result.save(args.out):
                if not args.quiet:
                    print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
