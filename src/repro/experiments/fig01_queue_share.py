"""Figure 1: per-queue buffer share vs. number of active queues.

The dynamic-threshold fixed point T = alpha*B / (1 + alpha*S) for
alpha in {0.25, 0.5, 1, 2, 4}, plotted as a fraction of the shared
buffer.  This experiment evaluates the formula *and* verifies it
against the packet-level :class:`~repro.simnet.buffer.SharedBuffer` by
filling S queues to their limits and measuring the realized share.
"""

from __future__ import annotations

import numpy as np

from ..config import BufferConfig
from ..simnet.buffer import SharedBuffer
from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext

ALPHAS = (0.25, 0.5, 1.0, 2.0, 4.0)
MAX_QUEUES = 10


def measured_share(alpha: float, active_queues: int, packet: int = 4096) -> float:
    """Fill ``active_queues`` queues of a real SharedBuffer round-robin
    until nothing more is admitted; return the realized per-queue share
    of the shared pool."""
    config = BufferConfig(alpha=alpha, dedicated_bytes_per_queue=0.0)
    buffer = SharedBuffer(config)
    names = [f"q{i}" for i in range(active_queues)]
    for name in names:
        buffer.register_queue(name)
    admitted = {name: 0 for name in names}
    progress = True
    while progress:
        progress = False
        for name in names:
            if buffer.admit(name, packet).accepted:
                admitted[name] += packet
                progress = True
    return float(np.mean([admitted[name] for name in names])) / config.shared_bytes


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    queues = np.arange(0, MAX_QUEUES + 1)
    series = []
    ys = {}
    metrics: dict[str, float] = {}
    for alpha in ALPHAS:
        config = BufferConfig(alpha=alpha)
        shares = np.array([config.queue_share_fraction(int(s)) for s in queues])
        name = f"alpha={alpha:g}"
        series.append(Series(name, queues.astype(float), shares))
        ys[name] = shares
        metrics[f"share_alpha{alpha:g}_s1"] = shares[1]
        metrics[f"share_alpha{alpha:g}_s2"] = shares[2]

    # Cross-validate the formula against the packet-level buffer.
    worst_error = 0.0
    for alpha in (0.5, 1.0, 2.0):
        for s in (1, 2, 4, 8):
            analytic = BufferConfig(alpha=alpha).queue_share_fraction(s)
            realized = measured_share(alpha, s)
            worst_error = max(worst_error, abs(analytic - realized))
    metrics["max_formula_vs_packet_error"] = worst_error

    rendering = ascii_plot(
        queues.astype(float),
        ys,
        x_label="# of active queues (S)",
        y_label="queue share T (frac of buffer)",
        title="Figure 1: dynamic-threshold queue share",
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Queue share vs active queues for varying alpha",
        paper_claim=(
            "alpha=1: one active queue gets B/2, two get B/3 each; larger "
            "alpha gives bigger but more contention-sensitive shares; the "
            "slope is steepest at low contention."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"Packet-level SharedBuffer realizes the fixed point within "
            f"{worst_error:.3f} of the formula across alpha/S combinations."
        ),
    )
