"""Figure 19: connection count (incast degree) vs loss.

Paper (RegA-Typical): loss rises with the number of connections then
stabilizes; contended bursts lose 3-4x more than non-contended bursts
at the same connection count — incast has less buffer to land in when
the rack is contended.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext

#: Average-connection-count bucket edges.
CONN_EDGES = np.array([5, 10, 20, 30, 40, 50, 60, 80, 100])


def loss_by_connections(ctx: ExperimentContext) -> dict[str, dict[int, tuple[int, int]]]:
    """group -> connection bucket -> (bursts, lossy), RegA-Typical only."""
    counts: dict[str, dict[int, list[int]]] = {
        "contended": defaultdict(lambda: [0, 0]),
        "non-contended": defaultdict(lambda: [0, 0]),
    }
    for summary in ctx.summaries("RegA"):
        if ctx.class_of_run(summary) != "RegA-Typical":
            continue
        for burst in summary.bursts:
            bucket = int(np.digitize(burst.avg_connections, CONN_EDGES))
            key = "contended" if burst.contended else "non-contended"
            entry = counts[key][bucket]
            entry[0] += 1
            entry[1] += int(burst.lossy)
    return {
        name: {b: (v[0], v[1]) for b, v in buckets.items()}
        for name, buckets in counts.items()
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    data = loss_by_connections(ctx)
    centers = np.concatenate([CONN_EDGES.astype(float), [120.0]])
    series = []
    ys = {}
    for name in ("non-contended", "contended"):
        buckets = data[name]
        pct = np.full(len(centers), np.nan)
        for bucket_index in range(len(centers)):
            total, lossy = buckets.get(bucket_index, (0, 0))
            if total >= 20:
                pct[bucket_index] = lossy / total * 100
        series.append(Series(name, centers, pct))
        ys[name] = pct

    both_valid = np.isfinite(ys["contended"]) & np.isfinite(ys["non-contended"])
    with np.errstate(invalid="ignore", divide="ignore"):
        ratios = ys["contended"][both_valid] / np.maximum(
            ys["non-contended"][both_valid], 1e-9
        )
    finite_ratios = ratios[np.isfinite(ratios) & (ratios < 100)]
    metrics = {
        "median_contended_to_nc_ratio": float(np.median(finite_ratios))
        if finite_ratios.size
        else 0.0,
        "max_contended_loss_pct": float(np.nanmax(ys["contended"]))
        if np.isfinite(ys["contended"]).any()
        else 0.0,
    }
    rendering = ascii_plot(
        centers, ys,
        x_label="avg. number of connections",
        y_label="% of bursts with loss",
        title="Figure 19: incast (connections) vs loss (RegA-Typical)",
    )
    return ExperimentResult(
        experiment_id="fig19",
        title="Incast vs loss",
        paper_claim=(
            "Loss rises with connection count then stabilizes; contended "
            "bursts lose 3-4x more than non-contended at the same count."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"median contended/non-contended loss ratio "
            f"{metrics['median_contended_to_nc_ratio']:.1f}x (paper 3-4x); "
            f"peak contended loss {metrics['max_contended_loss_pct']:.2f}%."
        ),
    )
