"""Extension: fabric traversal smooths bursts before the ToR.

Section 8.1 explains why RegA-High racks correlate with *fabric*
discards but see low ToR loss: in the fabric, "ASICs are more diverse,
with a variety of buffer sizes, and link speeds are significantly
higher ... similar contention levels could result in less loss, and
also result in somewhat smoother bursts arriving downstream at the
racks."

This experiment sends the identical synchronized fan-in twice:

* **direct** — senders attached to the receiving ToR via fast ports
  (the burst hits the ToR at full aggregate speed);
* **via fabric** — senders in other racks, so the burst first queues in
  the fabric's large buffer and drains at the downlink rate.

and compares where the bytes are dropped and how peaky the arrival at
the server link is.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..simnet.fabric import build_pod
from ..simnet.packet import FlowKey, Packet
from ..simnet.topology import build_rack
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

SENDERS = 6
BURST_PER_SENDER = int(1.5 * units.MB)
SEGMENT = 16_000


def _blast(source, target_name: str, sport: int) -> None:
    flow = FlowKey(source.name, target_name, sport, 7000)
    sent = 0
    seq = 0
    while sent < BURST_PER_SENDER:
        size = min(SEGMENT, BURST_PER_SENDER - sent)
        source.send(
            Packet(source.name, target_name, size, flow, seq=seq, payload=size,
                   ecn_capable=False)
        )
        seq += size
        sent += size


def _arrival_stats(times: list[float], bucket: float = 1e-3) -> tuple[float, float]:
    """(span seconds, peak-to-mean ratio of 1 ms arrival counts)."""
    if not times:
        return 0.0, 0.0
    array = np.asarray(times)
    span = float(array.max() - array.min())
    if span == 0:
        return 0.0, float("inf")
    counts, _ = np.histogram(array, bins=max(int(span / bucket), 1))
    return span, float(counts.max() / max(counts.mean(), 1e-9))


def run_direct(seed: int = 0) -> dict:
    """The fan-in with senders attached directly to the receiving ToR."""
    rack = build_rack(servers=SENDERS + 1, rng=np.random.default_rng(seed))
    target = rack.hosts[0]
    arrivals: list[float] = []
    target.default_handler = lambda p: arrivals.append(rack.engine.now)
    for index, sender in enumerate(rack.hosts[1:]):
        sender.uplink.rate = units.gbps(100)
        _blast(sender, target.name, 8000 + index)
    rack.engine.run_until(1.0)
    span, peak = _arrival_stats(arrivals)
    offered = SENDERS * BURST_PER_SENDER
    return {
        "tor_discards": rack.switch.counters.discard_bytes / offered,
        "fabric_discards": 0.0,
        "span_ms": span * 1e3,
        "peak_to_mean": peak,
    }


def run_via_fabric(seed: int = 0) -> dict:
    """The same fan-in with senders one fabric hop away."""
    pod = build_pod(racks=SENDERS + 1, servers_per_rack=2,
                    rng=np.random.default_rng(seed))
    # The downlink to the target rack runs at 2x the server link — fast,
    # but far below the senders' aggregate.
    pod.fabric._downlinks["rack0"].rate = units.gbps(25)
    target = pod.racks[0].hosts[0]
    arrivals: list[float] = []
    target.default_handler = lambda p: arrivals.append(pod.engine.now)
    for index in range(SENDERS):
        sender = pod.racks[index + 1].hosts[0]
        sender.uplink.rate = units.gbps(100)
        _blast(sender, target.name, 8000 + index)
    pod.engine.run_until(1.0)
    span, peak = _arrival_stats(arrivals)
    offered = SENDERS * BURST_PER_SENDER
    return {
        "tor_discards": pod.racks[0].switch.counters.discard_bytes / offered,
        "fabric_discards": pod.fabric.discard_bytes / offered,
        "span_ms": span * 1e3,
        "peak_to_mean": peak,
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    direct = run_direct()
    fabric = run_via_fabric()

    rows = [
        ["direct to ToR", f"{direct['tor_discards'] * 100:.2f}%", "-",
         f"{direct['span_ms']:.1f}", f"{direct['peak_to_mean']:.2f}"],
        ["via fabric", f"{fabric['tor_discards'] * 100:.2f}%",
         f"{fabric['fabric_discards'] * 100:.2f}%",
         f"{fabric['span_ms']:.1f}", f"{fabric['peak_to_mean']:.2f}"],
    ]
    table = ResultTable(
        title=f"Identical {SENDERS}-way fan-in ({SENDERS}x{BURST_PER_SENDER // 1024} KB)",
        headers=["path", "ToR discards", "fabric discards",
                 "arrival span (ms)", "arrival peak/mean"],
        rows=rows,
    )
    metrics = {
        "direct_tor_discards": direct["tor_discards"],
        "fabric_tor_discards": fabric["tor_discards"],
        "fabric_fabric_discards": fabric["fabric_discards"],
        "direct_peak_to_mean": direct["peak_to_mean"],
        "fabric_peak_to_mean": fabric["peak_to_mean"],
        "span_stretch": fabric["span_ms"] / max(direct["span_ms"], 1e-9),
    }
    return ExperimentResult(
        experiment_id="fabric-smoothing",
        title="Fabric smoothing of bursts (Section 8.1)",
        paper_claim=(
            "The fabric's larger buffers and faster links absorb contention "
            "with less loss and deliver smoother bursts downstream to the "
            "racks — part of why RegA-High racks show fabric discards but "
            "low ToR loss."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"The fabric path stretches the arrival {metrics['span_stretch']:.1f}x "
            f"and cuts ToR discards from {direct['tor_discards'] * 100:.2f}% to "
            f"{fabric['tor_discards'] * 100:.2f}% — the burst is absorbed "
            f"upstream, where the buffer is larger."
        ),
    )
