"""Figure 16: fraction of lossy bursts vs maximum contention, per rack
class.

Paper: within each class loss rises with contention, but RegA-Typical
is lossier at contention < 5 than RegA-High is at much higher
contention — higher contention does not imply more loss.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext

CLASSES = ("RegA-Typical", "RegA-High", "RegB")


def loss_by_contention(ctx: ExperimentContext) -> dict[str, dict[int, tuple[int, int]]]:
    """class -> contention level -> (bursts, lossy bursts)."""
    counts: dict[str, dict[int, list[int]]] = {
        name: defaultdict(lambda: [0, 0]) for name in CLASSES
    }
    high_racks = ctx.rega_high_racks()
    for region in ("RegA", "RegB"):
        # Per-burst annotations streamed shard-by-shard under a shard
        # store; only integer counts accumulate here.
        view = ctx.burst_contention(region)
        for rack, level, lossy in zip(
            view.racks.tolist(), view.max_contention.tolist(), view.lossy.tolist()
        ):
            if region == "RegB":
                burst_class = "RegB"
            elif rack in high_racks:
                burst_class = "RegA-High"
            else:
                burst_class = "RegA-Typical"
            entry = counts[burst_class][level]
            entry[0] += 1
            entry[1] += int(lossy)
    return {
        name: {level: (v[0], v[1]) for level, v in buckets.items()}
        for name, buckets in counts.items()
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    data = loss_by_contention(ctx)
    series = []
    ys = {}
    metrics: dict[str, float] = {}
    max_level = max(
        (level for buckets in data.values() for level in buckets), default=0
    )
    levels = np.arange(1, max_level + 1, dtype=float)
    for name in CLASSES:
        buckets = data[name]
        pct = np.full(len(levels), np.nan)
        for i, level in enumerate(levels):
            total, lossy = buckets.get(int(level), (0, 0))
            if total >= 20:  # need support to estimate a rate
                pct[i] = lossy / total * 100
        series.append(Series(name, levels, pct))
        ys[name] = pct
        all_total = sum(v[0] for v in buckets.values())
        all_lossy = sum(v[1] for v in buckets.values())
        metrics[f"lossy_pct_{name}"] = (
            all_lossy / all_total * 100 if all_total else 0.0
        )

    # Alternate Section 8 methodology: contention at first loss rather
    # than lifetime maximum.  The paper: "bursts tend to see slightly
    # lower contention levels at the time of their first loss ... the
    # trends are similar".
    max_levels = []
    first_loss_levels = []
    for region in ("RegA", "RegB"):
        view = ctx.burst_contention(region)
        mask = view.lossy & (view.first_loss_contention >= 0)
        max_levels.extend(view.max_contention[mask].tolist())
        first_loss_levels.extend(view.first_loss_contention[mask].tolist())
    if max_levels:
        metrics["mean_max_contention_lossy"] = float(np.mean(max_levels))
        metrics["mean_first_loss_contention"] = float(np.mean(first_loss_levels))

    # The paper's key comparison: typical lossier at low contention than
    # high at high contention.
    typical_low = [
        data["RegA-Typical"].get(level, (0, 0)) for level in range(1, 6)
    ]
    low_total = sum(t for t, _ in typical_low)
    low_lossy = sum(l for _, l in typical_low)
    metrics["typical_loss_at_contention_le5"] = (
        low_lossy / low_total * 100 if low_total else 0.0
    )
    high_all = data["RegA-High"]
    high_total = sum(v[0] for v in high_all.values())
    high_lossy = sum(v[1] for v in high_all.values())
    metrics["high_loss_overall"] = high_lossy / high_total * 100 if high_total else 0.0

    rendering = ascii_plot(
        levels, ys,
        x_label="contention",
        y_label="% of bursts with loss",
        title="Figure 16: contention vs loss, by rack class",
    )
    return ExperimentResult(
        experiment_id="fig16",
        title="Correlation between contention and loss",
        paper_claim=(
            "Loss rises with contention within each class, but RegA-Typical "
            "bursts at contention <= 5 are lossier than RegA-High bursts at "
            "much higher contention levels."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"RegA-Typical at contention<=5 loses "
            f"{metrics['typical_loss_at_contention_le5']:.2f}% of bursts vs "
            f"RegA-High overall {metrics['high_loss_overall']:.2f}% — the "
            f"paper's inversion.  Alternate methodology check: lossy bursts' "
            f"mean contention at first loss "
            f"{metrics.get('mean_first_loss_contention', float('nan')):.1f} vs "
            f"lifetime maximum "
            f"{metrics.get('mean_max_contention_lossy', float('nan')):.1f} "
            f"(paper: slightly lower at first loss, same trends)."
        ),
    )
