"""Shared experiment context: datasets generated once, used by every
figure.

The paper's analyses all draw on one day of SyncMillisampler data per
region; the context mirrors that by generating each region-day lazily
and caching it, so running all experiments costs one dataset pass.
"""

from __future__ import annotations

import threading
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field

from ..analysis.diurnal import hourly_box_stats
from ..analysis.racks import (
    DEFAULT_CONTENTION_SPLIT,
    RackClass,
    RackProfile,
    classify_racks,
    rack_profiles,
)
from ..analysis.stats import BoxStats
from ..analysis.streaming import (
    BurstContentionView,
    RunContentionView,
    burst_contention_from_summaries,
    run_contention_from_summaries,
)
from ..analysis.summary import RunSummary
from ..config import FleetConfig
from ..errors import ConfigError
from ..fleet.cache import DatasetCache
from ..fleet.dataset import DatasetSummary, RegionDataset, generate_region_dataset
from ..fleet.parallel import resolve_jobs
from ..fleet.shards import (
    DEFAULT_SHARD_HOURS,
    DEFAULT_SHARD_RACKS,
    ShardedRegionDataset,
    generate_region_shards,
)
from ..obs.metrics import Metrics
from ..simnet.audit import InvariantAuditor, audited
from ..workload.region import REGION_A, REGION_B, RegionSpec


#: The busy hour both regions share in the paper's Figure 9 (6-7 am).
BUSY_HOUR = 6


@dataclass
class ExperimentContext:
    """Lazily generated, cached datasets plus derived classifications."""

    fleet: FleetConfig = field(default_factory=FleetConfig)
    busy_hour: int = BUSY_HOUR
    contention_split: float = DEFAULT_CONTENTION_SPLIT
    verbose: bool = False
    #: Directory for the on-disk dataset cache; None disables caching.
    cache_dir: str | None = None
    #: Root of the sharded out-of-core region store (see
    #: :mod:`repro.fleet.shards`).  When set, region-days are generated,
    #: cached, and aggregated shard-by-shard — peak memory is one shard —
    #: and :attr:`cache_dir` (the monolithic pickle cache) is ignored.
    store_dir: str | None = None
    #: Shard geometry: racks per shard x hours per shard.
    shard_racks: int = DEFAULT_SHARD_RACKS
    shard_hours: int = DEFAULT_SHARD_HOURS
    #: Telemetry registry shared by dataset generation, the cache, and
    #: every experiment run against this context (see repro.obs).
    metrics: Metrics = field(default_factory=Metrics, repr=False, compare=False)
    #: Cores already committed elsewhere in this process — the query
    #: service passes its request-thread count here.  Subtracted when
    #: ``fleet.jobs == 0`` auto-sizes, so a persistent pool plus a
    #: thread fan-out (``--exp-jobs`` or service request threads) never
    #: double-subscribes the machine; an explicit job count is honored
    #: as given.
    reserved_cores: int = 0
    #: External persistent executor for dataset fan-out (the query
    #: service's process pool).  None — the default — lets each build
    #: create and own its own pool.
    pool: object | None = field(default=None, repr=False, compare=False)
    #: Cooperative graceful-drain signal (the service's SIGTERM path):
    #: when set, in-flight fan-out work finishes, queued work is never
    #: started, and builds raise :class:`~repro.errors.WorkerCancelled`.
    cancel_event: threading.Event | None = field(
        default=None, repr=False, compare=False
    )
    #: Enable the runtime invariant auditor (see repro.simnet.audit):
    #: every simulator built inside :meth:`audit_scope` is continuously
    #: checked against the conservation laws, and violation/check totals
    #: land on :attr:`metrics` (hence in ``--manifest`` telemetry).
    audit: bool = False
    auditor: InvariantAuditor | None = field(default=None, repr=False, compare=False)
    _datasets: dict[str, RegionDataset | ShardedRegionDataset] = field(
        default_factory=dict, repr=False
    )
    #: Serializes lazy dataset construction so parallel experiments
    #: never generate the same region twice.
    _dataset_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.audit and self.auditor is None:
            self.auditor = InvariantAuditor(metrics=self.metrics)

    def audit_scope(self) -> AbstractContextManager:
        """Scope in which simulators pick up this context's auditor.

        A no-op when auditing is off; the orchestrator wraps every
        experiment in this scope, so ``--audit`` needs no per-experiment
        plumbing (components capture the active tap at construction).
        """
        if self.auditor is None:
            return nullcontext()
        return audited(self.auditor)

    @classmethod
    def small(cls, racks: int = 24, runs_per_rack: int = 4, seed: int = 3) -> "ExperimentContext":
        """A fast context for tests and benchmarks."""
        return cls(fleet=FleetConfig(racks_per_region=racks, runs_per_rack=runs_per_rack, seed=seed))

    @classmethod
    def paper_scale(cls, racks: int = 150, runs_per_rack: int = 10) -> "ExperimentContext":
        """The default scale for regenerating all figures (minutes of CPU)."""
        return cls(fleet=FleetConfig(racks_per_region=racks, runs_per_rack=runs_per_rack))

    def _spec(self, region: str) -> RegionSpec:
        if region == "RegA":
            return REGION_A
        if region == "RegB":
            return REGION_B
        raise ConfigError(f"unknown region {region!r}")

    def resolved_jobs(self) -> int:
        """``fleet.jobs`` with the auto-size case (0) discounted by
        :attr:`reserved_cores`, so dataset fan-out never double-subscribes
        cores the process already committed to request/experiment threads."""
        return resolve_jobs(self.fleet.jobs, reserved=self.reserved_cores)

    def dataset(
        self, region: str, on_shard=None
    ) -> RegionDataset | ShardedRegionDataset:
        """The region-day dataset, generated (or cache-loaded) on first use.

        With :attr:`store_dir` set this is a lazy
        :class:`~repro.fleet.shards.ShardedRegionDataset` (built shard by
        shard, loaded via memmap); otherwise the legacy in-memory
        :class:`RegionDataset` behind the monolithic pickle cache.  Both
        expose ``region``/``summaries``/``workloads``/``table1_row``.

        ``on_shard`` (shard-store path only) is invoked with each shard's
        manifest record as it lands — the query service streams these to
        clients as NDJSON progress events.  It fires only when this call
        actually builds/opens the store; a memoized dataset returns
        immediately without replay.
        """
        with self._dataset_lock:
            if region not in self._datasets:
                spec = self._spec(region)
                progress = None
                if self.verbose:
                    def progress(done: int, total: int, _region: str = region) -> None:
                        if done % 200 == 0 or done == total:
                            print(f"  [{_region}] {done}/{total} rack runs")
                with self.metrics.span(f"dataset/{region}"):
                    if self.store_dir:
                        dataset = generate_region_shards(
                            spec,
                            self.fleet,
                            self.store_dir,
                            shard_racks=self.shard_racks,
                            shard_hours=self.shard_hours,
                            jobs=self.resolved_jobs(),
                            metrics=self.metrics,
                            progress=progress,
                            pool=self.pool,
                            cancel_event=self.cancel_event,
                            on_shard=on_shard,
                        )
                    else:
                        cache = (
                            DatasetCache(self.cache_dir, metrics=self.metrics)
                            if self.cache_dir
                            else None
                        )
                        dataset = cache.load(spec, self.fleet) if cache is not None else None
                        if dataset is None:
                            dataset = generate_region_dataset(
                                spec,
                                self.fleet,
                                progress=progress,
                                jobs=self.resolved_jobs(),
                                metrics=self.metrics,
                                pool=self.pool,
                                cancel_event=self.cancel_event,
                            )
                            if cache is not None:
                                cache.store(spec, self.fleet, dataset)
                        elif self.verbose:
                            print(f"  [{region}] dataset loaded from cache")
                self._datasets[region] = dataset
        return self._datasets[region]

    def summaries(self, region: str) -> list[RunSummary]:
        return self.dataset(region).summaries

    # -- derived classifications ------------------------------------------

    def profiles(self, region: str, busy_hour_only: bool = False) -> list[RackProfile]:
        """Per-rack aggregates; ``busy_hour_only`` restricts to a short
        window around the busy hour (each rack is sampled ~10 of 24
        hours, so a single hour would cover less than half the racks —
        the window keeps the rack sample representative)."""
        dataset = self.dataset(region)
        hours: set[int] | None = None
        if busy_hour_only:
            hours = {self.busy_hour - 1, self.busy_hour, self.busy_hour + 1}
            counts = self.hour_counts(region)
            if not hours & set(counts):
                # Tiny test datasets may miss the window entirely; fall
                # back to the fullest hour.
                hours = {max(set(counts), key=lambda h: counts[h])}
        if isinstance(dataset, ShardedRegionDataset):
            return dataset.rack_profiles(hours=hours)
        return rack_profiles(dataset.summaries, hours=hours)

    def hour_counts(self, region: str) -> dict[int, int]:
        """Runs per hour, computed without materializing a sharded set."""
        dataset = self.dataset(region)
        if isinstance(dataset, ShardedRegionDataset):
            return dataset.hour_counts()
        counts: dict[int, int] = {}
        for summary in dataset.summaries:
            counts[summary.hour] = counts.get(summary.hour, 0) + 1
        return counts

    # -- streaming-or-oracle aggregations ---------------------------------
    #
    # Each method computes through the shard store's mergeable partials
    # when the context is backed by one, and through the in-memory
    # oracle otherwise; the two are bit-identical by construction (and
    # by test), so experiments call these without caring which path ran.

    def table1_row(self, region: str) -> DatasetSummary:
        """Table 1's row for one region (streaming under a shard store)."""
        return self.dataset(region).table1_row()

    def hourly_boxes(self, region: str, racks: set[str] | None = None) -> dict[int, BoxStats]:
        """Figure 13's hourly contention boxes, optionally rack-filtered."""
        dataset = self.dataset(region)
        if isinstance(dataset, ShardedRegionDataset):
            return dataset.hourly_boxes(racks=racks)
        return hourly_box_stats(dataset.summaries, racks=racks)

    def run_contention(self, region: str) -> RunContentionView:
        """Figure 15's per-run (min-active, p90) contention arrays."""
        dataset = self.dataset(region)
        if isinstance(dataset, ShardedRegionDataset):
            return dataset.run_contention()
        return run_contention_from_summaries(dataset.summaries)

    def burst_contention(self, region: str) -> BurstContentionView:
        """Figure 16's per-burst contention/loss annotations."""
        dataset = self.dataset(region)
        if isinstance(dataset, ShardedRegionDataset):
            return dataset.burst_contention()
        return burst_contention_from_summaries(dataset.summaries)

    def rega_classes(self) -> dict[RackClass, list[RackProfile]]:
        """The RegA-Typical / RegA-High split (whole-day contention)."""
        return classify_racks(self.profiles("RegA"), split=self.contention_split)

    def rega_high_racks(self) -> set[str]:
        return {profile.rack for profile in self.rega_classes()[RackClass.HIGH]}

    def class_of_rack(self, region: str, rack: str) -> str:
        """'RegA-Typical' / 'RegA-High' / 'RegB' for a rack name.

        Callers classifying many runs/bursts should hoist
        :meth:`rega_high_racks` and test membership directly — this
        recomputes the split each call.
        """
        if region == "RegB":
            return "RegB"
        if rack in self.rega_high_racks():
            return RackClass.HIGH.value
        return RackClass.TYPICAL.value

    def class_of_run(self, summary: RunSummary) -> str:
        """'RegA-Typical' / 'RegA-High' / 'RegB' for a run summary."""
        return self.class_of_rack(summary.region, summary.rack)
