"""Shared experiment context: datasets generated once, used by every
figure.

The paper's analyses all draw on one day of SyncMillisampler data per
region; the context mirrors that by generating each region-day lazily
and caching it, so running all experiments costs one dataset pass.
"""

from __future__ import annotations

import threading
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field

from ..analysis.racks import (
    DEFAULT_CONTENTION_SPLIT,
    RackClass,
    RackProfile,
    classify_racks,
    rack_profiles,
)
from ..analysis.summary import RunSummary
from ..config import FleetConfig
from ..errors import ConfigError
from ..fleet.cache import DatasetCache
from ..fleet.dataset import RegionDataset, generate_region_dataset
from ..obs.metrics import Metrics
from ..simnet.audit import InvariantAuditor, audited
from ..workload.region import REGION_A, REGION_B, RegionSpec


#: The busy hour both regions share in the paper's Figure 9 (6-7 am).
BUSY_HOUR = 6


@dataclass
class ExperimentContext:
    """Lazily generated, cached datasets plus derived classifications."""

    fleet: FleetConfig = field(default_factory=FleetConfig)
    busy_hour: int = BUSY_HOUR
    contention_split: float = DEFAULT_CONTENTION_SPLIT
    verbose: bool = False
    #: Directory for the on-disk dataset cache; None disables caching.
    cache_dir: str | None = None
    #: Telemetry registry shared by dataset generation, the cache, and
    #: every experiment run against this context (see repro.obs).
    metrics: Metrics = field(default_factory=Metrics, repr=False, compare=False)
    #: Enable the runtime invariant auditor (see repro.simnet.audit):
    #: every simulator built inside :meth:`audit_scope` is continuously
    #: checked against the conservation laws, and violation/check totals
    #: land on :attr:`metrics` (hence in ``--manifest`` telemetry).
    audit: bool = False
    auditor: InvariantAuditor | None = field(default=None, repr=False, compare=False)
    _datasets: dict[str, RegionDataset] = field(default_factory=dict, repr=False)
    #: Serializes lazy dataset construction so parallel experiments
    #: never generate the same region twice.
    _dataset_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.audit and self.auditor is None:
            self.auditor = InvariantAuditor(metrics=self.metrics)

    def audit_scope(self) -> AbstractContextManager:
        """Scope in which simulators pick up this context's auditor.

        A no-op when auditing is off; the orchestrator wraps every
        experiment in this scope, so ``--audit`` needs no per-experiment
        plumbing (components capture the active tap at construction).
        """
        if self.auditor is None:
            return nullcontext()
        return audited(self.auditor)

    @classmethod
    def small(cls, racks: int = 24, runs_per_rack: int = 4, seed: int = 3) -> "ExperimentContext":
        """A fast context for tests and benchmarks."""
        return cls(fleet=FleetConfig(racks_per_region=racks, runs_per_rack=runs_per_rack, seed=seed))

    @classmethod
    def paper_scale(cls, racks: int = 150, runs_per_rack: int = 10) -> "ExperimentContext":
        """The default scale for regenerating all figures (minutes of CPU)."""
        return cls(fleet=FleetConfig(racks_per_region=racks, runs_per_rack=runs_per_rack))

    def _spec(self, region: str) -> RegionSpec:
        if region == "RegA":
            return REGION_A
        if region == "RegB":
            return REGION_B
        raise ConfigError(f"unknown region {region!r}")

    def dataset(self, region: str) -> RegionDataset:
        """The region-day dataset, generated (or cache-loaded) on first use."""
        with self._dataset_lock:
            if region not in self._datasets:
                spec = self._spec(region)
                cache = (
                    DatasetCache(self.cache_dir, metrics=self.metrics)
                    if self.cache_dir
                    else None
                )
                with self.metrics.span(f"dataset/{region}"):
                    dataset = cache.load(spec, self.fleet) if cache is not None else None
                    if dataset is None:
                        progress = None
                        if self.verbose:
                            def progress(done: int, total: int, _region: str = region) -> None:
                                if done % 200 == 0 or done == total:
                                    print(f"  [{_region}] {done}/{total} rack runs")
                        dataset = generate_region_dataset(
                            spec, self.fleet, progress=progress, metrics=self.metrics
                        )
                        if cache is not None:
                            cache.store(spec, self.fleet, dataset)
                    elif self.verbose:
                        print(f"  [{region}] dataset loaded from cache")
                self._datasets[region] = dataset
        return self._datasets[region]

    def summaries(self, region: str) -> list[RunSummary]:
        return self.dataset(region).summaries

    # -- derived classifications ------------------------------------------

    def profiles(self, region: str, busy_hour_only: bool = False) -> list[RackProfile]:
        """Per-rack aggregates; ``busy_hour_only`` restricts to a short
        window around the busy hour (each rack is sampled ~10 of 24
        hours, so a single hour would cover less than half the racks —
        the window keeps the rack sample representative)."""
        summaries = self.summaries(region)
        hours: set[int] | None = None
        if busy_hour_only:
            hours = {self.busy_hour - 1, self.busy_hour, self.busy_hour + 1}
            covered = {s.hour for s in summaries}
            if not hours & covered:
                # Tiny test datasets may miss the window entirely; fall
                # back to the fullest hour.
                hours = {max(covered, key=lambda h: sum(1 for s in summaries if s.hour == h))}
        return rack_profiles(summaries, hours=hours)

    def rega_classes(self) -> dict[RackClass, list[RackProfile]]:
        """The RegA-Typical / RegA-High split (whole-day contention)."""
        return classify_racks(self.profiles("RegA"), split=self.contention_split)

    def rega_high_racks(self) -> set[str]:
        return {profile.rack for profile in self.rega_classes()[RackClass.HIGH]}

    def class_of_run(self, summary: RunSummary) -> str:
        """'RegA-Typical' / 'RegA-High' / 'RegB' for a run summary."""
        if summary.region == "RegB":
            return "RegB"
        if summary.rack in self.rega_high_racks():
            return RackClass.HIGH.value
        return RackClass.TYPICAL.value
