"""Section 7's contention-vs-loss analysis across the buffer-sharing
policy zoo.

The paper's headline Section-7 finding is an *inversion*: RegA-Typical
bursts at contention <= 5 are lossier than RegA-High bursts at much
higher contention, because persistently contended racks host senders
that stay adapted to the buffer.  The paper measures this under the
deployed Choudhury-Hahne dynamic threshold only; ROADMAP item 2 asks
whether the finding is an artifact of DT or a property of the workload.

This experiment replays the full Figure-16 pipeline — dataset
synthesis, burst extraction, per-class contention/loss correlation —
once per registered sharing policy (the same registry ``--policy``
draws from, so a newly registered policy joins the sweep
automatically).  Each policy's region-days are generated under that
policy end to end and are content-addressed by it (the
:class:`~repro.config.PolicySpec` feeds the dataset cache key), so
per-policy datasets never collide and repeat sweeps hit the cache.

Scale is capped per policy (the sweep multiplies dataset cost by the
zoo size); the inversion verdict is robust at the capped scale because
it compares aggregates, not per-level curves.
"""

from __future__ import annotations

import dataclasses

from ..config import FleetConfig
from ..fleet.policies import registered_policy_specs
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext
from .fig16_contention_loss import loss_by_contention

#: Per-policy dataset scale caps: the sweep runs the whole generation +
#: analysis pipeline once per registered policy, so it trims the
#: context's scale rather than inheriting report-scale racks.
MAX_RACKS = 24
MAX_RUNS_PER_RACK = 6


def sweep_fleet(fleet: FleetConfig) -> FleetConfig:
    """The capped-scale base config the sweep derives per-policy configs
    from (policy is substituted per sweep arm)."""
    return dataclasses.replace(
        fleet,
        racks_per_region=min(fleet.racks_per_region, MAX_RACKS),
        runs_per_rack=min(fleet.runs_per_rack, MAX_RUNS_PER_RACK),
    )


def inversion_metrics(data: dict[str, dict[int, tuple[int, int]]]) -> dict[str, float]:
    """The Section-7 comparison, computed exactly as Figure 16 does:
    RegA-Typical lossy% at contention <= 5 vs RegA-High lossy% overall."""
    typical_low = [data["RegA-Typical"].get(level, (0, 0)) for level in range(1, 6)]
    low_total = sum(t for t, _ in typical_low)
    low_lossy = sum(l for _, l in typical_low)
    high_all = data["RegA-High"]
    high_total = sum(v[0] for v in high_all.values())
    high_lossy = sum(v[1] for v in high_all.values())
    return {
        "typical_loss_at_contention_le5": (
            low_lossy / low_total * 100 if low_total else 0.0
        ),
        "high_loss_overall": high_lossy / high_total * 100 if high_total else 0.0,
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    base = sweep_fleet(ctx.fleet)
    rows = []
    metrics: dict[str, float] = {}
    survived = []
    for spec in registered_policy_specs():
        arm = ExperimentContext(
            fleet=dataclasses.replace(base, policy=spec),
            busy_hour=ctx.busy_hour,
            contention_split=ctx.contention_split,
            cache_dir=ctx.cache_dir,
            metrics=ctx.metrics,
            pool=ctx.pool,
            cancel_event=ctx.cancel_event,
        )
        data = loss_by_contention(arm)
        arm_metrics = inversion_metrics(data)
        typical = arm_metrics["typical_loss_at_contention_le5"]
        high = arm_metrics["high_loss_overall"]
        inverted = typical > high
        survived.append((spec.name, inverted))
        total = sum(t for buckets in data.values() for t, _ in buckets.values())
        lossy = sum(l for buckets in data.values() for _, l in buckets.values())
        rows.append(
            [
                spec.name,
                f"{typical:.2f}",
                f"{high:.2f}",
                "yes" if inverted else "no",
                f"{lossy / total * 100 if total else 0.0:.2f}",
            ]
        )
        metrics[f"typical_le5_{spec.name}"] = typical
        metrics[f"high_overall_{spec.name}"] = high
        metrics[f"inversion_{spec.name}"] = 1.0 if inverted else 0.0

    table = ResultTable(
        title=(
            "Section-7 contention-vs-loss inversion per buffer-sharing "
            "policy (RegA-Typical lossy% at contention<=5 vs RegA-High "
            "lossy% overall)"
        ),
        headers=[
            "policy",
            "typical<=5 lossy %",
            "high lossy %",
            "inversion",
            "all-class lossy %",
        ],
        rows=rows,
    )
    surviving = [name for name, inv in survived if inv]
    broken = [name for name, inv in survived if not inv]
    return ExperimentResult(
        experiment_id="policy-sweep",
        title="Contention vs loss across the buffer-sharing policy zoo",
        paper_claim=(
            "The RegA-Typical > RegA-High loss inversion (Section 7) is "
            "measured under Choudhury-Hahne DT; the paper argues its data "
            "'can inform the design of buffer sharing algorithms'."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"Inversion survives under {len(surviving)}/{len(survived)} "
            f"policies ({', '.join(surviving) or 'none'})"
            + (f"; breaks under {', '.join(broken)}" if broken else "")
            + ".  Each policy's datasets are generated under that policy "
            "end to end and content-addressed by its PolicySpec."
        ),
    )
