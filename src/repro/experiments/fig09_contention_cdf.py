"""Figure 9: CDF of busy-hour average contention across racks.

Paper: both regions spread similarly but RegB runs hotter; RegA is
bimodal — 75% of racks average below 2.2 while the top 20% jump above
7.5 (a 3.4x gap) — traced to ML co-location.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import cdf, percentile
from ..viz.ascii import ascii_cdf
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    values = {}
    for region in ("RegA", "RegB"):
        profiles = ctx.profiles(region, busy_hour_only=True)
        values[region] = np.array([p.mean_contention for p in profiles])

    series = []
    for region, contention in values.items():
        x, y = cdf(contention)
        series.append(Series(region, x, y))

    rega = values["RegA"]
    regb = values["RegB"]
    p75_a = percentile(rega, 75)
    p80_a = percentile(rega, 80)
    metrics = {
        "rega_p75_contention": p75_a,
        "rega_p80_contention": p80_a,
        "rega_top20_mean": float(rega[rega >= p80_a].mean()),
        "rega_bottom75_mean": float(rega[rega <= p75_a].mean()),
        "regb_median": percentile(regb, 50),
        "rega_median": percentile(rega, 50),
        "bimodal_gap_ratio": (
            float(rega[rega >= p80_a].mean())
            / max(float(rega[rega <= p75_a].mean()), 1e-9)
        ),
    }
    rendering = ascii_cdf(
        values, x_label="avg. contention",
        title="Figure 9: busy-hour average contention across racks",
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Average contention across racks (busy hour)",
        paper_claim=(
            "RegA bimodal: 75% of racks below 2.2 average contention, top "
            "20% above 7.5 (3.4x); RegB's distribution is fairly uniform "
            "and shifted higher than RegA's typical racks."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"RegA p75 {p75_a:.2f} (paper 2.2); RegA top-20% mean "
            f"{metrics['rega_top20_mean']:.1f} vs bottom-75% mean "
            f"{metrics['rega_bottom75_mean']:.2f} "
            f"({metrics['bimodal_gap_ratio']:.1f}x gap, paper 3.4x); RegB "
            f"median {metrics['regb_median']:.1f} vs RegA median "
            f"{metrics['rega_median']:.1f}."
        ),
    )
