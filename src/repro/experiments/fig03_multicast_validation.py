"""Figure 3 (validation): rack-local multicast bursts land in the same
1 ms sample on every subscribed host.

Reproduces Section 4.5's first experiment end-to-end on the packet
simulator: eight mostly idle servers subscribe to a multicast group;
a ninth sends periodic bursts; SyncMillisampler collects 1 ms runs on
all eight; the analysis checks that every burst appears in the same
aligned sample across hosts despite sub-millisecond clock offsets.
"""

from __future__ import annotations

import numpy as np

from ..config import SamplerConfig
from ..core.syncsampler import SyncMillisampler
from ..simnet.clock import max_pairwise_skew
from ..simnet.topology import build_rack
from ..workload.flows import MulticastBurster
from ..viz.ascii import sparkline
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext

SUBSCRIBERS = 8
BURST_PERIOD = 100e-3
RUN_BUCKETS = 2000


def run_simulation(
    seed: int = 0, buckets: int = RUN_BUCKETS
) -> tuple[np.ndarray, list, float]:
    """Returns (per-server link-rate matrix in Gbps, aligned runs, skew)."""
    rng = np.random.default_rng(seed)
    sampler_config = SamplerConfig(buckets=buckets, cpus=4)
    rack = build_rack(
        name="mcast", servers=SUBSCRIBERS + 1, sampler_config=sampler_config, rng=rng
    )
    engine = rack.engine
    group = "239.0.0.1"
    for host in rack.hosts[:SUBSCRIBERS]:
        rack.switch.join_multicast(group, host.name)
    sender = rack.hosts[SUBSCRIBERS]
    burster = MulticastBurster(
        sender, group, burst_bytes=256 * 1024, period=BURST_PERIOD
    )

    sync = SyncMillisampler()
    start_at = 3 * sampler_config.duration
    sync_id = sync.request_collection(
        rack.sampled_hosts[:SUBSCRIBERS], rack.name, "RegA", start_at, now=engine.now
    )
    burster.start()

    end = start_at + sampler_config.duration + 0.2
    # Poll times as exact multiples: a poll must land exactly on the
    # scheduled sync start (interval accumulation drifts in float).
    tick = 0
    while engine.now < end:
        engine.run_until(min(tick * 10e-3, end))
        rack.poll_samplers()
        tick += 1
    rack.poll_samplers()

    sync_run = sync.assemble(sync_id)
    interval = sync_run.sampling_interval
    rates = np.vstack(
        [r.in_bytes / interval * 8 / 1e9 for r in sync_run.runs]
    )  # Gbps
    skew = max_pairwise_skew([host.clock for host in rack.hosts[:SUBSCRIBERS]], start_at)
    return rates, sync_run.runs, skew


def burst_alignment(rates: np.ndarray, threshold_gbps: float = 0.05) -> float:
    """Fraction of burst onsets that appear in the same aligned sample
    on every server (allowing +-1 bucket for interpolation edges)."""
    active = rates > threshold_gbps
    onsets = []
    for row in active:
        rising = np.flatnonzero(row[1:] & ~row[:-1]) + 1
        onsets.append(set(rising.tolist()))
    if not onsets or not onsets[0]:
        return 0.0
    reference = sorted(onsets[0])
    aligned = 0
    for onset in reference:
        if all(
            any(abs(onset - other) <= 1 for other in server_onsets)
            for server_onsets in onsets[1:]
        ):
            aligned += 1
    return aligned / len(reference)


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    rates, runs, skew = run_simulation()
    alignment = burst_alignment(rates)
    time_axis = np.arange(rates.shape[1], dtype=float)
    series = [
        Series(f"Server{i + 1}", time_axis, rates[i]) for i in range(rates.shape[0])
    ]
    lines = ["Figure 3: multicast bursts per server (1 ms samples, Gbps)"]
    for i in range(rates.shape[0]):
        window = rates[i][:400]
        lines.append(f"  Server{i + 1} " + sparkline(window))
    rendering = "\n".join(lines)
    peak = float(rates.max())
    return ExperimentResult(
        experiment_id="fig3",
        title="SyncMillisampler validation: multicast burst alignment",
        paper_claim=(
            "Bursts replicated by the rack switch appear in the same 1 ms "
            "sample on all eight subscribers; multicast is rate limited so "
            "bursts do not reach line rate."
        ),
        series=series,
        metrics={
            "burst_alignment_fraction": alignment,
            "max_clock_skew_ms": skew * 1e3,
            "peak_rate_gbps": peak,
        },
        rendering=rendering,
        notes=(
            f"{alignment * 100:.0f}% of burst onsets aligned across all "
            f"{rates.shape[0]} subscribers; max pairwise clock skew "
            f"{skew * 1e3:.3f} ms (< 1 ms sampling interval); peak rate "
            f"{peak:.2f} Gbps, well under the 12.5 Gbps line rate due to "
            f"multicast rate limiting."
        ),
    )
