"""Figure 4 (validation): SyncMillisampler identifies the number of
simultaneously bursty servers.

Section 4.5's second experiment: five clients in one rack receive
periodic 1.8 MB bursts (~3 ms at 12.5 Gbps) from five servers outside
the rack; the post-analysis on SyncMillisampler logs must report five
simultaneously bursty servers during each burst.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..config import SamplerConfig
from ..core.syncsampler import SyncMillisampler
from ..simnet.fabric import build_pod
from ..workload.flows import BurstGeneratorClient, BurstServer
from ..viz.ascii import sparkline
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext

CLIENTS = 5
BURST_BYTES = int(1.8 * units.MB)
BURST_PERIOD = 200e-3


def run_simulation(seed: int = 1, buckets: int = 2000):
    """Drive the six-rack burst-generator setup; returns the SyncRun."""
    rng = np.random.default_rng(seed)
    sampler_config = SamplerConfig(buckets=buckets, cpus=4)
    # Section 4.5: "five clients in the same rack receiving periodic
    # bursty traffic from five servers spread across five racks" — a
    # six-rack pod: the clients' rack plus one rack per sender, with
    # bursts crossing the fabric.
    pod = build_pod(
        racks=CLIENTS + 1,
        servers_per_rack=CLIENTS,
        sampler_config=sampler_config,
        rng=rng,
    )
    engine = pod.engine
    rack = pod.racks[0]
    clients = rack.hosts[:CLIENTS]
    senders = [pod.racks[i + 1].hosts[0] for i in range(CLIENTS)]

    apps = []
    for index, (client, sender) in enumerate(zip(clients, senders)):
        server_app = BurstServer(sender)
        client_app = BurstGeneratorClient(
            client,
            server_app,
            burst_bytes=BURST_BYTES,
            period=BURST_PERIOD,
            # Paced below line rate so each 1.8 MB burst spans ~3 ms,
            # "sufficiently long to be detected at a 1 ms granularity"
            # (Section 4.5) while still clearing the 50% burst threshold.
            burst_rate=0.62 * units.SERVER_LINK_RATE,
        )
        client_app.start(first_request=0.35 + index * 1e-4)
        apps.append(client_app)

    sync = SyncMillisampler()
    start_at = 3 * sampler_config.duration
    sync_id = sync.request_collection(
        rack.sampled_hosts[:CLIENTS], rack.name, "RegA", start_at, now=engine.now
    )

    end = start_at + sampler_config.duration + 0.3
    # Poll times as exact multiples: a poll must land exactly on the
    # scheduled sync start (interval accumulation drifts in float).
    tick = 0
    while engine.now < end:
        engine.run_until(min(tick * 10e-3, end))
        pod.poll_samplers()
        tick += 1
    pod.poll_samplers()
    return sync.assemble(sync_id)


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    sync_run = run_simulation()
    contention = sync_run.contention_series()
    rates = np.vstack(
        [r.in_bytes / sync_run.sampling_interval * 8 / 1e9 for r in sync_run.runs]
    )
    time_axis = np.arange(len(contention), dtype=float)
    series = [
        Series(f"Server{i + 1}", time_axis, rates[i]) for i in range(rates.shape[0])
    ]
    series.append(Series("bursty-servers", time_axis, contention.astype(float)))

    max_contention = int(contention.max())
    buckets_at_full = int((contention == CLIENTS).sum())
    bursts_seen = int(
        (np.diff((contention == CLIENTS).astype(int)) == 1).sum()
        + (contention[0] == CLIENTS)
    )

    lines = ["Figure 4: concurrent bursty servers (counts per 1 ms sample)"]
    for i in range(rates.shape[0]):
        lines.append(f"  Server{i + 1} " + sparkline(rates[i][:400]))
    lines.append("  #bursty  " + sparkline(contention[:400]))
    return ExperimentResult(
        experiment_id="fig4",
        title="SyncMillisampler validation: counting concurrent bursty servers",
        paper_claim=(
            "Five 1.8 MB bursts (~3 ms at 12.5 Gbps) arriving together are "
            "identified as exactly 5 simultaneously bursty servers over the "
            "same ~3 ms interval."
        ),
        series=series,
        metrics={
            "max_concurrent_bursty": float(max_contention),
            "expected_concurrent": float(CLIENTS),
            "full_contention_buckets": float(buckets_at_full),
            "bursts_detected": float(bursts_seen),
        },
        rendering="\n".join(lines),
        notes=(
            f"Post-analysis found {max_contention} simultaneously bursty "
            f"servers (expected {CLIENTS}); full contention held for "
            f"{buckets_at_full} one-ms samples across {bursts_seen} bursts."
        ),
    )
