"""Figure 12: per-rack mean/min/max of average contention across a day.

Paper: racks sorted by their day-mean contention show the same bimodal
RegA structure as the busy hour (75% under 1.4, 20% over 6.4); the
low-contention racks vary little across the day (average band 0.8) and
the high racks, though more variable (5.3), never dip into the low
group — contention class is persistent.  RegB's bands overlap far more.
"""

from __future__ import annotations

import numpy as np

from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    series = []
    metrics = {}
    renderings = []
    for region in ("RegA", "RegB"):
        profiles = sorted(ctx.profiles(region), key=lambda p: p.mean_contention)
        ids = np.arange(len(profiles), dtype=float)
        means = np.array([p.mean_contention for p in profiles])
        mins = np.array([p.min_contention for p in profiles])
        maxs = np.array([p.max_contention for p in profiles])
        series.extend(
            [
                Series(f"{region}-mean", ids, means),
                Series(f"{region}-min", ids, mins),
                Series(f"{region}-max", ids, maxs),
            ]
        )
        renderings.append(
            ascii_plot(
                ids,
                {"min": mins, "mean": means, "max": maxs},
                x_label="rack id (sorted by mean contention)",
                y_label="avg contention",
                title=f"Figure 12 ({region}): per-rack contention band over the day",
                height=12,
            )
        )
        p75 = float(np.percentile(means, 75))
        p80 = float(np.percentile(means, 80))
        low = means <= p75
        high = means >= p80
        metrics[f"{region}_p75_mean"] = p75
        metrics[f"{region}_low_band_width"] = float((maxs - mins)[low].mean())
        metrics[f"{region}_high_band_width"] = (
            float((maxs - mins)[high].mean()) if high.any() else 0.0
        )
        # Persistence: do high racks ever dip below the low racks' p75?
        if high.any():
            metrics[f"{region}_high_min_over_low_p75"] = float(
                (mins[high] > p75).mean()
            )
    return ExperimentResult(
        experiment_id="fig12",
        title="Per-rack contention variation across the day",
        paper_claim=(
            "RegA: 75% of racks under ~1.4 mean contention, 20% over 6.4; "
            "low racks vary by ~0.8 across the day, high racks by ~5.3, and "
            "the two groups' ranges do not overlap — contention class is "
            "persistent.  RegB ranges overlap far more."
        ),
        series=series,
        metrics=metrics,
        rendering="\n\n".join(renderings),
        notes=(
            f"RegA band widths: low {metrics['RegA_low_band_width']:.2f} "
            f"(paper ~0.8) vs high {metrics['RegA_high_band_width']:.2f} "
            f"(~5.3); fraction of RegA-High racks whose *minimum* stays above "
            f"the low group's p75: "
            f"{metrics.get('RegA_high_min_over_low_p75', 0) * 100:.0f}% "
            f"(persistence)."
        ),
    )
