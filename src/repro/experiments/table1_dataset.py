"""Table 1: dataset summary per region.

Paper (per region, one day): 22.4K sync runs, ~2M server runs, ~0.6M
bursty server runs, ~20M bursts, 1000s of racks.  The synthetic
dataset is smaller by configuration; the *ratios* (bursty-run
fraction, bursts per bursty run) are the comparable quantities.
"""

from __future__ import annotations

from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

#: The paper's Table 1, for side-by-side rendering.
PAPER_ROWS = {
    "RegA": dict(runs=22_400, server_runs=1_980_000, bursty_runs=670_000, bursts=19_500_000),
    "RegB": dict(runs=22_400, server_runs=2_100_000, bursty_runs=580_000, bursts=23_900_000),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    rows = []
    metrics = {}
    for region in ("RegA", "RegB"):
        summary = ctx.table1_row(region)
        paper = PAPER_ROWS[region]
        rows.append(
            [
                region,
                summary.runs,
                summary.server_runs,
                summary.bursty_server_runs,
                summary.bursts,
                summary.racks,
                f"{summary.bursty_run_fraction * 100:.1f}%",
                f"{paper['bursty_runs'] / paper['server_runs'] * 100:.1f}%",
            ]
        )
        metrics[f"{region}_runs"] = float(summary.runs)
        metrics[f"{region}_server_runs"] = float(summary.server_runs)
        metrics[f"{region}_bursty_fraction"] = summary.bursty_run_fraction
        metrics[f"{region}_bursts_per_bursty_run"] = (
            summary.bursts / summary.bursty_server_runs
            if summary.bursty_server_runs
            else 0.0
        )
    table = ResultTable(
        title="Table 1: dataset summary (synthetic scale)",
        headers=[
            "Region", "runs", "server runs", "bursty runs", "bursts",
            "racks", "bursty frac", "paper frac",
        ],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Dataset summary",
        paper_claim=(
            "One day per region: 22.4K sync runs, ~2M server runs of which "
            "~34% (RegA 0.67M, RegB 0.58M) are bursty, 19.5M/23.9M bursts."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            "Synthetic scale is configurable; compare the bursty-run "
            "fraction and bursts-per-bursty-run ratios, not absolute counts."
        ),
    )
