"""Figure 11: dominant-task density across racks.

Racks sorted by contention on the x-axis; y is the percentage of the
rack's servers running its dominant task.  Paper: RegA-High racks sit
at 60-100% dominant share (all the same ML task), while RegA-Typical
racks have a median share of 25% (p90 38%); RegB looks like
RegA-Typical.
"""

from __future__ import annotations

import numpy as np

from ..analysis.racks import RackClass
from ..analysis.tasks import dominant_share_by_rack
from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    series = []
    metrics = {}
    renderings = []
    for region in ("RegA", "RegB"):
        profiles = ctx.profiles(region)
        ids, shares = dominant_share_by_rack(profiles)
        series.append(Series(region, ids.astype(float), shares))
        renderings.append(
            ascii_plot(
                ids.astype(float),
                {region: shares},
                x_label="rack id (sorted by contention)",
                y_label="% of dominant task instances",
                title=f"Figure 11 ({region}): dominant-task density",
                height=12,
            )
        )

    classes = ctx.rega_classes()
    typical_shares = np.array(
        [p.dominant_share * 100 for p in classes[RackClass.TYPICAL]]
    )
    high_shares = np.array([p.dominant_share * 100 for p in classes[RackClass.HIGH]])
    metrics = {
        "typical_median_share_pct": float(np.median(typical_shares)),
        "typical_p90_share_pct": float(np.percentile(typical_shares, 90)),
        "high_min_share_pct": float(high_shares.min()) if high_shares.size else 0.0,
        "high_median_share_pct": float(np.median(high_shares)) if high_shares.size else 0.0,
    }
    return ExperimentResult(
        experiment_id="fig11",
        title="Dominant task density across racks",
        paper_claim=(
            "High-contention racks run one task on 60-100% of servers; "
            "typical racks' dominant task covers a median 25% (p90 38%)."
        ),
        series=series,
        metrics=metrics,
        rendering="\n\n".join(renderings),
        notes=(
            f"RegA-Typical median share {metrics['typical_median_share_pct']:.0f}% "
            f"(paper 25%), p90 {metrics['typical_p90_share_pct']:.0f}% (38%); "
            f"RegA-High median {metrics['high_median_share_pct']:.0f}% "
            f"(60-100% band)."
        ),
    )
