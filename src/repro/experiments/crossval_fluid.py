"""Cross-validation: fluid buffer model vs packet-level simulator.

DESIGN.md's substitution argument rests on the fluid model preserving
the buffer mechanisms, not fitting curves.  This experiment drives the
*same* burst scenario through both substrates — N servers receiving
synchronized paced bursts through one shared-buffer ToR — and compares
where the two agree: delivered volume, loss onset as contention grows,
and ECN marking.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..config import BufferConfig, RackConfig
from ..fleet.buffermodel import FluidBufferModel
from ..simnet.topology import build_rack
from ..workload.flows import BurstServer
from .base import ExperimentResult, ResultTable
from .context import ExperimentContext

DRAIN = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL
#: Per-burst volume: long enough (24 MB at 1.5x line rate, ~14 ms) that
#: the sustained-overload phase dominates the few-bucket transient the
#: fluid model integrates coarsely.
BURST_BYTES = int(24 * units.MB)
ARRIVAL_RATE = 1.5  # x line rate into each queue


def packet_level_loss(concurrent: int, seed: int = 0) -> tuple[float, float]:
    """(loss fraction, delivered fraction) for ``concurrent`` servers
    receiving a synchronized over-rate burst via the packet simulator."""
    config = RackConfig(
        servers=2 * concurrent,
        buffer=BufferConfig(ecn_threshold_bytes=1e12),  # isolate buffer loss
    )
    rack = build_rack(
        servers=2 * concurrent, rack_config=config, rng=np.random.default_rng(seed)
    )
    # One fast external sender per receiving server, so pacing is not
    # bottlenecked on a shared uplink.
    for index in range(concurrent):
        sender_host = rack.hosts[concurrent + index]
        sender_host.uplink.rate = units.gbps(100)
        server = BurstServer(sender_host, packet_bytes=16 * 1024)
        server.transmit_burst(
            rack.hosts[index].name, BURST_BYTES,
            rate=ARRIVAL_RATE * units.SERVER_LINK_RATE,
        )
    rack.engine.run_until(0.5)
    counters = rack.switch.counters
    offered = counters.ingress_bytes
    return counters.discard_bytes / offered, counters.forwarded_bytes / offered


def fluid_loss(concurrent: int) -> tuple[float, float]:
    """The same scenario through the fluid model: identical topology
    (2N servers so quadrant striping matches), open-loop sources, no
    retransmission, ECN disabled."""
    servers = 2 * concurrent
    model = FluidBufferModel(
        servers=servers,
        buffer_config=BufferConfig(ecn_threshold_bytes=1e12),
        responsive_sources=False,
        retransmit_losses=False,
    )
    buckets = 500
    demand = np.zeros((buckets, servers))
    length = int(np.ceil(BURST_BYTES / (ARRIVAL_RATE * DRAIN)))
    demand[5 : 5 + length, :concurrent] = ARRIVAL_RATE * DRAIN
    # Trim the last bucket to the exact volume.
    demand[5 + length - 1, :concurrent] = BURST_BYTES - ARRIVAL_RATE * DRAIN * (length - 1)
    result = model.run(
        demand,
        sender_persistence=np.full(servers, 1e9),
        initial_multiplier=np.ones(servers),
        initial_alpha=np.zeros(servers),
    )
    offered = demand.sum()
    return result.dropped.sum() / offered, result.delivered.sum() / offered


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    rows = []
    metrics = {}
    max_gap = 0.0
    for concurrent in (1, 2, 4, 8, 16):
        packet_loss, _ = packet_level_loss(concurrent)
        fluid_loss_frac, _ = fluid_loss(concurrent)
        gap = abs(packet_loss - fluid_loss_frac)
        max_gap = max(max_gap, gap)
        rows.append(
            [
                concurrent,
                f"{packet_loss * 100:.2f}%",
                f"{fluid_loss_frac * 100:.2f}%",
                f"{gap * 100:.2f}pp",
            ]
        )
        metrics[f"packet_loss_s{concurrent}"] = packet_loss
        metrics[f"fluid_loss_s{concurrent}"] = fluid_loss_frac
    metrics["max_gap"] = max_gap

    table = ResultTable(
        title="Loss fraction, packet-level vs fluid, same synchronized bursts",
        headers=["concurrent bursts", "packet-level", "fluid model", "gap"],
        rows=rows,
    )
    return ExperimentResult(
        experiment_id="crossval",
        title="Fluid model vs packet simulator cross-validation",
        paper_claim=(
            "(DESIGN.md) The fluid substitution preserves the buffer "
            "mechanism: loss onset and growth with contention must match "
            "the packet-level dynamic-threshold buffer."
        ),
        tables=[table],
        metrics=metrics,
        notes=(
            f"Largest packet-vs-fluid loss gap across contention levels: "
            f"{max_gap * 100:.2f} percentage points."
        ),
    )
