"""Combined report generation: every experiment into one document.

``millisampler-repro report`` runs the full registry against one shared
context and writes a single markdown report with, per artifact: the
paper's claim, the measured headline metrics, and the rendering —
the machine-generated companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import time

from .base import ExperimentResult
from .context import ExperimentContext
from .registry import EXPERIMENTS, get_experiment


def run_all(
    ctx: ExperimentContext,
    experiment_ids: list[str] | None = None,
    progress=None,
) -> dict[str, ExperimentResult]:
    """Run every (or the named) experiments against one context."""
    ids = experiment_ids or sorted(EXPERIMENTS, key=lambda k: (len(k), k))
    results: dict[str, ExperimentResult] = {}
    for experiment_id in ids:
        started = time.time()
        results[experiment_id] = get_experiment(experiment_id)(ctx)
        if progress is not None:
            progress(experiment_id, time.time() - started)
    return results


def render_markdown(
    results: dict[str, ExperimentResult], ctx: ExperimentContext
) -> str:
    """One markdown document covering every result."""
    buffer = io.StringIO()
    buffer.write("# Millisampler reproduction report\n\n")
    buffer.write(
        f"Generated from the synthetic dataset: "
        f"{ctx.fleet.racks_per_region} racks/region x "
        f"{ctx.fleet.runs_per_rack} runs/rack, seed {ctx.fleet.seed}.\n\n"
    )
    buffer.write("## Summary\n\n")
    buffer.write("| experiment | title | headline |\n|---|---|---|\n")
    for experiment_id, result in results.items():
        headline = result.notes.split(";")[0].split(".")[0][:110] if result.notes else ""
        buffer.write(f"| `{experiment_id}` | {result.title} | {headline} |\n")

    for experiment_id, result in results.items():
        buffer.write(f"\n---\n\n## {experiment_id}: {result.title}\n\n")
        buffer.write(f"**Paper:** {result.paper_claim}\n\n")
        if result.notes:
            buffer.write(f"**Measured:** {result.notes}\n\n")
        for table in result.tables:
            buffer.write("```\n" + table.render() + "\n```\n\n")
        if result.metrics:
            buffer.write("<details><summary>metrics</summary>\n\n```\n")
            for name, value in sorted(result.metrics.items()):
                buffer.write(f"{name} = {value:.6g}\n")
            buffer.write("```\n</details>\n")
    return buffer.getvalue()


def write_report(
    ctx: ExperimentContext,
    path: str,
    experiment_ids: list[str] | None = None,
    progress=None,
) -> str:
    """Run and write the combined report; returns the path."""
    results = run_all(ctx, experiment_ids, progress)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(results, ctx))
    return path
