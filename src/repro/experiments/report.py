"""Combined report generation: every experiment into one document.

``millisampler-repro report`` runs the full registry against one shared
context and writes a single markdown report with, per artifact: the
paper's claim, the measured headline metrics, and the rendering —
the machine-generated companion to EXPERIMENTS.md.

Execution goes through :mod:`repro.experiments.orchestrator`, so a
single broken experiment no longer kills the whole report: failures are
recorded, rendered in their own section, and every other artifact still
lands.
"""

from __future__ import annotations

import io

from .base import ExperimentResult, format_metric
from .context import ExperimentContext
from .orchestrator import ExperimentOutcome, OrchestrationResult, run_experiments
from .registry import ordered_ids


def run_all(
    ctx: ExperimentContext,
    experiment_ids: list[str] | None = None,
    progress=None,
) -> dict[str, ExperimentResult]:
    """Run every (or the named) experiments against one context.

    Legacy fail-fast API: the first experiment exception propagates.
    Callers that want isolation and structured outcomes use
    :func:`repro.experiments.orchestrator.run_experiments` directly.
    """
    orchestration = orchestrate(
        ctx, experiment_ids, progress=progress, on_error="raise"
    )
    return orchestration.results


def orchestrate(
    ctx: ExperimentContext,
    experiment_ids: list[str] | None = None,
    exp_jobs: int = 1,
    progress=None,
    on_error: str = "collect",
) -> OrchestrationResult:
    """Run the (named or full) registry with outcomes and telemetry.

    ``progress`` keeps the historical ``(experiment_id, seconds)``
    callback shape.
    """
    ids = experiment_ids or ordered_ids()
    outcome_progress = None
    if progress is not None:
        def outcome_progress(outcome: ExperimentOutcome, _result) -> None:
            progress(outcome.experiment_id, outcome.wall_time_s)
    return run_experiments(
        ctx, ids, exp_jobs=exp_jobs, progress=outcome_progress, on_error=on_error
    )


def render_markdown(
    results: dict[str, ExperimentResult],
    ctx: ExperimentContext,
    outcomes: list[ExperimentOutcome] | None = None,
) -> str:
    """One markdown document covering every result.

    ``outcomes`` (from an orchestrated run) adds per-experiment wall
    times to the summary table and a failure section listing every
    experiment that did not complete.
    """
    by_id = {o.experiment_id: o for o in (outcomes or [])}
    buffer = io.StringIO()
    buffer.write("# Millisampler reproduction report\n\n")
    buffer.write(
        f"Generated from the synthetic dataset: "
        f"{ctx.fleet.racks_per_region} racks/region x "
        f"{ctx.fleet.runs_per_rack} runs/rack, seed {ctx.fleet.seed}.\n\n"
    )
    failed = [o for o in (outcomes or []) if o.status != "ok"]
    if failed:
        buffer.write("## Failures\n\n")
        buffer.write(
            f"{len(failed)} of {len(outcomes or [])} experiments did not complete:\n\n"
        )
        for outcome in failed:
            buffer.write(f"- `{outcome.experiment_id}` ({outcome.status}): "
                         f"{outcome.error}\n")
        buffer.write("\n")
    buffer.write("## Summary\n\n")
    buffer.write("| experiment | title | headline |\n|---|---|---|\n")
    for experiment_id, result in results.items():
        headline = result.notes.split(";")[0].split(".")[0][:110] if result.notes else ""
        buffer.write(f"| `{experiment_id}` | {result.title} | {headline} |\n")

    for experiment_id, result in results.items():
        buffer.write(f"\n---\n\n## {experiment_id}: {result.title}\n\n")
        buffer.write(f"**Paper:** {result.paper_claim}\n\n")
        outcome = by_id.get(experiment_id)
        if outcome is not None:
            buffer.write(f"*Completed in {outcome.wall_time_s:.1f}s.*\n\n")
        if result.notes:
            buffer.write(f"**Measured:** {result.notes}\n\n")
        for table in result.tables:
            buffer.write("```\n" + table.render() + "\n```\n\n")
        if result.metrics:
            buffer.write("<details><summary>metrics</summary>\n\n```\n")
            for name, value in sorted(result.metrics.items()):
                buffer.write(
                    f"{name} = {format_metric(experiment_id, name, value)}\n"
                )
            buffer.write("```\n</details>\n")
    return buffer.getvalue()


def write_report(
    ctx: ExperimentContext,
    path: str,
    experiment_ids: list[str] | None = None,
    progress=None,
    exp_jobs: int = 1,
) -> str:
    """Run and write the combined report; returns the path.

    Failures are isolated: the report always lands, with a failure
    section when experiments broke (inspect the returned file, or run
    :func:`orchestrate` directly for structured outcomes).
    """
    orchestration = orchestrate(ctx, experiment_ids, exp_jobs=exp_jobs, progress=progress)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(orchestration.results, ctx, orchestration.outcomes))
    return path
