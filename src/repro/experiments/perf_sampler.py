"""Section 4.3: Millisampler performance model.

Reproduces the cost accounting: 88 ns per packet with flow counting
(84 ns without, 7 ns disabled), a fixed 4.3 ms counter-map read, and
the break-even against tcpdump (271 ns/packet) at ~33,000 packets.
Also reports the in-kernel memory footprint for the production
configuration.
"""

from __future__ import annotations

import numpy as np

from ..config import SamplerConfig
from ..core.millisampler import CostModel, Millisampler
from ..core.run import RunMetadata
from ..viz.ascii import ascii_plot
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    model = CostModel()
    packets = np.logspace(2, 6, 60)
    ms_cost = np.array([model.run_cost_ns(int(p)) / 1e6 for p in packets])
    tcpdump_cost = np.array([model.tcpdump_cost_ns(int(p)) / 1e6 for p in packets])
    breakeven = model.breakeven_packets()

    config = SamplerConfig()
    sampler = Millisampler(
        RunMetadata(host="perf-host"),
        sampling_interval=config.sampling_interval,
        buckets=config.buckets,
        cpus=config.cpus,
    )
    footprint_mb = sampler.memory_footprint_bytes / (1024 * 1024)

    series = [
        Series("millisampler", packets, ms_cost),
        Series("tcpdump", packets, tcpdump_cost),
    ]
    rendering = ascii_plot(
        np.log10(packets),
        {"millisampler": ms_cost, "tcpdump": tcpdump_cost},
        x_label="log10(packets per run)",
        y_label="CPU time (ms)",
        title="Section 4.3: per-run CPU cost vs tcpdump",
        height=12,
    )
    return ExperimentResult(
        experiment_id="perf",
        title="Millisampler cost model",
        paper_claim=(
            "88 ns/packet (84 without flow counting, 7 disabled), 4.3 ms "
            "fixed map read; cheaper than tcpdump (271 ns/packet) past "
            "33,000 packets; ~3.6 MB in-kernel footprint."
        ),
        series=series,
        metrics={
            "breakeven_packets": float(breakeven),
            "per_packet_ns": model.per_packet_full_ns,
            "per_packet_disabled_ns": model.per_packet_disabled_ns,
            "footprint_mb": footprint_mb,
        },
        rendering=rendering,
        notes=(
            f"break-even at {breakeven:,} packets (paper ~33,000); "
            f"in-kernel footprint {footprint_mb:.1f} MB for "
            f"{config.cpus} CPUs x {config.buckets} buckets (paper avg 3.6 MB)."
        ),
    )
