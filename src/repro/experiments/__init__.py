"""Experiment harness: one module per paper table/figure.

Every experiment consumes an :class:`~repro.experiments.context.ExperimentContext`
(which generates and caches the synthetic region datasets) and returns
an :class:`~repro.experiments.base.ExperimentResult` carrying the
figure's data series, tables, headline metrics, and an ASCII rendering.

Run everything from the command line::

    millisampler-repro list
    millisampler-repro run fig9 table2 --racks 100
    millisampler-repro run all --out results/
"""

from .base import ExperimentResult
from .context import ExperimentContext
from .registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentContext",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
