"""Figure 8: connection counts inside vs outside bursts.

Paper: more connections are active inside a burst than outside, with a
median ratio of 2.7x — the signature of fan-in (incast) driving bursts.
"""

from __future__ import annotations

import numpy as np

from ..analysis.stats import cdf, percentile
from ..viz.ascii import ascii_cdf
from ..viz.series import Series
from .base import ExperimentResult
from .context import ExperimentContext


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Regenerate this artifact (see module docstring)."""
    summaries = ctx.summaries("RegA")
    inside = []
    outside = []
    ratios = []
    for summary in summaries:
        for stat in summary.server_stats:
            if not stat.bursty:
                continue
            if np.isfinite(stat.conns_inside):
                inside.append(stat.conns_inside)
            if np.isfinite(stat.conns_outside):
                outside.append(stat.conns_outside)
            if (
                np.isfinite(stat.conns_inside)
                and np.isfinite(stat.conns_outside)
                and stat.conns_outside > 0
            ):
                ratios.append(stat.conns_inside / stat.conns_outside)

    inside_arr = np.array(inside)
    outside_arr = np.array(outside)
    series = []
    for name, values in (("outside-burst", outside_arr), ("inside-burst", inside_arr)):
        x, y = cdf(values)
        series.append(Series(name, x, y))
    metrics = {
        "median_conns_inside": percentile(inside_arr, 50),
        "median_conns_outside": percentile(outside_arr, 50),
        "median_ratio": float(np.median(ratios)),
    }
    rendering = ascii_cdf(
        {"outside-burst": outside_arr, "inside-burst": inside_arr},
        x_label="average number of connections",
        title="Figure 8: connection counts in vs out of bursts (RegA)",
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Connection counts inside and outside bursts",
        paper_claim=(
            "Connections during a burst exceed connections outside, with a "
            "median difference of 2.7x."
        ),
        series=series,
        metrics=metrics,
        rendering=rendering,
        notes=(
            f"median inside {metrics['median_conns_inside']:.0f} vs outside "
            f"{metrics['median_conns_outside']:.0f}; median ratio "
            f"{metrics['median_ratio']:.1f}x (paper 2.7x)."
        ),
    )
