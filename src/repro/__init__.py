"""Reproduction of "A Microscopic View of Bursts, Buffer Contention, and
Loss in Data Centers" (Ghabashneh et al., IMC 2022).

Public API overview
===================

``repro.core``
    Millisampler and SyncMillisampler: the host-side sampler state
    machine, the 128-bit connection sketch, run storage/scheduling, and
    rack-synchronous collection with alignment.

``repro.simnet``
    Packet-level discrete-event substrate: hosts with tc-like tap
    chains, a shared-memory ToR with Choudhury-Hahne dynamic-threshold
    buffering, static-threshold ECN, multicast, a fabric layer for
    multi-rack pods, and DCTCP/Cubic TCP.

``repro.workload``
    Service catalog, task placement policies (including the ML
    co-location that produces RegA's bimodal contention), flow/burst
    generators, and diurnal load profiles.

``repro.fleet``
    Region-scale fluid model that synthesizes SyncMillisampler datasets
    (the substitute for Meta's production data; see DESIGN.md), plus
    alternative buffer-sharing policies and the calibration harness.

``repro.analysis``
    The paper's analysis pipeline: burst detection, contention,
    loss association, rack classification, diurnal statistics, and
    placement metrics.

``repro.io``
    Millisampler-dataset reader/writer (works with the released data).

``repro.experiments``
    One module per paper table/figure plus extension experiments;
    driven by the ``millisampler-repro`` CLI.
"""

from . import units
from .config import BufferConfig, FleetConfig, RackConfig, SamplerConfig
from .core import (
    FlowSketch,
    Millisampler,
    MillisamplerRun,
    RunMetadata,
    SyncMillisampler,
    SyncRun,
)

__version__ = "1.0.0"

__all__ = [
    "units",
    "BufferConfig",
    "FleetConfig",
    "RackConfig",
    "SamplerConfig",
    "FlowSketch",
    "Millisampler",
    "MillisamplerRun",
    "RunMetadata",
    "SyncMillisampler",
    "SyncRun",
    "__version__",
]
