"""Streaming, mergeable partial summaries for out-of-core aggregation.

The sharded region store (:mod:`repro.fleet.shards`) holds a region-day
as many independent shards; the aggregations feeding Table 1 and
Figures 9/12/13/15/16 must therefore run *shard by shard*, with peak
memory bounded by one shard regardless of rack count.  This module
provides the partials that make that possible:

* **Generic partials** — :class:`CountSum`, :class:`Histogram`, and
  :class:`QuantileSketch`: associative, commutative-where-documented
  merge operations over bounded state, the classic building blocks of
  distributed aggregation.

* **Exact figure accumulators** — :class:`Table1Accumulator`,
  :class:`RackProfileAccumulator`, :class:`HourlyBoxAccumulator`,
  :class:`RunContentionAccumulator`, :class:`BurstContentionAccumulator`:
  partials whose ``finalize()`` is **bit-identical** to the in-memory
  aggregation over the full summary list.  They carry per-*run* (or
  per-burst) scalars keyed by ``(rack, hour)`` — a few floats per rack
  run, negligible next to the raw 8.16 B-sample footprint — and replay
  the oracle's exact numpy/python reduction order at finalize, so the
  result does not depend on how runs were split into shards or in which
  order shards merged.

Every accumulator supports the same protocol: feed rows (from a shard's
columnar arrays or from in-memory :class:`RunSummary` objects), merge
with another accumulator of the same type, and finalize once at the
end.  Merging is associative: ``a.merge(b); a.merge(c)`` equals
``b.merge(c); a.merge(b)`` finalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from .racks import RackProfile
from .stats import BoxStats

__all__ = [
    "CountSum",
    "Histogram",
    "QuantileSketch",
    "Table1Partial",
    "Table1Accumulator",
    "RackProfileAccumulator",
    "HourlyBoxAccumulator",
    "RunContentionAccumulator",
    "RunContentionView",
    "BurstContentionAccumulator",
    "BurstContentionView",
]


# -- generic mergeable partials ---------------------------------------------


@dataclass
class CountSum:
    """Count/sum/min/max of a stream — the cheapest mergeable moment set."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def add_array(self, values: np.ndarray) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        self.count += int(array.size)
        self.total += float(array.sum())
        self.minimum = min(self.minimum, float(array.min()))
        self.maximum = max(self.maximum, float(array.max()))

    def merge(self, other: "CountSum") -> "CountSum":
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Histogram:
    """Fixed-edge histogram; merge adds counts bin-wise.

    Edges are part of the partial's identity: merging histograms with
    different edges is a logic error and raises.
    """

    def __init__(self, edges: np.ndarray | list) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.size < 2:
            raise AnalysisError("histogram needs at least two edges")
        if np.any(np.diff(self.edges) <= 0):
            raise AnalysisError("histogram edges must be strictly increasing")
        self.counts = np.zeros(self.edges.size - 1, dtype=np.int64)
        #: Values outside [edges[0], edges[-1]] land here, never lost.
        self.underflow = 0
        self.overflow = 0

    def add_array(self, values: np.ndarray | list) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        self.underflow += int((array < self.edges[0]).sum())
        self.overflow += int((array > self.edges[-1]).sum())
        inside = array[(array >= self.edges[0]) & (array <= self.edges[-1])]
        counts, _ = np.histogram(inside, bins=self.edges)
        self.counts += counts

    def add(self, value: float) -> None:
        self.add_array([value])

    def merge(self, other: "Histogram") -> "Histogram":
        if not np.array_equal(self.edges, other.edges):
            raise AnalysisError("cannot merge histograms with different edges")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow


class QuantileSketch:
    """Bounded-memory mergeable quantile sketch (deterministic KLL-style).

    Items live on levels; an item on level ``i`` represents ``2**i``
    original values.  When a level overflows its capacity it is sorted
    and every other item is promoted one level up, alternating the
    starting offset deterministically so merge results do not depend on
    randomness.  Rank error is O(1/k)-ish — good enough for shard-scale
    progress summaries and sweep dashboards; the figure paths that must
    be bit-exact use the exact accumulators below instead.
    """

    def __init__(self, k: int = 256) -> None:
        if k < 8:
            raise AnalysisError("sketch capacity too small to be meaningful")
        self.k = k
        self._levels: list[list[float]] = [[]]
        self._parity: list[bool] = [False]
        self.count = 0

    def add(self, value: float) -> None:
        self._levels[0].append(float(value))
        self.count += 1
        self._compress()

    def add_array(self, values: np.ndarray | list) -> None:
        array = np.asarray(values, dtype=np.float64)
        self._levels[0].extend(array.tolist())
        self.count += int(array.size)
        self._compress()

    def _capacity(self, level: int) -> int:
        # KLL: the top level (heaviest items) gets the full capacity k,
        # decaying geometrically toward level 0 — an error on a heavy
        # item costs 2**level in rank, so heavy levels must be compacted
        # rarely.  Total state stays O(k).
        top = len(self._levels) - 1
        return max(8, int(self.k * (2.0 / 3.0) ** (top - level)))

    def _compress(self) -> None:
        level = 0
        while level < len(self._levels):
            items = self._levels[level]
            if len(items) <= self._capacity(level):
                level += 1
                continue
            items.sort()
            offset = 1 if self._parity[level] else 0
            self._parity[level] = not self._parity[level]
            promoted = items[offset::2]
            self._levels[level] = []
            if level + 1 == len(self._levels):
                self._levels.append([])
                self._parity.append(False)
            self._levels[level + 1].extend(promoted)
            level += 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        if self.k != other.k:
            raise AnalysisError("cannot merge sketches with different capacity")
        while len(self._levels) < len(other._levels):
            self._levels.append([])
            self._parity.append(False)
        for level, items in enumerate(other._levels):
            self._levels[level].extend(items)
        self.count += other.count
        self._compress()
        return self

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) of everything added."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError("quantile must be in [0, 1]")
        if self.count == 0:
            raise AnalysisError("empty sketch has no quantiles")
        values: list[float] = []
        weights: list[int] = []
        for level, items in enumerate(self._levels):
            values.extend(items)
            weights.extend([2**level] * len(items))
        order = np.argsort(np.asarray(values, dtype=np.float64), kind="stable")
        sorted_values = np.asarray(values, dtype=np.float64)[order]
        cumulative = np.cumsum(np.asarray(weights, dtype=np.float64)[order])
        target = q * cumulative[-1]
        index = int(np.searchsorted(cumulative, target, side="left"))
        return float(sorted_values[min(index, sorted_values.size - 1)])


# -- keyed row block storage -------------------------------------------------


class _RowBlocks:
    """Blocks of (rack, hour, sub, value-columns) rows, merged by concat.

    ``finalize`` stable-sorts rows by (rack, hour, sub) — the global
    generation order (plans are rack-major, a rack's runs hour-ascending,
    ``sub`` preserving intra-run ordering) — so downstream reductions
    see values in exactly the order the in-memory oracle does, no matter
    how rows were split into shards.
    """

    def __init__(self, value_columns: int) -> None:
        self.value_columns = value_columns
        self._racks: list[np.ndarray] = []
        self._hours: list[np.ndarray] = []
        self._subs: list[np.ndarray] = []
        self._values: list[np.ndarray] = []

    @staticmethod
    def _materialized(array: np.ndarray) -> np.ndarray:
        """A copy detached from file- or buffer-backed storage.

        Blocks outlive the shard frame that fed them: retaining a view
        of a ``np.load(mmap_mode="r")`` array would pin the shard's fd
        open for the accumulator's lifetime (the long-lived-service fd
        leak) and read through a mapping the caller may since have
        closed.  Anything whose ultimate base is not plain owned
        process memory is copied; in-memory arrays pass through
        zero-copy.
        """
        base = array
        while isinstance(base, np.ndarray):
            if isinstance(base, np.memmap):
                return np.array(array)
            if base.base is None:
                return array
            base = base.base
        return np.array(array)

    def add_block(
        self,
        racks: np.ndarray,
        hours: np.ndarray,
        values: np.ndarray,
        subs: np.ndarray | None = None,
    ) -> None:
        racks = np.asarray(racks)
        hours = np.asarray(hours, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        if values.shape[1] != self.value_columns:
            raise AnalysisError("row block has the wrong number of value columns")
        if subs is None:
            subs = np.zeros(racks.shape[0], dtype=np.int64)
        if not (racks.shape[0] == hours.shape[0] == values.shape[0] == subs.shape[0]):
            raise AnalysisError("row block columns must align")
        self._racks.append(self._materialized(racks))
        self._hours.append(self._materialized(hours))
        self._subs.append(self._materialized(np.asarray(subs, dtype=np.int64)))
        self._values.append(self._materialized(values))

    def merge(self, other: "_RowBlocks") -> None:
        if self.value_columns != other.value_columns:
            raise AnalysisError("cannot merge row blocks of different width")
        self._racks.extend(other._racks)
        self._hours.extend(other._hours)
        self._subs.extend(other._subs)
        self._values.extend(other._values)

    @property
    def rows(self) -> int:
        return sum(block.shape[0] for block in self._racks)

    def sorted_rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(racks, hours, values) stable-sorted by (rack, hour, sub)."""
        if not self._racks:
            empty = np.empty((0, self.value_columns), dtype=np.float64)
            return np.empty(0, dtype="<U1"), np.empty(0, dtype=np.int64), empty
        racks = np.concatenate(self._racks)
        hours = np.concatenate(self._hours)
        subs = np.concatenate(self._subs)
        values = np.concatenate(self._values)
        order = np.lexsort((subs, hours, racks))
        return racks[order], hours[order], values[order]


# -- Table 1 -----------------------------------------------------------------


@dataclass
class Table1Partial:
    """Mergeable piece of one region's Table 1 row (all integer sums)."""

    runs: int = 0
    server_runs: int = 0
    bursty_server_runs: int = 0
    bursts: int = 0
    racks: set = field(default_factory=set)

    def merge(self, other: "Table1Partial") -> "Table1Partial":
        self.runs += other.runs
        self.server_runs += other.server_runs
        self.bursty_server_runs += other.bursty_server_runs
        self.bursts += other.bursts
        self.racks |= other.racks
        return self


class Table1Accumulator:
    """Streaming :meth:`RegionDataset.table1_row` — exact (integer sums
    are order-independent; the rack count is a distinct-set size)."""

    def __init__(self, region: str) -> None:
        self.region = region
        self.partial = Table1Partial()

    def add_summary(self, summary) -> None:
        self.partial.runs += 1
        self.partial.server_runs += summary.servers
        self.partial.bursty_server_runs += summary.bursty_server_runs()
        self.partial.bursts += len(summary.bursts)
        self.partial.racks.add(summary.rack)

    def add_columns(
        self,
        racks: np.ndarray,
        servers: np.ndarray,
        bursty_server_runs: np.ndarray,
        n_bursts: np.ndarray,
    ) -> None:
        self.partial.runs += int(np.asarray(servers).shape[0])
        self.partial.server_runs += int(np.asarray(servers, dtype=np.int64).sum())
        self.partial.bursty_server_runs += int(
            np.asarray(bursty_server_runs, dtype=np.int64).sum()
        )
        self.partial.bursts += int(np.asarray(n_bursts, dtype=np.int64).sum())
        self.partial.racks.update(np.unique(np.asarray(racks)).tolist())

    def merge(self, other: "Table1Accumulator") -> "Table1Accumulator":
        if self.region != other.region:
            raise AnalysisError("cannot merge Table 1 partials across regions")
        self.partial.merge(other.partial)
        return self

    def finalize(self):
        from ..fleet.dataset import DatasetSummary

        return DatasetSummary(
            region=self.region,
            runs=self.partial.runs,
            server_runs=self.partial.server_runs,
            bursty_server_runs=self.partial.bursty_server_runs,
            bursts=self.partial.bursts,
            racks=len(self.partial.racks),
        )


# -- rack profiles (Figures 9, 12, 17; the Typical/High split) ---------------


class RackProfileAccumulator:
    """Streaming :func:`repro.analysis.racks.rack_profiles`.

    Carries one row per rack run — ``(rack, hour, contention mean,
    discard bytes, ingress bytes)`` — plus per-rack static extras, and
    replays the oracle's exact reductions at finalize: ``np.mean`` over
    the per-run means in hour order, python ``sum`` for byte totals.
    """

    _VALUE_COLUMNS = 3  # mean contention, discard bytes, ingress bytes

    def __init__(self, hours: set[int] | None = None) -> None:
        self.hours = set(hours) if hours is not None else None
        self._rows = _RowBlocks(self._VALUE_COLUMNS)
        #: rack -> (region, distinct_tasks, dominant_share, colocated);
        #: identical for every run of a rack, so first-write-wins on
        #: merge is safe.
        self._static: dict[str, tuple[str, int, float, bool]] = {}

    def add_summary(self, summary) -> None:
        if self.hours is not None and summary.hour not in self.hours:
            return
        self._rows.add_block(
            np.asarray([summary.rack]),
            np.asarray([summary.hour], dtype=np.int64),
            np.asarray(
                [[
                    summary.contention.mean,
                    summary.switch_discard_bytes,
                    summary.switch_ingress_bytes,
                ]]
            ),
        )
        self._static.setdefault(
            summary.rack,
            (
                summary.region,
                int(summary.extras.get("distinct_tasks", 0)),
                float(summary.extras.get("dominant_share", 0.0)),
                bool(summary.extras.get("colocated", False)),
            ),
        )

    def add_columns(
        self,
        region: str,
        racks: np.ndarray,
        hours: np.ndarray,
        contention_mean: np.ndarray,
        discard_bytes: np.ndarray,
        ingress_bytes: np.ndarray,
        distinct_tasks: np.ndarray,
        dominant_share: np.ndarray,
        colocated: np.ndarray,
    ) -> None:
        racks = np.asarray(racks)
        hours = np.asarray(hours, dtype=np.int64)
        keep = (
            np.isin(hours, sorted(self.hours))
            if self.hours is not None
            else np.ones(hours.shape[0], dtype=bool)
        )
        if not keep.any():
            return
        self._rows.add_block(
            racks[keep],
            hours[keep],
            np.column_stack(
                [
                    np.asarray(contention_mean, dtype=np.float64)[keep],
                    np.asarray(discard_bytes, dtype=np.float64)[keep],
                    np.asarray(ingress_bytes, dtype=np.float64)[keep],
                ]
            ),
        )
        tasks = np.asarray(distinct_tasks)[keep]
        shares = np.asarray(dominant_share)[keep]
        coloc = np.asarray(colocated)[keep]
        for index, rack in enumerate(racks[keep]):
            self._static.setdefault(
                str(rack),
                (region, int(tasks[index]), float(shares[index]), bool(coloc[index])),
            )

    def merge(self, other: "RackProfileAccumulator") -> "RackProfileAccumulator":
        if self.hours != other.hours:
            raise AnalysisError("cannot merge profiles with different hour filters")
        self._rows.merge(other._rows)
        for rack, static in other._static.items():
            self._static.setdefault(rack, static)
        return self

    def finalize(self) -> list[RackProfile]:
        racks, _hours, values = self._rows.sorted_rows()
        if racks.size == 0:
            raise AnalysisError("no runs matched the requested hours")
        profiles: list[RackProfile] = []
        boundaries = np.flatnonzero(
            np.concatenate([[True], racks[1:] != racks[:-1]])
        ).tolist() + [racks.size]
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            rack = str(racks[start])
            means = values[start:stop, 0]
            region, tasks, share, coloc = self._static.get(rack, ("", 0, 0.0, False))
            profiles.append(
                RackProfile(
                    rack=rack,
                    region=region,
                    mean_contention=float(means.mean()),
                    min_contention=float(means.min()),
                    max_contention=float(means.max()),
                    runs=int(stop - start),
                    distinct_tasks=tasks,
                    dominant_share=share,
                    colocated=coloc,
                    total_discard_bytes=float(sum(values[start:stop, 1].tolist())),
                    total_ingress_bytes=float(sum(values[start:stop, 2].tolist())),
                )
            )
        return profiles


# -- hourly boxes (Figure 13) ------------------------------------------------


class HourlyBoxAccumulator:
    """Streaming :func:`repro.analysis.diurnal.hourly_box_stats`."""

    def __init__(self, racks: set[str] | None = None) -> None:
        self.racks = set(racks) if racks is not None else None
        self._rows = _RowBlocks(1)

    def add_summary(self, summary) -> None:
        if self.racks is not None and summary.rack not in self.racks:
            return
        self._rows.add_block(
            np.asarray([summary.rack]),
            np.asarray([summary.hour], dtype=np.int64),
            np.asarray([summary.contention.mean], dtype=np.float64),
        )

    def add_columns(
        self, racks: np.ndarray, hours: np.ndarray, contention_mean: np.ndarray
    ) -> None:
        racks = np.asarray(racks)
        hours = np.asarray(hours, dtype=np.int64)
        means = np.asarray(contention_mean, dtype=np.float64)
        if self.racks is not None:
            keep = np.isin(racks, sorted(self.racks))
            racks, hours, means = racks[keep], hours[keep], means[keep]
        if racks.size:
            self._rows.add_block(racks, hours, means)

    def merge(self, other: "HourlyBoxAccumulator") -> "HourlyBoxAccumulator":
        if self.racks != other.racks:
            raise AnalysisError("cannot merge boxes with different rack filters")
        self._rows.merge(other._rows)
        return self

    def finalize(self) -> dict[int, BoxStats]:
        _racks, hours, values = self._rows.sorted_rows()
        if hours.size == 0:
            raise AnalysisError("no runs matched the rack filter")
        result: dict[int, BoxStats] = {}
        for hour in np.unique(hours).tolist():
            result[int(hour)] = BoxStats.from_values(values[hours == hour, 0])
        return result


# -- per-run contention (Figure 15) ------------------------------------------


@dataclass
class RunContentionView:
    """Per-run contention in global run order, split as Figure 15 needs:
    runs with any bursty sample (``mins``/``p90s`` aligned) vs excluded
    zero-p90 runs."""

    total: int
    excluded: int
    mins: np.ndarray
    p90s: np.ndarray


def run_contention_from_summaries(summaries) -> RunContentionView:
    """The in-memory oracle for :class:`RunContentionAccumulator`:
    identical arrays, computed directly from the summary list in its
    native (global) order."""
    active = [s for s in summaries if s.contention.has_activity]
    return RunContentionView(
        total=len(summaries),
        excluded=len(summaries) - len(active),
        mins=np.array([s.contention.min_active for s in active], dtype=np.float64),
        p90s=np.array([s.contention.p90 for s in active], dtype=np.float64),
    )


class RunContentionAccumulator:
    """Streaming collection of each run's (min-active, p90) contention."""

    _VALUE_COLUMNS = 2

    def __init__(self) -> None:
        self._rows = _RowBlocks(self._VALUE_COLUMNS)

    def add_summary(self, summary) -> None:
        self._rows.add_block(
            np.asarray([summary.rack]),
            np.asarray([summary.hour], dtype=np.int64),
            np.asarray(
                [[summary.contention.min_active, summary.contention.p90]],
                dtype=np.float64,
            ),
        )

    def add_columns(
        self, racks: np.ndarray, hours: np.ndarray,
        min_active: np.ndarray, p90: np.ndarray,
    ) -> None:
        self._rows.add_block(
            np.asarray(racks),
            np.asarray(hours, dtype=np.int64),
            np.column_stack(
                [
                    np.asarray(min_active, dtype=np.float64),
                    np.asarray(p90, dtype=np.float64),
                ]
            ),
        )

    def merge(self, other: "RunContentionAccumulator") -> "RunContentionAccumulator":
        self._rows.merge(other._rows)
        return self

    def finalize(self) -> RunContentionView:
        _racks, _hours, values = self._rows.sorted_rows()
        p90s = values[:, 1]
        active = p90s > 0  # ContentionStats.has_activity
        return RunContentionView(
            total=int(values.shape[0]),
            excluded=int((~active).sum()),
            mins=values[active, 0],
            p90s=p90s[active],
        )


# -- per-burst contention/loss (Figure 16) -----------------------------------


@dataclass
class BurstContentionView:
    """Per-burst rows in global order: the inputs of Figure 16."""

    racks: np.ndarray  # rack name per burst
    max_contention: np.ndarray  # int-valued
    lossy: np.ndarray  # bool
    first_loss_contention: np.ndarray  # int-valued, -1 when not lossy


def burst_contention_from_summaries(summaries) -> BurstContentionView:
    """The in-memory oracle for :class:`BurstContentionAccumulator`."""
    racks: list[str] = []
    rows: list[tuple[int, bool, int]] = []
    for summary in summaries:
        for burst in summary.bursts:
            racks.append(summary.rack)
            rows.append((burst.max_contention, burst.lossy, burst.first_loss_contention))
    return BurstContentionView(
        racks=np.asarray(racks, dtype=str),
        max_contention=np.asarray([r[0] for r in rows], dtype=np.int64),
        lossy=np.asarray([r[1] for r in rows], dtype=bool),
        first_loss_contention=np.asarray([r[2] for r in rows], dtype=np.int64),
    )


class BurstContentionAccumulator:
    """Streaming collection of each burst's contention/loss annotation."""

    _VALUE_COLUMNS = 3

    def __init__(self) -> None:
        self._rows = _RowBlocks(self._VALUE_COLUMNS)

    def add_summary(self, summary) -> None:
        if not summary.bursts:
            return
        count = len(summary.bursts)
        self._rows.add_block(
            np.full(count, summary.rack),
            np.full(count, summary.hour, dtype=np.int64),
            np.asarray(
                [
                    [b.max_contention, float(b.lossy), b.first_loss_contention]
                    for b in summary.bursts
                ],
                dtype=np.float64,
            ),
            subs=np.arange(count, dtype=np.int64),
        )

    def add_columns(
        self,
        racks: np.ndarray,
        hours: np.ndarray,
        subs: np.ndarray,
        max_contention: np.ndarray,
        lossy: np.ndarray,
        first_loss_contention: np.ndarray,
    ) -> None:
        racks = np.asarray(racks)
        if racks.size == 0:
            return
        self._rows.add_block(
            racks,
            np.asarray(hours, dtype=np.int64),
            np.column_stack(
                [
                    np.asarray(max_contention, dtype=np.float64),
                    np.asarray(lossy, dtype=np.float64),
                    np.asarray(first_loss_contention, dtype=np.float64),
                ]
            ),
            subs=np.asarray(subs, dtype=np.int64),
        )

    def merge(self, other: "BurstContentionAccumulator") -> "BurstContentionAccumulator":
        self._rows.merge(other._rows)
        return self

    def finalize(self) -> BurstContentionView:
        racks, _hours, values = self._rows.sorted_rows()
        return BurstContentionView(
            racks=racks,
            max_contention=values[:, 0].astype(np.int64),
            lossy=values[:, 1] > 0,
            first_loss_contention=values[:, 2].astype(np.int64),
        )
