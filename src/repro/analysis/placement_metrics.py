"""Candidate placement metrics (Section 9, "Placement algorithms").

The paper: "While the degree of contention is a potential metric to
consider (which we show only loosely correlates with traffic volumes),
the fact that higher contention does not translate to more loss across
workloads indicates the need for more detailed metrics that combine
burst properties and contention."

This module computes three candidate per-rack scores a placement
scheduler could consume, so their predictive power for realized loss
can be compared (the ``implication-placement`` experiment):

* :func:`volume_score` — per-minute ingress bytes (what SNMP counters
  already give a scheduler);
* :func:`contention_score` — average contention (what SyncMillisampler
  newly measures);
* :func:`burst_risk_score` — the combined metric the paper calls for:
  how much of the rack's burst volume arrives in the loss-prone regime
  (contended, mid-length, high fan-in bursts from unadapted senders).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import AnalysisError
from .summary import RunSummary


def volume_score(summaries: list[RunSummary]) -> float:
    """Mean per-minute ingress gigabytes across a rack's runs."""
    if not summaries:
        raise AnalysisError("no runs")
    rates = [
        s.switch_ingress_bytes / s.duration_s * 60 / 1e9
        for s in summaries
        if s.duration_s > 0
    ]
    return float(np.mean(rates)) if rates else 0.0


def contention_score(summaries: list[RunSummary]) -> float:
    """Mean average contention across a rack's runs."""
    if not summaries:
        raise AnalysisError("no runs")
    return float(np.mean([s.contention.mean for s in summaries]))


def burst_risk_score(
    summaries: list[RunSummary],
    length_band_ms: tuple[float, float] = (3.0, 12.0),
    fanin_floor: float = 30.0,
) -> float:
    """Fraction of burst volume in the loss-prone regime.

    Section 8.3 locates losses in contended bursts of intermediate
    length (6-10 ms) with high connection counts (50-60); the band here
    is set slightly wider.  A burst contributes its volume to the risk
    numerator when it is (i) contended, (ii) of intermediate length,
    and (iii) high fan-in — the slow-start incast signature.
    """
    if not summaries:
        raise AnalysisError("no runs")
    risky = 0.0
    total = 0.0
    for summary in summaries:
        ms = summary.sampling_interval / 1e-3
        for burst in summary.bursts:
            total += burst.volume
            length = burst.length * ms
            if (
                burst.contended
                and length_band_ms[0] <= length <= length_band_ms[1]
                and burst.avg_connections >= fanin_floor
            ):
                risky += burst.volume
    return risky / total if total else 0.0


def realized_loss(summaries: list[RunSummary]) -> float:
    """Ground truth: the rack's lossy-burst fraction."""
    bursts = sum(len(s.bursts) for s in summaries)
    lossy = sum(1 for s in summaries for b in s.bursts if b.lossy)
    return lossy / bursts if bursts else 0.0


def score_racks(
    summaries: list[RunSummary],
) -> dict[str, dict[str, float]]:
    """All candidate scores plus realized loss, per rack."""
    grouped: dict[str, list[RunSummary]] = defaultdict(list)
    for summary in summaries:
        grouped[summary.rack].append(summary)
    if not grouped:
        raise AnalysisError("no runs to score")
    return {
        rack: {
            "volume": volume_score(runs),
            "contention": contention_score(runs),
            "burst_risk": burst_risk_score(runs),
            "realized_loss": realized_loss(runs),
        }
        for rack, runs in grouped.items()
    }


def rank_correlation(x: list[float], y: list[float]) -> float:
    """Spearman rank correlation (scipy-free, ties by average rank)."""
    if len(x) != len(y) or len(x) < 3:
        raise AnalysisError("rank correlation needs >= 3 aligned samples")

    def ranks(values: list[float]) -> np.ndarray:
        array = np.asarray(values, dtype=np.float64)
        order = np.argsort(array, kind="stable")
        rank = np.empty(len(array))
        rank[order] = np.arange(len(array), dtype=np.float64)
        # average ties
        for value in np.unique(array):
            mask = array == value
            if mask.sum() > 1:
                rank[mask] = rank[mask].mean()
        return rank

    rx, ry = ranks(x), ranks(y)
    if rx.std() == 0 or ry.std() == 0:
        return 0.0
    return float(np.corrcoef(rx, ry)[0, 1])
