"""Task-placement analysis (Figures 10 and 11).

Works off the placement facts each run carries in ``extras`` —
host-side collection travels with service context (Section 1), so the
analysis pipeline sees task identities without a side channel.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .racks import RackProfile


def task_diversity(profiles: list[RackProfile]) -> np.ndarray:
    """Distinct task counts across racks (Figure 10's distribution)."""
    if not profiles:
        raise AnalysisError("no rack profiles")
    return np.array([profile.distinct_tasks for profile in profiles], dtype=np.float64)


def dominant_share_by_rack(
    profiles: list[RackProfile],
) -> tuple[np.ndarray, np.ndarray]:
    """Dominant-task share per rack, sorted by rack contention.

    Returns (rack ids 0..N-1 ordered by mean contention, dominant task
    share as a percentage) — exactly Figure 11's axes, where the left
    of the x-axis is the least contended rack.
    """
    if not profiles:
        raise AnalysisError("no rack profiles")
    ordered = sorted(profiles, key=lambda profile: profile.mean_contention)
    shares = np.array([profile.dominant_share * 100.0 for profile in ordered])
    ids = np.arange(len(ordered), dtype=np.int64)
    return ids, shares
