"""Contention metrics (Sections 5, 7).

Contention is "the number of servers that are simultaneously bursty
during each 1 ms data point of the run".  This module computes the
per-run contention series and the statistics the paper reports: the
average, the minimum over active samples, the 90th percentile, and the
dynamic-threshold buffer share implied by each (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..config import BufferConfig
from ..core.run import SyncRun
from ..errors import AnalysisError


def contention_series(
    sync_run: SyncRun, threshold: float = units.BURST_UTILIZATION_THRESHOLD
) -> np.ndarray:
    """Per-bucket contention for a rack run."""
    return sync_run.contention_series(threshold)


@dataclass(frozen=True)
class ContentionStats:
    """Per-run contention summary."""

    mean: float  # average over every sample of the run
    min_active: float  # minimum over samples with >= 1 bursty server
    p90: float  # 90th percentile over every sample
    max: float
    frac_zero: float  # fraction of samples with no bursty server

    @property
    def has_activity(self) -> bool:
        """Whether the run had any bursty sample at all.  Section 7.3
        excludes the 6.2% of runs whose p90 contention is zero."""
        return self.p90 > 0


def contention_stats(series: np.ndarray) -> ContentionStats:
    """Summarize one run's contention series."""
    array = np.asarray(series, dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("empty contention series")
    active = array[array >= 1]
    return ContentionStats(
        mean=float(array.mean()),
        min_active=float(active.min()) if active.size else 0.0,
        p90=float(np.percentile(array, 90)),
        max=float(array.max()),
        frac_zero=float((array == 0).mean()),
    )


def buffer_share(contention: float, config: BufferConfig | None = None) -> float:
    """Fraction of the shared buffer one queue may hold at a contention
    level, from the dynamic-threshold fixed point (Section 2.1.2):

        T / B = alpha / (1 + alpha * S)

    ``contention`` is S, the number of simultaneously bursty servers;
    S = 0 or 1 both mean an uncontended queue (S is floored at 1, since
    the bursting queue itself is active).
    """
    config = config or BufferConfig()
    if contention < 0:
        raise AnalysisError("contention cannot be negative")
    active = max(1.0, float(contention))
    return config.alpha / (1.0 + config.alpha * active)


def buffer_share_drop(
    min_contention: float, p90_contention: float, config: BufferConfig | None = None
) -> float:
    """Relative drop in per-queue buffer share between a run's calmest
    and busiest (p90) moments — Figure 15(b)'s metric.

    A run whose contention moves from 1 to 2 sees its share fall from
    B/2 to B/3: a 33.3% drop from peak.
    """
    if p90_contention < min_contention:
        raise AnalysisError("p90 contention cannot be below the minimum")
    best = buffer_share(min_contention, config)
    worst = buffer_share(p90_contention, config)
    if best == 0:
        return 0.0
    return (best - worst) / best
