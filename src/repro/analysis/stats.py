"""Statistical helpers: CDFs, percentiles, box statistics.

Everything the figures need, in one place, with consistent conventions:
CDF y-values are *percentages* (0-100), matching the paper's axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


def cdf(values: np.ndarray | list) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative percentage).

    ``plot(x, y)`` of the result reproduces the paper's "% of X" axes.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("cannot build a CDF of nothing")
    ordered = np.sort(array)
    percent = np.arange(1, ordered.size + 1) / ordered.size * 100.0
    return ordered, percent


def percentile(values: np.ndarray | list, q: float) -> float:
    """The q-th percentile (q in [0, 100])."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("cannot take a percentile of nothing")
    if not 0 <= q <= 100:
        raise AnalysisError("percentile must be in [0, 100]")
    return float(np.percentile(array, q))


def cdf_value_at(values: np.ndarray | list, threshold: float) -> float:
    """Fraction (0-100%) of values <= ``threshold``."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("cannot evaluate a CDF of nothing")
    return float((array <= threshold).mean() * 100.0)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary for box plots (Figure 13)."""

    low_whisker: float
    q1: float
    median: float
    q3: float
    high_whisker: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values: np.ndarray | list) -> "BoxStats":
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise AnalysisError("cannot summarize nothing")
        q1, median, q3 = np.percentile(array, [25, 50, 75])
        iqr = q3 - q1
        low = float(array[array >= q1 - 1.5 * iqr].min())
        high = float(array[array <= q3 + 1.5 * iqr].max())
        return cls(
            low_whisker=low,
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            high_whisker=high,
            mean=float(array.mean()),
            count=int(array.size),
        )


def box_stats(values: np.ndarray | list) -> BoxStats:
    """Convenience wrapper over :meth:`BoxStats.from_values`."""
    return BoxStats.from_values(values)


def bucket_means(
    x: np.ndarray | list, y: np.ndarray | list, edges: np.ndarray | list
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group ``y`` by which ``edges``-bucket ``x`` falls into.

    Returns (bucket centers, mean of y per bucket, count per bucket);
    empty buckets yield NaN means.  Used by the scatter-to-trend
    figures (14, 16, 18, 19).
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    edge_arr = np.asarray(edges, dtype=np.float64)
    if x_arr.shape != y_arr.shape:
        raise AnalysisError("x and y must align")
    if edge_arr.size < 2:
        raise AnalysisError("need at least two bucket edges")
    indices = np.digitize(x_arr, edge_arr) - 1
    buckets = edge_arr.size - 1
    means = np.full(buckets, np.nan)
    counts = np.zeros(buckets, dtype=np.int64)
    for b in range(buckets):
        mask = indices == b
        counts[b] = int(mask.sum())
        if counts[b] > 0:
            means[b] = float(y_arr[mask].mean())
    centers = 0.5 * (edge_arr[:-1] + edge_arr[1:])
    return centers, means, counts


def pearson_correlation(x: np.ndarray | list, y: np.ndarray | list) -> float:
    """Pearson's r, guarding degenerate inputs."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.size != y_arr.size or x_arr.size < 2:
        raise AnalysisError("correlation needs two aligned samples of size >= 2")
    if np.std(x_arr) == 0 or np.std(y_arr) == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])
