"""Rack-level aggregation and classification (Section 7.1, 8.1).

The paper splits RegA's bimodal distribution into **RegA-High** (the
~20% of racks with busy-hour average contention above ~7.5, all dense
ML placements) and **RegA-Typical** (the rest).  Classification here
uses a contention threshold on the busy-hour (or whole-day) per-rack
average, with the paper's gap — the distribution is bimodal, so any
threshold inside the gap yields the same split.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .summary import RunSummary


class RackClass(enum.Enum):
    """The paper's two RegA rack classes (Section 7.1)."""

    TYPICAL = "RegA-Typical"
    HIGH = "RegA-High"


#: Default split point: inside the bimodal gap (paper: 75% of racks
#: below 2.2, top 20% above 7.5 during the busy hour).
DEFAULT_CONTENTION_SPLIT = 4.5


@dataclass
class RackProfile:
    """Per-rack aggregates across its runs."""

    rack: str
    region: str
    mean_contention: float
    min_contention: float  # min over runs of per-run average
    max_contention: float  # max over runs of per-run average
    runs: int
    distinct_tasks: int
    dominant_share: float
    colocated: bool
    total_discard_bytes: float
    total_ingress_bytes: float

    @property
    def contention_range(self) -> float:
        return self.max_contention - self.min_contention

    @property
    def normalized_discards(self) -> float:
        """Discarded bytes per ingress byte (Figure 17's metric)."""
        if self.total_ingress_bytes == 0:
            return 0.0
        return self.total_discard_bytes / self.total_ingress_bytes


def rack_profiles(
    summaries: list[RunSummary], hours: set[int] | None = None
) -> list[RackProfile]:
    """Aggregate run summaries per rack, optionally restricted to hours
    (e.g. the busy hour for Figure 9)."""
    grouped: dict[str, list[RunSummary]] = defaultdict(list)
    for summary in summaries:
        if hours is not None and summary.hour not in hours:
            continue
        grouped[summary.rack].append(summary)
    if not grouped:
        raise AnalysisError("no runs matched the requested hours")

    profiles: list[RackProfile] = []
    for rack, runs in sorted(grouped.items()):
        means = np.array([run.contention.mean for run in runs])
        first = runs[0]
        profiles.append(
            RackProfile(
                rack=rack,
                region=first.region,
                mean_contention=float(means.mean()),
                min_contention=float(means.min()),
                max_contention=float(means.max()),
                runs=len(runs),
                distinct_tasks=int(first.extras.get("distinct_tasks", 0)),
                dominant_share=float(first.extras.get("dominant_share", 0.0)),
                colocated=bool(first.extras.get("colocated", False)),
                total_discard_bytes=float(
                    sum(run.switch_discard_bytes for run in runs)
                ),
                total_ingress_bytes=float(
                    sum(run.switch_ingress_bytes for run in runs)
                ),
            )
        )
    return profiles


def classify_racks(
    profiles: list[RackProfile],
    split: float = DEFAULT_CONTENTION_SPLIT,
) -> dict[RackClass, list[RackProfile]]:
    """Split rack profiles into Typical/High by mean contention."""
    if not profiles:
        raise AnalysisError("no rack profiles to classify")
    result: dict[RackClass, list[RackProfile]] = {
        RackClass.TYPICAL: [],
        RackClass.HIGH: [],
    }
    for profile in profiles:
        bucket = RackClass.HIGH if profile.mean_contention >= split else RackClass.TYPICAL
        result[bucket].append(profile)
    return result


def classify_run(
    summary: RunSummary,
    high_racks: set[str],
) -> RackClass:
    """Class of the rack a run belongs to, given the rack-level split."""
    return RackClass.HIGH if summary.rack in high_racks else RackClass.TYPICAL
