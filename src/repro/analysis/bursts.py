"""Burst detection and per-burst properties (Sections 5, 6, 8).

A burst is "any consecutive set of one or more sample data points that
exceeds 50% of line rate" on ingress.  Each burst is annotated with the
properties the joint analysis needs: length, volume, average
connection count, the maximum contention over its lifetime, whether it
was contended at all, and whether it was lossy (retransmissions
observed within an RTT after the loss — in practice, retransmitted
bytes arriving during the burst or in the following buckets,
Section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..core.run import MillisamplerRun, SyncRun
from ..errors import AnalysisError


@dataclass
class Burst:
    """One detected burst on one server."""

    server: int  # index within the SyncRun
    start: int  # first bucket of the burst
    length: int  # buckets
    volume: float  # ingress bytes
    avg_connections: float
    retx_bytes: float = 0.0
    max_contention: int = 0
    lossy: bool = False
    #: Contention at the (approximate) time of the burst's first loss:
    #: the bucket where retransmitted bytes first appear, minus the
    #: repair lag.  The paper's alternate Section 8 methodology; -1
    #: when the burst is not lossy.
    first_loss_contention: int = -1

    @property
    def end(self) -> int:
        """One past the last bucket."""
        return self.start + self.length

    @property
    def contended(self) -> bool:
        """The burst saw at least one other simultaneously bursty server
        at some point in its lifetime (Section 6)."""
        return self.max_contention >= 2

    def length_ms(self, sampling_interval: float = units.ANALYSIS_INTERVAL) -> float:
        return self.length * sampling_interval / units.MSEC


def _mask_segments(mask: np.ndarray) -> list[tuple[int, int]]:
    """(start, end) pairs of consecutive-True segments."""
    if mask.size == 0:
        return []
    padded = np.concatenate([[False], mask, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    return [(int(changes[i]), int(changes[i + 1])) for i in range(0, len(changes), 2)]


def detect_bursts(
    run: MillisamplerRun,
    threshold: float = units.BURST_UTILIZATION_THRESHOLD,
    loss_lag_buckets: int = 2,
    server: int = 0,
) -> list[Burst]:
    """Detect bursts in one server's run and annotate loss.

    ``loss_lag_buckets`` extends the retransmission-observation window
    past the end of the burst: retransmissions repair a loss roughly an
    RTT after it happened, so a burst's losses surface slightly later
    (Section 4.6: "our analysis must look for retransmissions that
    occur an RTT later").  The window is clipped at the next burst's
    first bucket — when two bursts sit closer together than the lag, an
    unclipped window would sweep up the next burst's retransmissions,
    double-counting the bytes and marking both bursts lossy from one
    loss event.
    """
    if loss_lag_buckets < 0:
        raise AnalysisError("loss lag cannot be negative")
    mask = run.bursty_mask(threshold)
    bursts: list[Burst] = []
    segments = _mask_segments(mask)
    for index, (start, end) in enumerate(segments):
        window_end = min(end + loss_lag_buckets, run.buckets)
        if index + 1 < len(segments):
            window_end = min(window_end, segments[index + 1][0])
        retx = float(run.in_retx_bytes[start:window_end].sum())
        bursts.append(
            Burst(
                server=server,
                start=start,
                length=end - start,
                volume=float(run.in_bytes[start:end].sum()),
                avg_connections=float(run.conn_estimate[start:end].mean()),
                retx_bytes=retx,
                lossy=retx > 0,
            )
        )
    return bursts


def annotate_contention(
    burst: Burst,
    run: MillisamplerRun,
    contention: np.ndarray,
    loss_lag_buckets: int = 2,
) -> None:
    """Attach both of Section 8's contention views to a burst.

    The primary methodology takes the *maximum* contention over the
    burst's lifetime; the alternate associates a lossy burst with the
    contention at its *first loss* — approximated as the first bucket
    with retransmitted bytes, shifted back by the repair lag ("bursts
    tend to see slightly lower contention levels at the time of their
    first loss", Section 8).
    """
    burst.max_contention = int(contention[burst.start : burst.end].max())
    if not burst.lossy:
        burst.first_loss_contention = -1
        return
    window_end = min(burst.end + loss_lag_buckets, run.buckets)
    retx_window = run.in_retx_bytes[burst.start : window_end]
    first_retx = burst.start + int(np.argmax(retx_window > 0))
    loss_bucket = max(first_retx - loss_lag_buckets, burst.start)
    loss_bucket = min(loss_bucket, burst.end - 1)
    burst.first_loss_contention = int(contention[loss_bucket])


def detect_run_bursts(
    sync_run: SyncRun,
    threshold: float = units.BURST_UTILIZATION_THRESHOLD,
    loss_lag_buckets: int = 2,
) -> list[Burst]:
    """Detect bursts across every server of a rack run and annotate each
    with the maximum contention over its lifetime (Section 8
    methodology: "we consider the contention level at each sample point
    of the burst, and take the maximum")."""
    contention = sync_run.contention_series(threshold)
    bursts: list[Burst] = []
    for index, run in enumerate(sync_run.runs):
        for burst in detect_bursts(run, threshold, loss_lag_buckets, server=index):
            annotate_contention(burst, run, contention, loss_lag_buckets)
            bursts.append(burst)
    return bursts


def burst_frequency(bursts: list[Burst], duration_s: float) -> float:
    """Bursts per second over a run (Figure 6's metric)."""
    if duration_s <= 0:
        raise AnalysisError("duration must be positive")
    return len(bursts) / duration_s


def bursty_fraction_of_bytes(run: MillisamplerRun, bursts: list[Burst]) -> float:
    """Fraction of a run's ingress bytes carried inside bursts
    (Section 5: 49.7% fleet-wide)."""
    total = float(run.in_bytes.sum())
    if total == 0:
        return 0.0
    in_bursts = sum(burst.volume for burst in bursts)
    return in_bursts / total
