"""Diurnal aggregation (Figures 12 and 13).

Groups per-run contention by hour of day, producing the hourly box
statistics of Figure 13 and the per-rack across-day mean/min/max bands
of Figure 12.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import AnalysisError
from .stats import BoxStats
from .summary import RunSummary


def hourly_box_stats(
    summaries: list[RunSummary], racks: set[str] | None = None
) -> dict[int, BoxStats]:
    """Box statistics of per-run average contention, per hour.

    ``racks`` restricts to a rack group (e.g. RegA-High for Figure 13
    top); hours with no runs are absent from the result.
    """
    grouped: dict[int, list[float]] = defaultdict(list)
    for summary in summaries:
        if racks is not None and summary.rack not in racks:
            continue
        grouped[summary.hour].append(summary.contention.mean)
    if not grouped:
        raise AnalysisError("no runs matched the rack filter")
    return {hour: BoxStats.from_values(values) for hour, values in sorted(grouped.items())}


def hourly_means(
    summaries: list[RunSummary], racks: set[str] | None = None
) -> dict[int, float]:
    """Mean per-run average contention, per hour."""
    return {
        hour: stats.mean for hour, stats in hourly_box_stats(summaries, racks).items()
    }


def peak_window_increase(
    means: dict[int, float], window: tuple[int, int] = (4, 10)
) -> float:
    """Relative contention increase inside an hour window versus outside
    (Section 7.2: 27.6% between hours 4 and 10 for RegA-High)."""
    if not means:
        raise AnalysisError("no hourly means")
    inside = [value for hour, value in means.items() if window[0] <= hour <= window[1]]
    outside = [value for hour, value in means.items() if not window[0] <= hour <= window[1]]
    if not inside or not outside:
        raise AnalysisError("window leaves one side empty")
    outside_mean = float(np.mean(outside))
    if outside_mean == 0:
        return 0.0
    return (float(np.mean(inside)) - outside_mean) / outside_mean
