"""Per-run reduction: everything the fleet-scale figures need, without
keeping raw sample series in memory.

A full day of the paper's data is 8.16 billion samples; the analyses
all operate on per-run aggregates (burst records, contention
statistics, utilization summaries).  :func:`summarize_run` computes
those once per :class:`~repro.core.run.SyncRun`, letting the dataset
generator discard the raw series immediately — the same
reduce-then-aggregate shape a production pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from .. import units
from ..core.run import SyncRun
from ..errors import AnalysisError
from .bursts import Burst, annotate_contention, detect_bursts
from .contention import ContentionStats, contention_stats


@dataclass
class ServerRunStats:
    """Per-server-run aggregates (the unit of Figures 6 and 8)."""

    server: int
    task: str
    bursty: bool  # had at least one burst
    avg_utilization: float
    utilization_in_bursts: float  # NaN when no bursts
    utilization_outside_bursts: float
    bursts_per_second: float
    conns_inside: float  # mean connection estimate inside bursts (NaN if none)
    conns_outside: float
    total_in_bytes: float
    in_burst_bytes: float


@dataclass
class RunSummary:
    """Everything the experiments keep about one rack run."""

    rack: str
    region: str
    hour: int
    servers: int
    buckets: int
    sampling_interval: float
    contention: ContentionStats
    bursts: list[Burst]
    server_stats: list[ServerRunStats]
    switch_discard_bytes: float
    switch_ingress_bytes: float
    extras: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.buckets * self.sampling_interval

    @property
    def total_in_bytes(self) -> float:
        return sum(stat.total_in_bytes for stat in self.server_stats)

    def bursty_server_runs(self) -> int:
        return sum(1 for stat in self.server_stats if stat.bursty)


def summarize_run(
    sync_run: SyncRun,
    threshold: float = units.BURST_UTILIZATION_THRESHOLD,
    loss_lag_buckets: int = 2,
) -> RunSummary:
    """Reduce one rack run to its :class:`RunSummary`."""
    if sync_run.buckets == 0:
        raise AnalysisError("cannot summarize an empty run")
    contention = sync_run.contention_series(threshold)
    stats = contention_stats(contention)
    duration = sync_run.duration

    all_bursts: list[Burst] = []
    server_stats: list[ServerRunStats] = []
    for index, run in enumerate(sync_run.runs):
        bursts = detect_bursts(run, threshold, loss_lag_buckets, server=index)
        for burst in bursts:
            annotate_contention(burst, run, contention, loss_lag_buckets)
        all_bursts.extend(bursts)

        utilization = run.ingress_utilization()
        mask = run.bursty_mask(threshold)
        inside = utilization[mask]
        outside = utilization[~mask]
        conns = run.conn_estimate
        total_in = float(run.in_bytes.sum())
        in_burst = float(run.in_bytes[mask].sum())
        server_stats.append(
            ServerRunStats(
                server=index,
                task=run.meta.task,
                bursty=bool(mask.any()),
                avg_utilization=float(utilization.mean()),
                utilization_in_bursts=float(inside.mean()) if inside.size else float("nan"),
                utilization_outside_bursts=(
                    float(outside.mean()) if outside.size else float("nan")
                ),
                bursts_per_second=len(bursts) / duration,
                conns_inside=float(conns[mask].mean()) if mask.any() else float("nan"),
                conns_outside=float(conns[~mask].mean()) if (~mask).any() else float("nan"),
                total_in_bytes=total_in,
                in_burst_bytes=in_burst,
            )
        )

    return RunSummary(
        rack=sync_run.rack,
        region=sync_run.region,
        hour=sync_run.hour,
        servers=sync_run.servers,
        buckets=sync_run.buckets,
        sampling_interval=sync_run.sampling_interval,
        contention=stats,
        bursts=all_bursts,
        server_stats=server_stats,
        switch_discard_bytes=sync_run.switch_discard_bytes,
        switch_ingress_bytes=sync_run.switch_ingress_bytes,
        extras=dict(sync_run.extras),
    )
