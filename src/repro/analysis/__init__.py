"""The paper's analysis pipeline (Sections 5-8).

Operates on :class:`~repro.core.run.SyncRun` objects regardless of
whether they came from the packet-level simulator or the fleet fluid
model.  The heavy lifting happens once per run in
:func:`~repro.analysis.summary.summarize_run`; experiments then
aggregate lightweight :class:`~repro.analysis.summary.RunSummary`
records — mirroring how a production pipeline reduces raw samples
before fleet-wide analysis.
"""

from .stats import cdf, percentile, box_stats, BoxStats
from .bursts import (
    Burst,
    annotate_contention,
    burst_frequency,
    detect_bursts,
    detect_run_bursts,
)
from .contention import (
    contention_series,
    ContentionStats,
    contention_stats,
    buffer_share,
    buffer_share_drop,
)
from .summary import RunSummary, ServerRunStats, summarize_run
from .racks import RackClass, RackProfile, classify_racks, rack_profiles
from .tasks import task_diversity, dominant_share_by_rack
from .diurnal import hourly_box_stats, hourly_means

__all__ = [
    "cdf",
    "percentile",
    "box_stats",
    "BoxStats",
    "Burst",
    "annotate_contention",
    "detect_bursts",
    "detect_run_bursts",
    "burst_frequency",
    "contention_series",
    "ContentionStats",
    "contention_stats",
    "buffer_share",
    "buffer_share_drop",
    "RunSummary",
    "ServerRunStats",
    "summarize_run",
    "RackClass",
    "RackProfile",
    "classify_racks",
    "rack_profiles",
    "task_diversity",
    "dominant_share_by_rack",
    "hourly_box_stats",
    "hourly_means",
]
