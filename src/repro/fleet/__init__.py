"""Region-scale fluid model: the production-dataset substitute.

Packet-level simulation of 8 billion samples is infeasible, so this
package synthesizes SyncMillisampler datasets with a vectorized fluid
model at 1 ms resolution (see DESIGN.md, "Substitutions").  The model
preserves the mechanisms the paper's findings rest on:

* per-server ON/OFF burst arrival processes shaped by task placement
  and diurnal load (:mod:`repro.fleet.demand`);
* Choudhury-Hahne dynamic-threshold buffer sharing inside each ToR
  quadrant, ECN marking at the static threshold, and loss on overflow
  (:mod:`repro.fleet.buffermodel`);
* fluid DCTCP source adaptation with service-dependent sender
  persistence — the stable-vs-variable-contention mechanism behind the
  Section 8.1 loss inversion (also :mod:`repro.fleet.buffermodel`);
* sketch-noise on connection counts, and assembly into the same
  :class:`~repro.core.run.SyncRun` objects the packet-level pipeline
  produces (:mod:`repro.fleet.rackrun`);
* full day/region dataset generation (:mod:`repro.fleet.dataset`).
"""

from .buffermodel import FluidBufferModel, FluidBufferResult
from .cache import DatasetCache, dataset_cache_key, default_cache_dir
from .demand import DemandModel, ServerDemand
from .rackrun import RackRunSynthesizer
from .dataset import (
    DatasetSummary,
    RackDay,
    RackRunPlan,
    RegionDataset,
    generate_region_dataset,
    generate_paper_dataset,
    plan_region,
    synthesize_rack_day,
)
from .parallel import generate_region_dataset_parallel, resolve_jobs

__all__ = [
    "FluidBufferModel",
    "FluidBufferResult",
    "DemandModel",
    "ServerDemand",
    "RackRunSynthesizer",
    "DatasetCache",
    "DatasetSummary",
    "RackDay",
    "RackRunPlan",
    "RegionDataset",
    "dataset_cache_key",
    "default_cache_dir",
    "generate_region_dataset",
    "generate_paper_dataset",
    "generate_region_dataset_parallel",
    "plan_region",
    "resolve_jobs",
    "synthesize_rack_day",
]
