"""Synthesize SyncMillisampler rack runs from the fluid model.

Output is byte-for-byte the same :class:`~repro.core.run.SyncRun`
structure the packet-level pipeline produces, so the entire analysis
stack is agnostic to which substrate generated the data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import units
from ..config import DEFAULT_POLICY_SPEC, PolicySpec
from ..core.run import MillisamplerRun, RunMetadata, SyncRun
from ..core.sketch import SATURATION_ESTIMATE, SKETCH_BITS
from ..errors import SimulationError
from ..obs.metrics import Metrics
from ..workload.region import RackWorkload
from .buffermodel import FluidBufferModel, FluidBufferResult
from .demand import DemandModel, ServerDemand
from .kernels import POLICY_FALLBACK_COUNTER, consume_pending, warm_kernels
from .policies import SharingPolicy, build_policy

#: One entry of a synthesis batch: (workload, hour, rng-or-seed-leaf).
BatchItem = tuple[RackWorkload, int, "np.random.Generator | np.random.SeedSequence"]


def sketch_estimates(true_counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply 128-bit-sketch estimation noise to true connection counts.

    Each of ``n`` flows independently occupies one of 128 bits, so the
    number of zero bits is approximately Binomial(128, (1-1/128)^n);
    the linear-counting estimate is ``128 * ln(128 / zeros)``, and a
    full bitmap reports the saturation value (Section 4.2: "precise up
    to a dozen connections and saturates at around 500").
    """
    counts = np.asarray(true_counts, dtype=np.float64)
    p_zero = (1.0 - 1.0 / SKETCH_BITS) ** counts
    zeros = rng.binomial(SKETCH_BITS, p_zero)
    estimates = np.where(
        zeros == 0,
        float(SATURATION_ESTIMATE),
        SKETCH_BITS * np.log(SKETCH_BITS / np.maximum(zeros, 1)),
    )
    return estimates


class RackRunSynthesizer:
    """Generates :class:`SyncRun` objects for rack workloads."""

    def __init__(
        self,
        demand_model: DemandModel | None = None,
        sampling_interval: float = units.ANALYSIS_INTERVAL,
        nominal_buckets: int = units.MILLISAMPLER_BUCKETS,
        trimmed_buckets_mean: int = 1850,
        trimmed_buckets_std: int = 40,
        egress_echo: float = 0.18,
        policy: PolicySpec | None = None,
        kernel: str = "auto",
    ) -> None:
        if trimmed_buckets_mean <= 0:
            raise SimulationError("run length must be positive")
        self.demand_model = demand_model or DemandModel(step=sampling_interval)
        self.sampling_interval = sampling_interval
        self.nominal_buckets = nominal_buckets
        self.trimmed_buckets_mean = trimmed_buckets_mean
        self.trimmed_buckets_std = trimmed_buckets_std
        self.egress_echo = egress_echo
        #: Buffer-sharing policy spec every synthesized run's fluid
        #: model is built from.  The default DT spec is normalized to
        #: None so the fluid model applies its own default — DT at each
        #: rack's configured alpha — which is bit-identical to the
        #: pre-policy-axis synthesizer.  The spec (not a live policy) is
        #: stored because synthesizers cross process boundaries pickled.
        self.policy = (
            policy if policy is not None and policy != DEFAULT_POLICY_SPEC else None
        )
        #: Fluid-kernel setting (:data:`repro.config.KERNEL_CHOICES`)
        #: forwarded to every fluid model this synthesizer builds.  The
        #: string (not the resolved choice) is stored so pickled
        #: synthesizers re-resolve numba availability in each worker.
        self.kernel = kernel

    def _run_length(self, rng: np.random.Generator) -> int:
        """Post-trim run length (Section 5: average 1.85 s at 1 ms)."""
        length = int(rng.normal(self.trimmed_buckets_mean, self.trimmed_buckets_std))
        return int(np.clip(length, 100, self.nominal_buckets))

    def synthesize(
        self,
        workload: RackWorkload,
        hour: int,
        rng: np.random.Generator | np.random.SeedSequence,
        start_time: float = 0.0,
        buckets: int | None = None,
    ) -> SyncRun:
        """One SyncMillisampler run for ``workload``'s rack at ``hour``.

        ``rng`` may be a ready generator or a ``SeedSequence`` leaf of
        the dataset's seed-stream tree (see :mod:`repro.fleet.dataset`);
        passing the leaf keeps the run independent of every other run,
        which is what allows rack runs to be synthesized in isolation
        (in parallel workers, or one-off for debugging).
        """
        if isinstance(rng, np.random.SeedSequence):
            rng = np.random.default_rng(rng)
        if not 0 <= hour < 24:
            raise SimulationError("hour must be in [0, 24)")
        buckets = buckets if buckets is not None else self._run_length(rng)
        servers = workload.placement.servers
        line_rate = workload.rack_config.server_link_rate

        demand = self.demand_model.generate(workload, hour, buckets, rng)
        fluid = self._fluid_model(workload)
        result = fluid.run(
            demand.demand,
            demand.persistence,
            demand.initial_multiplier,
            demand.initial_alpha,
        )
        return self._assemble(workload, hour, rng, demand, result, buckets, start_time)

    def _fluid_model(self, workload: RackWorkload) -> FluidBufferModel:
        model = FluidBufferModel(
            servers=workload.placement.servers,
            buffer_config=workload.rack_config.buffer,
            line_rate=workload.rack_config.server_link_rate,
            step=self.sampling_interval,
            policy=self._policy_for(workload),
            kernel=getattr(self, "kernel", "auto"),
        )
        if model.effective_kernel == "native":
            # Idempotent: a no-op after the pool initializer (or the
            # first model) already compiled in this process.
            warm_kernels()
        return model

    def _policy_for(self, workload: RackWorkload) -> SharingPolicy | None:
        """Build the configured policy for one rack's geometry.

        Queue-count-partitioning policies get the rack's queues per
        quadrant (servers round-robined over the quadrants, as the
        fluid model and the switch assign them).
        """
        if self.policy is None:
            return None
        servers = workload.placement.servers
        num_quadrants = min(units.NUM_QUADRANTS, servers)
        return build_policy(
            self.policy, queues_per_quadrant=-(-servers // num_quadrants)
        )

    def _assemble(
        self,
        workload: RackWorkload,
        hour: int,
        rng: np.random.Generator,
        demand: ServerDemand,
        result: FluidBufferResult,
        buckets: int,
        start_time: float,
    ) -> SyncRun:
        """Turn one run's fluid outputs into a :class:`SyncRun`.

        Consumes this run's remaining RNG draws (sketch noise, egress
        echo) in the same order as the pre-batch serial path, so batched
        and serial synthesis are byte-identical per seed leaf.
        """
        servers = workload.placement.servers
        line_rate = workload.rack_config.server_link_rate
        conn = sketch_estimates(demand.connections, rng)
        out_bytes = self.egress_echo * result.delivered * rng.lognormal(
            mean=-0.05, sigma=0.3, size=result.delivered.shape
        )

        runs: list[MillisamplerRun] = []
        for index in range(servers):
            meta = RunMetadata(
                host=f"{workload.rack}-s{index}",
                rack=workload.rack,
                region=workload.region,
                task=workload.placement.tasks[index],
                start_time=start_time,
                sampling_interval=self.sampling_interval,
                line_rate=line_rate,
            )
            runs.append(
                MillisamplerRun(
                    meta=meta,
                    in_bytes=result.delivered[:, index].copy(),
                    out_bytes=out_bytes[:, index].copy(),
                    in_retx_bytes=result.delivered_retx[:, index].copy(),
                    out_retx_bytes=np.zeros(buckets),
                    in_ecn_bytes=result.ecn_marked[:, index].copy(),
                    conn_estimate=conn[:, index].copy(),
                )
            )

        return SyncRun(
            rack=workload.rack,
            region=workload.region,
            runs=runs,
            hour=hour,
            switch_discard_bytes=result.total_dropped,
            switch_ingress_bytes=float(demand.demand.sum()),
            extras={
                "colocated": workload.colocated,
                "distinct_tasks": workload.placement.distinct_tasks(),
                "dominant_share": workload.placement.dominant_share(),
                "dominant_task": workload.placement.dominant_task(),
            },
        )

    def synthesize_batch(
        self,
        items: Sequence[BatchItem],
        start_time: float = 0.0,
        metrics: Metrics | None = None,
    ) -> list[SyncRun]:
        """Synthesize many rack runs through one batched fluid pass.

        ``items`` is a sequence of ``(workload, hour, rng)`` triples —
        the same arguments :meth:`synthesize` takes.  Each item keeps
        its own RNG (normally its ``SeedSequence`` leaf of the dataset's
        stream tree), and all RNG-consuming stages (run length, demand,
        sketch noise, egress echo) run per item in the serial order;
        only the RNG-free fluid step is batched, over groups of items
        that share a rack profile (server count, link rate, buffer
        config).  The returned runs are byte-identical to calling
        :meth:`synthesize` per item.

        ``metrics`` records where synthesis time goes, as
        ``synthesis/demand``, ``synthesis/fluid`` and
        ``synthesis/assemble`` timers.
        """
        metrics = metrics if metrics is not None else Metrics()

        # Phase 1 — per-run RNG work: run lengths and demand synthesis.
        prepared = []
        with metrics.span("synthesis/demand"):
            for workload, hour, rng in items:
                if isinstance(rng, np.random.SeedSequence):
                    rng = np.random.default_rng(rng)
                if not 0 <= hour < 24:
                    raise SimulationError("hour must be in [0, 24)")
                buckets = self._run_length(rng)
                demand = self.demand_model.generate(workload, hour, buckets, rng)
                prepared.append((workload, hour, rng, buckets, demand))

        # Phase 2 — one vectorized fluid pass per rack profile.
        groups: dict[tuple, list[int]] = {}
        for index, (workload, _, _, _, _) in enumerate(prepared):
            key = (
                workload.placement.servers,
                workload.rack_config.server_link_rate,
                workload.rack_config.buffer,
            )
            groups.setdefault(key, []).append(index)

        fluid_results: list[FluidBufferResult | None] = [None] * len(prepared)
        with metrics.span("synthesis/fluid"):
            for member_indices in groups.values():
                model = self._fluid_model(prepared[member_indices[0]][0])
                # Which kernel actually ran, next to the span's timing.
                metrics.incr(f"synthesis.fluid.kernel.{model.effective_kernel}")
                if model.kernel_choice == "native" and not model.native_supported:
                    metrics.incr(POLICY_FALLBACK_COUNTER)
                lengths = np.array(
                    [prepared[i][3] for i in member_indices], dtype=np.int64
                )
                max_buckets = int(lengths.max())
                batch_demand = np.zeros(
                    (len(member_indices), max_buckets, model.servers)
                )
                persistence = np.empty((len(member_indices), model.servers))
                initial_m = np.empty((len(member_indices), model.servers))
                initial_alpha = np.empty((len(member_indices), model.servers))
                for row, i in enumerate(member_indices):
                    demand = prepared[i][4]
                    batch_demand[row, : lengths[row]] = demand.demand
                    persistence[row] = demand.persistence
                    initial_m[row] = demand.initial_multiplier
                    initial_alpha[row] = demand.initial_alpha
                batch = model.run_batch(
                    batch_demand,
                    persistence,
                    initial_m,
                    initial_alpha,
                    lengths=lengths,
                )
                for row, i in enumerate(member_indices):
                    fluid_results[i] = batch.per_run(row)

        # Phase 3 — per-run RNG work again: sketch noise, egress echo,
        # SyncRun assembly (the items' RNGs resume exactly where the
        # serial path would, because the fluid step drew nothing).
        out: list[SyncRun] = []
        with metrics.span("synthesis/assemble"):
            for (workload, hour, rng, buckets, demand), result in zip(
                prepared, fluid_results
            ):
                out.append(
                    self._assemble(
                        workload, hour, rng, demand, result, buckets, start_time
                    )
                )
        metrics.incr("synthesis.batched_runs", len(out))
        # Kernel counters staged outside a metrics scope (import-time
        # numba probe, pool-initializer compile time) surface here.
        consume_pending(metrics)
        return out
