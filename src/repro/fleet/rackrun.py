"""Synthesize SyncMillisampler rack runs from the fluid model.

Output is byte-for-byte the same :class:`~repro.core.run.SyncRun`
structure the packet-level pipeline produces, so the entire analysis
stack is agnostic to which substrate generated the data.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..core.run import MillisamplerRun, RunMetadata, SyncRun
from ..core.sketch import SATURATION_ESTIMATE, SKETCH_BITS
from ..errors import SimulationError
from ..workload.region import RackWorkload
from .buffermodel import FluidBufferModel
from .demand import DemandModel


def sketch_estimates(true_counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply 128-bit-sketch estimation noise to true connection counts.

    Each of ``n`` flows independently occupies one of 128 bits, so the
    number of zero bits is approximately Binomial(128, (1-1/128)^n);
    the linear-counting estimate is ``128 * ln(128 / zeros)``, and a
    full bitmap reports the saturation value (Section 4.2: "precise up
    to a dozen connections and saturates at around 500").
    """
    counts = np.asarray(true_counts, dtype=np.float64)
    p_zero = (1.0 - 1.0 / SKETCH_BITS) ** counts
    zeros = rng.binomial(SKETCH_BITS, p_zero)
    estimates = np.where(
        zeros == 0,
        float(SATURATION_ESTIMATE),
        SKETCH_BITS * np.log(SKETCH_BITS / np.maximum(zeros, 1)),
    )
    return estimates


class RackRunSynthesizer:
    """Generates :class:`SyncRun` objects for rack workloads."""

    def __init__(
        self,
        demand_model: DemandModel | None = None,
        sampling_interval: float = units.ANALYSIS_INTERVAL,
        nominal_buckets: int = units.MILLISAMPLER_BUCKETS,
        trimmed_buckets_mean: int = 1850,
        trimmed_buckets_std: int = 40,
        egress_echo: float = 0.18,
    ) -> None:
        if trimmed_buckets_mean <= 0:
            raise SimulationError("run length must be positive")
        self.demand_model = demand_model or DemandModel(step=sampling_interval)
        self.sampling_interval = sampling_interval
        self.nominal_buckets = nominal_buckets
        self.trimmed_buckets_mean = trimmed_buckets_mean
        self.trimmed_buckets_std = trimmed_buckets_std
        self.egress_echo = egress_echo

    def _run_length(self, rng: np.random.Generator) -> int:
        """Post-trim run length (Section 5: average 1.85 s at 1 ms)."""
        length = int(rng.normal(self.trimmed_buckets_mean, self.trimmed_buckets_std))
        return int(np.clip(length, 100, self.nominal_buckets))

    def synthesize(
        self,
        workload: RackWorkload,
        hour: int,
        rng: np.random.Generator | np.random.SeedSequence,
        start_time: float = 0.0,
        buckets: int | None = None,
    ) -> SyncRun:
        """One SyncMillisampler run for ``workload``'s rack at ``hour``.

        ``rng`` may be a ready generator or a ``SeedSequence`` leaf of
        the dataset's seed-stream tree (see :mod:`repro.fleet.dataset`);
        passing the leaf keeps the run independent of every other run,
        which is what allows rack runs to be synthesized in isolation
        (in parallel workers, or one-off for debugging).
        """
        if isinstance(rng, np.random.SeedSequence):
            rng = np.random.default_rng(rng)
        if not 0 <= hour < 24:
            raise SimulationError("hour must be in [0, 24)")
        buckets = buckets if buckets is not None else self._run_length(rng)
        servers = workload.placement.servers
        line_rate = workload.rack_config.server_link_rate

        demand = self.demand_model.generate(workload, hour, buckets, rng)
        fluid = FluidBufferModel(
            servers=servers,
            buffer_config=workload.rack_config.buffer,
            line_rate=line_rate,
            step=self.sampling_interval,
        )
        result = fluid.run(
            demand.demand,
            demand.persistence,
            demand.initial_multiplier,
            demand.initial_alpha,
        )

        conn = sketch_estimates(demand.connections, rng)
        out_bytes = self.egress_echo * result.delivered * rng.lognormal(
            mean=-0.05, sigma=0.3, size=result.delivered.shape
        )

        runs: list[MillisamplerRun] = []
        for index in range(servers):
            meta = RunMetadata(
                host=f"{workload.rack}-s{index}",
                rack=workload.rack,
                region=workload.region,
                task=workload.placement.tasks[index],
                start_time=start_time,
                sampling_interval=self.sampling_interval,
                line_rate=line_rate,
            )
            runs.append(
                MillisamplerRun(
                    meta=meta,
                    in_bytes=result.delivered[:, index].copy(),
                    out_bytes=out_bytes[:, index].copy(),
                    in_retx_bytes=result.delivered_retx[:, index].copy(),
                    out_retx_bytes=np.zeros(buckets),
                    in_ecn_bytes=result.ecn_marked[:, index].copy(),
                    conn_estimate=conn[:, index].copy(),
                )
            )

        return SyncRun(
            rack=workload.rack,
            region=workload.region,
            runs=runs,
            hour=hour,
            switch_discard_bytes=result.total_dropped,
            switch_ingress_bytes=float(demand.demand.sum()),
            extras={
                "colocated": workload.colocated,
                "distinct_tasks": workload.placement.distinct_tasks(),
                "dominant_share": workload.placement.dominant_share(),
                "dominant_task": workload.placement.dominant_task(),
            },
        )
