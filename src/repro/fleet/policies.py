"""Alternative buffer-sharing policies (Section 10 related work).

The paper motivates its measurement by the design space of buffer
sharing algorithms and closes by arguing that "our work can inform the
design of such buffer sharing algorithms".  This module implements the
policies the related-work section cites, as drop-in threshold rules
for the fluid buffer model, so the paper's own dataset synthesis can
ablate them:

* :class:`DynamicThresholdPolicy` — Choudhury-Hahne (deployed baseline):
  ``T = alpha * (B - Q)``.
* :class:`StaticPartitionPolicy` — each queue owns ``B / N`` outright.
* :class:`CompleteSharingPolicy` — no per-queue limit; first come,
  first buffered (maximal absorption, no isolation).
* :class:`EnhancedDynamicThresholdPolicy` — Shan et al. (INFOCOM 2015):
  relax the fairness constraint for short excursions so microbursts
  can use the free buffer, by granting every queue a floor of the
  current free space on top of the DT limit.
* :class:`FlowAwareThresholdPolicy` — FAB (Apostolaki et al.): a higher
  alpha for short/bursty ("mice") queues, lower for long-running
  ("elephant") queues, keyed by how long the queue has been active.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


class SharingPolicy:
    """Per-step threshold rule for the fluid buffer model.

    Implementations return, per server queue, the maximum occupancy the
    queue may hold at the end of the step (on top of which the model
    adds the per-queue dedicated allocation).
    """

    name = "abstract"

    #: True when :meth:`limits` is written with broadcasting-safe ops
    #: (``[..., quadrant]`` indexing, shape-generic fills) so the batched
    #: fluid kernel can call it directly on ``(runs, ...)`` arrays.  Every
    #: built-in policy sets this; third-party policies written against the
    #: per-run signature keep working through the :meth:`limits_batch`
    #: fallback loop.
    batch_limits = False

    def limits(
        self,
        shared_total: float,
        pool_used: np.ndarray,
        quadrant: np.ndarray,
        queue_shared_used: np.ndarray,
        active_steps: np.ndarray,
    ) -> np.ndarray:
        """Per-queue shared-occupancy limit for this step.

        ``pool_used`` is the per-quadrant shared occupancy; ``quadrant``
        maps servers to quadrants; ``queue_shared_used`` is each queue's
        current shared occupancy; ``active_steps`` counts consecutive
        steps each queue has been non-empty (the mice/elephant signal).
        """
        raise NotImplementedError

    def limits_batch(
        self,
        shared_total: float,
        pool_used: np.ndarray,
        quadrant: np.ndarray,
        queue_shared_used: np.ndarray,
        active_steps: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`limits` over a leading runs axis.

        ``pool_used`` is ``(runs, quadrants)``; ``queue_shared_used`` and
        ``active_steps`` are ``(runs, servers)``; the result is
        ``(runs, servers)``.  Policies flagged :attr:`batch_limits` are
        evaluated in one vectorized call; anything else falls back to one
        :meth:`limits` call per run, which is exactly equivalent.
        """
        if self.batch_limits:
            return self.limits(
                shared_total, pool_used, quadrant, queue_shared_used, active_steps
            )
        return np.stack(
            [
                self.limits(
                    shared_total,
                    pool_used[run],
                    quadrant,
                    queue_shared_used[run],
                    active_steps[run],
                )
                for run in range(pool_used.shape[0])
            ]
        )


class DynamicThresholdPolicy(SharingPolicy):
    """The deployed baseline: T = alpha * (B - Q)."""

    name = "dynamic-threshold"
    batch_limits = True

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise SimulationError("alpha must be positive")
        self.alpha = alpha

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)
        return self.alpha * free[..., quadrant]


class StaticPartitionPolicy(SharingPolicy):
    """Hard partitioning: every queue owns an equal slice."""

    name = "static-partition"
    batch_limits = True

    def __init__(self, queues_per_quadrant: int) -> None:
        if queues_per_quadrant <= 0:
            raise SimulationError("need at least one queue per quadrant")
        self.queues_per_quadrant = queues_per_quadrant

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        slice_bytes = shared_total / self.queues_per_quadrant
        shape = np.shape(queue_shared_used)[:-1] + (len(quadrant),)
        return np.full(shape, slice_bytes)


class CompleteSharingPolicy(SharingPolicy):
    """No per-queue limit: admit until the pool is physically full."""

    name = "complete-sharing"
    batch_limits = True

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        shape = np.shape(queue_shared_used)[:-1] + (len(quadrant),)
        return np.full(shape, shared_total)


class EnhancedDynamicThresholdPolicy(SharingPolicy):
    """EDT-style burst absorption (Shan et al.).

    On top of the DT limit, every queue may always reach a fraction of
    the *currently free* pool — letting a microburst use idle buffer
    even when its DT share is small, while long-term fairness is still
    anchored by the DT term.
    """

    name = "enhanced-dt"
    batch_limits = True

    def __init__(self, alpha: float = 1.0, burst_fraction: float = 0.5) -> None:
        if alpha <= 0 or not 0 <= burst_fraction <= 1:
            raise SimulationError("invalid EDT parameters")
        self.alpha = alpha
        self.burst_fraction = burst_fraction

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)[..., quadrant]
        dt_limit = self.alpha * free
        burst_floor = queue_shared_used + self.burst_fraction * free
        return np.maximum(dt_limit, burst_floor)


class FlowAwareThresholdPolicy(SharingPolicy):
    """FAB-style class-dependent alpha (Apostolaki et al.).

    Queues that have been continuously active for less than
    ``mice_steps`` get the high "mice" alpha (absorb their burst);
    longer-running queues get the low "elephant" alpha (they are paced
    by congestion control anyway and should not crowd the pool).
    """

    name = "flow-aware"
    batch_limits = True

    def __init__(
        self,
        mice_alpha: float = 4.0,
        elephant_alpha: float = 0.5,
        mice_steps: int = 4,
    ) -> None:
        if mice_alpha <= 0 or elephant_alpha <= 0:
            raise SimulationError("alphas must be positive")
        if mice_steps < 1:
            raise SimulationError("mice window must be at least one step")
        self.mice_alpha = mice_alpha
        self.elephant_alpha = elephant_alpha
        self.mice_steps = mice_steps

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)[..., quadrant]
        alpha = np.where(
            active_steps <= self.mice_steps, self.mice_alpha, self.elephant_alpha
        )
        return alpha * free


#: Every policy the ablation bench sweeps, with paper-ish defaults.
def standard_policies(queues_per_quadrant: int) -> list[SharingPolicy]:
    """Every policy the ablation bench sweeps, with paper-ish defaults."""
    return [
        DynamicThresholdPolicy(alpha=1.0),
        StaticPartitionPolicy(queues_per_quadrant),
        CompleteSharingPolicy(),
        EnhancedDynamicThresholdPolicy(alpha=1.0, burst_fraction=0.5),
        FlowAwareThresholdPolicy(),
    ]
