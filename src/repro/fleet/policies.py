"""Alternative buffer-sharing policies (Section 10 related work).

The paper motivates its measurement by the design space of buffer
sharing algorithms and closes by arguing that "our work can inform the
design of such buffer sharing algorithms".  This module implements the
policies the related-work section cites, as drop-in threshold rules
for the fluid buffer model, so the paper's own dataset synthesis can
ablate them:

* :class:`DynamicThresholdPolicy` — Choudhury-Hahne (deployed baseline):
  ``T = alpha * (B - Q)``.
* :class:`StaticPartitionPolicy` — each queue owns ``B / N`` outright.
* :class:`CompleteSharingPolicy` — no per-queue limit; first come,
  first buffered (maximal absorption, no isolation).
* :class:`EnhancedDynamicThresholdPolicy` — Shan et al. (INFOCOM 2015):
  relax the fairness constraint for short excursions so microbursts
  can use the free buffer, by granting every queue a floor of the
  current free space on top of the DT limit.
* :class:`FlowAwareThresholdPolicy` — FAB (Apostolaki et al.): a higher
  alpha for short/bursty ("mice") queues, lower for long-running
  ("elephant") queues, keyed by how long the queue has been active.
* :class:`DelayDrivenSharingPolicy` — BShare-style: the share a queue
  may hold is capped by an *estimated queueing delay* budget
  (occupancy / drain rate), not just by free buffer.
* :class:`SharedHeadroomPoolPolicy` — SONiC-style xon/xoff split: a
  reserved headroom pool, over-subscribed across queues, sits on top of
  a DT-governed main pool.

Policies are addressable by name through the registry: a serializable
:class:`~repro.config.PolicySpec` (name + pinned parameters) turns into
a live policy via :func:`build_policy`, which is how ``FleetConfig``
carries a sharing policy through dataset generation, the cache key, the
shard store, and the packet-level :class:`~repro.simnet.buffer.SharedBuffer`.
"""

from __future__ import annotations

import inspect

import numpy as np

from ..config import DEFAULT_POLICY_SPEC, PolicySpec
from ..errors import ConfigError, SimulationError
from .kernels import fluid as _native


class SharingPolicy:
    """Per-step threshold rule for the fluid buffer model.

    Implementations return, per server queue, the maximum occupancy the
    queue may hold at the end of the step (on top of which the model
    adds the per-queue dedicated allocation).
    """

    name = "abstract"

    #: True when :meth:`limits` is written with broadcasting-safe ops
    #: (``[..., quadrant]`` indexing, shape-generic fills) so the batched
    #: fluid kernel can call it directly on ``(runs, ...)`` arrays.  Every
    #: built-in policy sets this; third-party policies written against the
    #: per-run signature keep working through the :meth:`limits_batch`
    #: fallback loop.
    batch_limits = False

    #: Id of this policy's limit rule in the native (numba-jitted) fluid
    #: kernel (see :func:`repro.fleet.kernels.fluid._policy_limit`), or
    #: ``None`` when the policy has none — the fluid model then runs the
    #: whole rack on the numpy path (which evaluates :meth:`limits` per
    #: bucket) regardless of the kernel setting.  Third-party policies
    #: need not set this; the numpy path is always the semantic oracle.
    native_kernel_id: int | None = None

    def native_kernel_params(self) -> tuple[float, float, float, float]:
        """This instance's parameters packed into the fixed-width float
        vector the native limit rule reads (width
        :data:`~repro.fleet.kernels.fluid.MAX_POLICY_PARAMS`)."""
        return (0.0, 0.0, 0.0, 0.0)

    def limits(
        self,
        shared_total: float,
        pool_used: np.ndarray,
        quadrant: np.ndarray,
        queue_shared_used: np.ndarray,
        active_steps: np.ndarray,
    ) -> np.ndarray:
        """Per-queue shared-occupancy limit for this step.

        ``pool_used`` is the per-quadrant shared occupancy; ``quadrant``
        maps servers to quadrants; ``queue_shared_used`` is each queue's
        current shared occupancy; ``active_steps`` counts consecutive
        steps each queue has been non-empty (the mice/elephant signal).
        """
        raise NotImplementedError

    def limits_batch(
        self,
        shared_total: float,
        pool_used: np.ndarray,
        quadrant: np.ndarray,
        queue_shared_used: np.ndarray,
        active_steps: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`limits` over a leading runs axis.

        ``pool_used`` is ``(runs, quadrants)``; ``queue_shared_used`` and
        ``active_steps`` are ``(runs, servers)``; the result is
        ``(runs, servers)``.  Policies flagged :attr:`batch_limits` are
        evaluated in one vectorized call; anything else falls back to one
        :meth:`limits` call per run, which is exactly equivalent.
        """
        if self.batch_limits:
            return self.limits(
                shared_total, pool_used, quadrant, queue_shared_used, active_steps
            )
        return np.stack(
            [
                self.limits(
                    shared_total,
                    pool_used[run],
                    quadrant,
                    queue_shared_used[run],
                    active_steps[run],
                )
                for run in range(pool_used.shape[0])
            ]
        )


#: Registered policy classes by :attr:`SharingPolicy.name`.  The
#: registry is the single source of truth for which policies a
#: :class:`~repro.config.PolicySpec` may name; sweeps enumerate it so a
#: newly registered policy joins every policy-parameterized experiment
#: automatically.
POLICY_REGISTRY: dict[str, type[SharingPolicy]] = {}


def register_policy(cls: type[SharingPolicy]) -> type[SharingPolicy]:
    """Class decorator: make ``cls`` addressable by its ``name``."""
    if not cls.name or cls.name == "abstract":
        raise ConfigError(f"policy class {cls.__name__} needs a concrete name")
    if cls.name in POLICY_REGISTRY:
        raise ConfigError(f"policy name {cls.name!r} registered twice")
    POLICY_REGISTRY[cls.name] = cls
    return cls


@register_policy
class DynamicThresholdPolicy(SharingPolicy):
    """The deployed baseline: T = alpha * (B - Q)."""

    name = "dynamic-threshold"
    batch_limits = True
    native_kernel_id = _native.POLICY_DYNAMIC_THRESHOLD

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise SimulationError("alpha must be positive")
        self.alpha = alpha

    def native_kernel_params(self):
        return (self.alpha, 0.0, 0.0, 0.0)

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)
        return self.alpha * free[..., quadrant]


@register_policy
class StaticPartitionPolicy(SharingPolicy):
    """Hard partitioning: every queue owns an equal slice."""

    name = "static-partition"
    batch_limits = True
    native_kernel_id = _native.POLICY_STATIC_PARTITION

    def __init__(self, queues_per_quadrant: int) -> None:
        if queues_per_quadrant <= 0:
            raise SimulationError("need at least one queue per quadrant")
        self.queues_per_quadrant = queues_per_quadrant

    def native_kernel_params(self):
        return (float(self.queues_per_quadrant), 0.0, 0.0, 0.0)

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        slice_bytes = shared_total / self.queues_per_quadrant
        shape = np.shape(queue_shared_used)[:-1] + (len(quadrant),)
        return np.full(shape, slice_bytes)


@register_policy
class CompleteSharingPolicy(SharingPolicy):
    """No per-queue limit: admit until the pool is physically full."""

    name = "complete-sharing"
    batch_limits = True
    native_kernel_id = _native.POLICY_COMPLETE_SHARING

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        shape = np.shape(queue_shared_used)[:-1] + (len(quadrant),)
        return np.full(shape, shared_total)


@register_policy
class EnhancedDynamicThresholdPolicy(SharingPolicy):
    """EDT-style burst absorption (Shan et al.).

    On top of the DT limit, every queue may always reach a fraction of
    the *currently free* pool — letting a microburst use idle buffer
    even when its DT share is small, while long-term fairness is still
    anchored by the DT term.
    """

    name = "enhanced-dt"
    batch_limits = True
    native_kernel_id = _native.POLICY_ENHANCED_DT

    def __init__(self, alpha: float = 1.0, burst_fraction: float = 0.5) -> None:
        if alpha <= 0 or not 0 <= burst_fraction <= 1:
            raise SimulationError("invalid EDT parameters")
        self.alpha = alpha
        self.burst_fraction = burst_fraction

    def native_kernel_params(self):
        return (self.alpha, self.burst_fraction, 0.0, 0.0)

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)[..., quadrant]
        dt_limit = self.alpha * free
        burst_floor = queue_shared_used + self.burst_fraction * free
        return np.maximum(dt_limit, burst_floor)


@register_policy
class FlowAwareThresholdPolicy(SharingPolicy):
    """FAB-style class-dependent alpha (Apostolaki et al.).

    Queues that have been continuously active for *at most*
    ``mice_steps`` get the high "mice" alpha (absorb their burst);
    longer-running queues get the low "elephant" alpha (they are paced
    by congestion control anyway and should not crowd the pool).  The
    boundary is inclusive — a queue active for exactly ``mice_steps``
    consecutive steps is still a mouse, and turns elephant on the next
    active step (every dataset generated to date was produced under
    this rule, so the code is pinned and the doc follows it).
    """

    name = "flow-aware"
    batch_limits = True
    native_kernel_id = _native.POLICY_FLOW_AWARE

    def __init__(
        self,
        mice_alpha: float = 4.0,
        elephant_alpha: float = 0.5,
        mice_steps: int = 4,
    ) -> None:
        if mice_alpha <= 0 or elephant_alpha <= 0:
            raise SimulationError("alphas must be positive")
        if mice_steps < 1:
            raise SimulationError("mice window must be at least one step")
        self.mice_alpha = mice_alpha
        self.elephant_alpha = elephant_alpha
        self.mice_steps = mice_steps

    def native_kernel_params(self):
        return (self.mice_alpha, self.elephant_alpha, float(self.mice_steps), 0.0)

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)[..., quadrant]
        alpha = np.where(
            active_steps <= self.mice_steps, self.mice_alpha, self.elephant_alpha
        )
        return alpha * free


@register_policy
class DelayDrivenSharingPolicy(SharingPolicy):
    """BShare-style delay-driven sharing (see PAPERS.md).

    Choudhury-Hahne keys a queue's share on raw *occupancy*; BShare's
    observation is that the quantity operators actually bound is the
    *queueing delay* a packet admitted now will experience — the queue's
    occupancy divided by its drain rate.  This policy grants the DT
    share but never more than the occupancy whose drain time equals the
    delay budget:

        limit = min(alpha * (B - Q),  target_delay_steps * drain_per_step)

    ``drain_per_step`` is the bytes one queue drains per model step
    (line rate x step); the default is the paper's rack profile, a
    12.5 Gbps server link at the 1 ms analysis interval.  With the
    default two-step budget the cap is ~3.1 MB — below the quadrant's
    free-pool share when the buffer is empty, so unlike DT a single
    fresh burst cannot buy multi-millisecond queues even when the pool
    is idle; under contention the DT term takes over and behaviour
    converges to the deployed baseline.
    """

    name = "delay-driven"
    batch_limits = True
    native_kernel_id = _native.POLICY_DELAY_DRIVEN

    def __init__(
        self,
        alpha: float = 1.0,
        target_delay_steps: float = 2.0,
        drain_per_step: float | None = None,
    ) -> None:
        if alpha <= 0:
            raise SimulationError("alpha must be positive")
        if target_delay_steps <= 0:
            raise SimulationError("delay budget must be positive")
        if drain_per_step is None:
            from .. import units

            drain_per_step = units.SERVER_LINK_RATE * units.ANALYSIS_INTERVAL
        if drain_per_step <= 0:
            raise SimulationError("drain per step must be positive")
        self.alpha = alpha
        self.target_delay_steps = target_delay_steps
        self.drain_per_step = drain_per_step

    def native_kernel_params(self):
        # The same product limits() computes each call.
        return (self.alpha, self.target_delay_steps * self.drain_per_step, 0.0, 0.0)

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        free = np.maximum(shared_total - pool_used, 0.0)[..., quadrant]
        delay_cap = self.target_delay_steps * self.drain_per_step
        return np.minimum(self.alpha * free, delay_cap)


@register_policy
class SharedHeadroomPoolPolicy(SharingPolicy):
    """SONiC-style shared headroom pool with an xon/xoff reserved split.

    The SONiC QoS design splits the buffer into a *main* pool governed
    by dynamic thresholds and a *reserved headroom* pool sized for
    in-flight bytes after pause (the xoff headroom).  Headroom is not
    dedicated per queue — it is a shared pool, over-subscribed by a
    ratio chosen from the probability of simultaneous congestion: with
    over-subscription ``r``, each of ``N`` queues may claim up to
    ``r * H / N`` of the headroom pool ``H``, first come first served,
    until the pool is physically exhausted.

    Fluid translation: ``H = headroom_fraction * B`` is carved off the
    shared pool; pool bytes fill the main pool ``M = B - H`` first and
    spill into headroom.  A queue's limit is its DT share of the main
    pool plus its (over-subscribed, availability-clipped) headroom
    quota:

        limit = alpha * max(M - main_used, 0)
              + min(r * H / N,  max(H - headroom_used, 0))

    Versus pure DT over ``B``: when the buffer is busy, DT's share
    collapses toward zero while this policy still guarantees a headroom
    quota (burst absorption under contention); when the buffer is idle
    the main-pool share is smaller than DT's (isolation).
    """

    name = "shared-headroom"
    batch_limits = True
    native_kernel_id = _native.POLICY_SHARED_HEADROOM

    def __init__(
        self,
        queues_per_quadrant: int,
        alpha: float = 1.0,
        headroom_fraction: float = 0.15,
        oversubscription: float = 2.0,
    ) -> None:
        if queues_per_quadrant <= 0:
            raise SimulationError("need at least one queue per quadrant")
        if alpha <= 0:
            raise SimulationError("alpha must be positive")
        if not 0 < headroom_fraction < 1:
            raise SimulationError("headroom must be a proper fraction of the pool")
        if oversubscription <= 0:
            raise SimulationError("over-subscription ratio must be positive")
        self.queues_per_quadrant = queues_per_quadrant
        self.alpha = alpha
        self.headroom_fraction = headroom_fraction
        self.oversubscription = oversubscription

    def native_kernel_params(self):
        return (
            self.alpha,
            self.headroom_fraction,
            self.oversubscription,
            float(self.queues_per_quadrant),
        )

    def limits(self, shared_total, pool_used, quadrant, queue_shared_used, active_steps):
        headroom_total = self.headroom_fraction * shared_total
        main_total = shared_total - headroom_total
        main_used = np.minimum(pool_used, main_total)
        headroom_used = np.maximum(pool_used - main_total, 0.0)
        main_share = self.alpha * np.maximum(main_total - main_used, 0.0)
        quota = self.oversubscription * headroom_total / self.queues_per_quadrant
        headroom_left = np.maximum(headroom_total - headroom_used, 0.0)
        grant = main_share + np.minimum(quota, headroom_left)
        return grant[..., quadrant]


def standard_policies(queues_per_quadrant: int) -> list[SharingPolicy]:
    """Every policy the ablation bench sweeps, with paper-ish defaults."""
    return [
        DynamicThresholdPolicy(alpha=1.0),
        StaticPartitionPolicy(queues_per_quadrant),
        CompleteSharingPolicy(),
        EnhancedDynamicThresholdPolicy(alpha=1.0, burst_fraction=0.5),
        FlowAwareThresholdPolicy(),
    ]


# ---------------------------------------------------------------------------
# Registry plumbing: PolicySpec <-> live policy
# ---------------------------------------------------------------------------

#: Policies whose constructor takes the quadrant's queue count; the
#: builder injects the rack geometry when the spec does not pin it.
_GEOMETRY_PARAM = "queues_per_quadrant"


def build_policy(
    spec: PolicySpec, queues_per_quadrant: int | None = None
) -> SharingPolicy:
    """Instantiate the registered policy a :class:`PolicySpec` names.

    Parameters pinned in the spec are passed to the policy constructor;
    anything unpinned takes the class default.  Policies that partition
    by queue count (static partition, shared headroom) receive
    ``queues_per_quadrant`` from the caller — the rack geometry is a
    property of the workload, not of the policy's identity, so specs
    normally leave it unpinned and stay valid across rack shapes.
    """
    try:
        cls = POLICY_REGISTRY[spec.name]
    except KeyError:
        known = ", ".join(sorted(POLICY_REGISTRY))
        raise ConfigError(
            f"unknown sharing policy {spec.name!r} (registered: {known})"
        ) from None
    params = spec.param_dict()
    accepted = inspect.signature(cls.__init__).parameters
    if _GEOMETRY_PARAM in accepted and _GEOMETRY_PARAM not in params:
        if queues_per_quadrant is None:
            raise ConfigError(
                f"policy {spec.name!r} partitions by queue count; pass "
                f"queues_per_quadrant or pin it in the spec"
            )
        params[_GEOMETRY_PARAM] = queues_per_quadrant
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise ConfigError(
            f"policy {spec.name!r} does not take parameter(s) {unknown}"
        )
    return cls(**params)


def parse_policy_arg(text: str) -> PolicySpec:
    """Parse a ``--policy name:key=val,...`` CLI value into a validated spec.

    Rejects unknown names and parameters up front so a typo fails at
    argument-parsing time, not hours into generation.
    """
    spec = PolicySpec.from_string(text)
    # Building (with a placeholder geometry) validates name and params.
    build_policy(spec, queues_per_quadrant=1)
    return spec


def registered_policy_specs() -> list[PolicySpec]:
    """One default-parameter :class:`PolicySpec` per registered policy.

    This is the sweep axis: every registered policy at its class-default
    parameters, in sorted-name order, with the deployed DT default spec
    first (the baseline every comparison is against).
    """
    names = sorted(POLICY_REGISTRY)
    names.remove(DEFAULT_POLICY_SPEC.name)
    return [DEFAULT_POLICY_SPEC] + [PolicySpec(name=name) for name in names]
