"""Native (numba-jitted) fluid DCTCP + shared-buffer time loop.

This is :meth:`repro.fleet.buffermodel.FluidBufferModel.run_batch`
compiled down to two scalar loops per bucket, with the numpy
implementation kept as the bit-exactness oracle.  The contract is
*exact* ``==`` equality, not ``allclose``, so every operation here
mirrors the numpy expression it replaces operation-for-operation:

* additions and subtractions keep the oracle's left-associative order
  (``q_total - drain - dedicated`` is ``(q_total - drain) - dedicated``);
* ``np.maximum(x, c)`` / ``np.minimum(x, c)`` become ``x if x > c else
  c`` / ``x if x < c else c`` — numpy returns the *second* operand on
  ties (including the ``-0.0`` vs ``+0.0`` tie), and so do these;
* the per-(run, quadrant) ``bincount`` pool sums become accumulation in
  ascending server order, which is exactly the order ``np.bincount``
  adds weights;
* guarded divisions (``np.where(d > 0, n / d, 0.0)``) become the same
  guard around a scalar division.

The one operation that cannot be mirrored scalar-for-scalar is
``(1 - alpha/2) ** windows_per_step``: numpy dispatches ``power`` to a
SIMD implementation (AVX512 on the baseline machine) whose results
differ from libm ``pow`` — what numba's ``**`` compiles to — by 1 ulp
on ~5% of inputs.  numpy's ``power`` *is* elementwise
position-independent (the same input double produces the same output
double at any array size, stride, or offset — verified empirically),
so the driver loop computes that single ufunc through numpy itself on
the ``(runs, servers)`` state plane each step, and the jitted closing
pass consumes the values only on the lanes the oracle uses them.
Bit-exactness is then true by construction on every machine, whichever
``power`` implementation its numpy dispatches to.

The per-bucket step is split around that ufunc call:

* :func:`_step_admit` — connection churn, window throttling, the
  policy-governed admission (per-policy limit rules inlined via
  :func:`_policy_limit`), the 3-pass physical pool clamp, queue update,
  delivery, ECN marking, and the DCTCP alpha update; returns how many
  lanes need the ``power`` result;
* ``np.power`` on the staged base plane (skipped when no lane needs it);
* :func:`_step_close` — the multiplier update (marked decrease, loss
  halving, additive increase, clip) and the multiplier output row.

All state lives in one ``(rows, runs, servers)`` float64 work array and
outputs in one ``(6, runs, buckets, servers)`` array, so each jitted
call unboxes a handful of arrays regardless of problem size.  Without
numba (see :mod:`._numba`) these functions run as plain Python: slow,
but the *same* code — which is how the parity suites pin the native
semantics on numba-less machines.
"""

from __future__ import annotations

import numpy as np

from ._numba import njit_cached

# -- per-policy native limit rules ------------------------------------------
#
# Ids are wired to policy classes via SharingPolicy.native_kernel_id
# (see repro.fleet.policies); a policy without an id falls back to the
# numpy path.  Each branch of _policy_limit mirrors the corresponding
# SharingPolicy.limits expression for a single queue, with the policy's
# constructor parameters packed into a fixed-width float vector by
# SharingPolicy.native_kernel_params().

POLICY_DYNAMIC_THRESHOLD = 0  # params: (alpha, -, -, -)
POLICY_STATIC_PARTITION = 1  # params: (queues_per_quadrant, -, -, -)
POLICY_COMPLETE_SHARING = 2  # params: (-, -, -, -)
POLICY_ENHANCED_DT = 3  # params: (alpha, burst_fraction, -, -)
POLICY_FLOW_AWARE = 4  # params: (mice_alpha, elephant_alpha, mice_steps, -)
POLICY_DELAY_DRIVEN = 5  # params: (alpha, delay_cap_bytes, -, -)
POLICY_SHARED_HEADROOM = 6  # params: (alpha, headroom_fraction,
#                                      oversubscription, queues_per_quadrant)

#: Width of the packed parameter vector every policy's
#: ``native_kernel_params()`` must fit in.
MAX_POLICY_PARAMS = 4

# Work-array rows.  0-8 persist across steps (the model state), the
# rest are per-step scratch shared between the two jitted passes.
_W_Q_FRESH = 0
_W_Q_RETX = 1
_W_BACKLOG = 2
_W_M = 3
_W_ALPHA = 4
_W_SINCE = 5  # steps_since_active
_W_QACTIVE = 6  # queue_active_steps
_W_GAP = 7  # per-lane reset gap (steps), constant over the run
_W_POWBASE = 8  # staged base of the ** windows_per_step ufunc
_W_POWVAL = 9  # np.power output plane
_W_POWMASK = 10
_W_LOSTMASK = 11
_W_GROWMASK = 12
_W_RETXIN = 13
_W_OFFERED = 14
_W_ACCEPTED = 15
_W_SHUSED = 16  # per-queue shared occupancy at step start
_W_QBEFORE = 17  # pre-arrival queue total
_W_WANTS = 18
_W_ROWS = 19

# consts vector indices (float64).
_C_DEDICATED = 0
_C_SHARED_TOTAL = 1
_C_ECN_THRESHOLD = 2
_C_DRAIN = 3
_C_MAX_OFFERED = 4
_C_ACTIVITY_FLOOR = 5
_C_DCTCP_GAIN = 6
_C_ADDITIVE_INCREASE = 7
_C_RESPONSIVE = 8  # 1.0 / 0.0
_C_RETRANSMIT = 9  # 1.0 / 0.0
CONSTS_LEN = 10

# iconsts vector indices (int64).
_I_RETX_SLOTS = 0
_I_NUM_QUADRANTS = 1
_I_POLICY_ID = 2
ICONSTS_LEN = 3

# Output-array rows.
_O_DELIVERED = 0
_O_DELIVERED_RETX = 1
_O_ECN_MARKED = 2
_O_DROPPED = 3
_O_OCCUPANCY = 4
_O_MULTIPLIER = 5
OUT_ROWS = 6


@njit_cached
def _policy_limit(pid, p0, p1, p2, p3, shared_total, pool_q, q_shared_used, q_active):
    """One queue's shared-occupancy limit under policy ``pid``.

    ``pool_q`` is the queue's quadrant's shared occupancy;
    ``q_shared_used`` and ``q_active`` are the queue's own shared
    occupancy and consecutive-active-step count.  Branches mirror the
    registered SharingPolicy.limits bodies exactly (see module doc).
    """
    if pid == POLICY_DYNAMIC_THRESHOLD:
        free = shared_total - pool_q
        if not free > 0.0:
            free = 0.0
        return p0 * free
    elif pid == POLICY_STATIC_PARTITION:
        return shared_total / p0
    elif pid == POLICY_COMPLETE_SHARING:
        return shared_total
    elif pid == POLICY_ENHANCED_DT:
        free = shared_total - pool_q
        if not free > 0.0:
            free = 0.0
        dt_limit = p0 * free
        burst_floor = q_shared_used + p1 * free
        # np.maximum returns the second operand on ties.
        return dt_limit if dt_limit > burst_floor else burst_floor
    elif pid == POLICY_FLOW_AWARE:
        free = shared_total - pool_q
        if not free > 0.0:
            free = 0.0
        alpha = p0 if q_active <= p2 else p1
        return alpha * free
    elif pid == POLICY_DELAY_DRIVEN:
        free = shared_total - pool_q
        if not free > 0.0:
            free = 0.0
        dt_limit = p0 * free
        return dt_limit if dt_limit < p1 else p1
    elif pid == POLICY_SHARED_HEADROOM:
        headroom_total = p1 * shared_total
        main_total = shared_total - headroom_total
        main_used = pool_q if pool_q < main_total else main_total
        headroom_used = pool_q - main_total
        if not headroom_used > 0.0:
            headroom_used = 0.0
        main_free = main_total - main_used
        if not main_free > 0.0:
            main_free = 0.0
        main_share = p0 * main_free
        quota = p2 * headroom_total / p3
        headroom_left = headroom_total - headroom_used
        if not headroom_left > 0.0:
            headroom_left = 0.0
        grant = quota if quota < headroom_left else headroom_left
        return main_share + grant
    # Unreachable: dispatch only routes registered ids here.
    return 0.0


@njit_cached
def _step_admit(t, demand, work, retx_pipe, pool, quadrant, params, consts, iconsts, out):
    """Everything up to (and including) the DCTCP alpha update for
    bucket ``t``; returns the number of lanes whose multiplier update
    needs the staged ``power`` result."""
    runs = work.shape[1]
    servers = work.shape[2]
    retx_slots = iconsts[_I_RETX_SLOTS]
    nq = iconsts[_I_NUM_QUADRANTS]
    pid = iconsts[_I_POLICY_ID]
    dedicated = consts[_C_DEDICATED]
    shared_total = consts[_C_SHARED_TOTAL]
    ecn_threshold = consts[_C_ECN_THRESHOLD]
    drain = consts[_C_DRAIN]
    max_offered = consts[_C_MAX_OFFERED]
    activity_floor = consts[_C_ACTIVITY_FLOOR]
    gain = consts[_C_DCTCP_GAIN]
    responsive = consts[_C_RESPONSIVE] != 0.0
    retransmit = consts[_C_RETRANSMIT] != 0.0
    p0 = params[0]
    p1 = params[1]
    p2 = params[2]
    p3 = params[3]
    slot = t % retx_slots
    pow_lanes = 0

    for r in range(runs):
        # --- churn, window throttling, pool occupancy ---------------
        for q in range(nq):
            pool[r, q] = 0.0
        for s in range(servers):
            retx_in = retx_pipe[slot, r, s]
            retx_pipe[slot, r, s] = 0.0
            d = demand[r, t, s]
            backlog = work[_W_BACKLOG, r, s]
            wants = (d + backlog + retx_in) > activity_floor
            m = work[_W_M, r, s]
            if wants and work[_W_SINCE, r, s] > work[_W_GAP, r, s]:
                m = 1.0
                work[_W_M, r, s] = 1.0
                work[_W_ALPHA, r, s] = 0.0
            backlog = backlog + d
            window_budget = m * max_offered - retx_in
            if not window_budget > 0.0:
                window_budget = 0.0
            offered_fresh = backlog if backlog < window_budget else window_budget
            backlog = backlog - offered_fresh
            work[_W_BACKLOG, r, s] = backlog
            q_total = work[_W_Q_FRESH, r, s] + work[_W_Q_RETX, r, s]
            shared_used = q_total - dedicated
            if not shared_used > 0.0:
                shared_used = 0.0
            pool[r, quadrant[s]] += shared_used
            work[_W_RETXIN, r, s] = retx_in
            work[_W_OFFERED, r, s] = offered_fresh + retx_in
            work[_W_QBEFORE, r, s] = q_total
            work[_W_SHUSED, r, s] = shared_used
            work[_W_WANTS, r, s] = 1.0 if wants else 0.0

        # --- policy-governed admission ------------------------------
        for s in range(servers):
            threshold = _policy_limit(
                pid, p0, p1, p2, p3,
                shared_total,
                pool[r, quadrant[s]],
                work[_W_SHUSED, r, s],
                work[_W_QACTIVE, r, s],
            )
            room = (dedicated + threshold) - work[_W_QBEFORE, r, s]
            if not room > 0.0:
                room = 0.0
            room = room + drain
            offered = work[_W_OFFERED, r, s]
            work[_W_ACCEPTED, r, s] = offered if offered < room else room

        # --- 3-pass physical pool clamp -----------------------------
        # (Per-run early break: runs past their own constraint see a
        # zero excess, for which the oracle's extra reduction passes
        # are numeric no-ops — so breaking per run is bit-identical to
        # the batched oracle's any-run break.)
        for _clamp in range(3):
            for q in range(nq):
                pool[r, q] = 0.0
            for s in range(servers):
                base_shared = (work[_W_QBEFORE, r, s] - drain) - dedicated
                new_shared = base_shared + work[_W_ACCEPTED, r, s]
                if not new_shared > 0.0:
                    new_shared = 0.0
                pool[r, quadrant[s]] += new_shared
            any_excess = False
            for q in range(nq):
                if pool[r, q] - shared_total > 0.0:
                    any_excess = True
                    break
            if not any_excess:
                break
            for s in range(servers):
                base_shared = (work[_W_QBEFORE, r, s] - drain) - dedicated
                accepted = work[_W_ACCEPTED, r, s]
                new_shared = base_shared + accepted
                if not new_shared > 0.0:
                    new_shared = 0.0
                new_pool = pool[r, quadrant[s]]
                frac = new_shared / new_pool if new_pool > 0.0 else 0.0
                excess = new_pool - shared_total
                if not excess > 0.0:
                    excess = 0.0
                reduction = excess * frac
                if not reduction < accepted:
                    reduction = accepted
                work[_W_ACCEPTED, r, s] = accepted - reduction

        # --- queue update, delivery, marking, alpha -----------------
        for s in range(servers):
            offered = work[_W_OFFERED, r, s]
            accepted = work[_W_ACCEPTED, r, s]
            retx_in = work[_W_RETXIN, r, s]
            drop = offered - accepted
            retx_frac_in = retx_in / offered if offered > 0.0 else 0.0
            accepted_retx = accepted * retx_frac_in
            q_fresh = work[_W_Q_FRESH, r, s] + (accepted - accepted_retx)
            q_retx = work[_W_Q_RETX, r, s] + accepted_retx
            q_total = q_fresh + q_retx
            out_bytes = q_total if q_total < drain else drain
            retx_share = q_retx / q_total if q_total > 0.0 else 0.0
            out_retx = out_bytes * retx_share
            q_fresh = q_fresh - (out_bytes - out_retx)
            q_retx = q_retx - out_retx
            q_end = q_fresh + q_retx
            work[_W_Q_FRESH, r, s] = q_fresh
            work[_W_Q_RETX, r, s] = q_retx

            mid_occupancy = 0.5 * (work[_W_QBEFORE, r, s] + q_end)
            marked = mid_occupancy > ecn_threshold
            mark_fraction = 1.0 if marked else 0.0

            wants = work[_W_WANTS, r, s] != 0.0
            active = wants and responsive
            lost = (drop > 0.0) and responsive
            alpha = work[_W_ALPHA, r, s]
            if active:
                alpha = alpha + gain * (mark_fraction - alpha)
                work[_W_ALPHA, r, s] = alpha
            pow_lane = active and marked
            if pow_lane:
                pow_lanes += 1
            work[_W_POWMASK, r, s] = 1.0 if pow_lane else 0.0
            work[_W_POWBASE, r, s] = 1.0 - alpha / 2.0
            work[_W_LOSTMASK, r, s] = 1.0 if lost else 0.0
            grow = active and not (marked or lost)
            work[_W_GROWMASK, r, s] = 1.0 if grow else 0.0
            work[_W_SINCE, r, s] = 0.0 if active else work[_W_SINCE, r, s] + 1.0
            busy = (q_end > 0.0) or (accepted > 0.0)
            work[_W_QACTIVE, r, s] = work[_W_QACTIVE, r, s] + 1.0 if busy else 0.0
            if retransmit:
                # (t + retx_slots) % retx_slots is the slot read above.
                retx_pipe[slot, r, s] += drop

            out[_O_DELIVERED, r, t, s] = out_bytes
            out[_O_DELIVERED_RETX, r, t, s] = out_retx
            out[_O_ECN_MARKED, r, t, s] = out_bytes * mark_fraction
            out[_O_DROPPED, r, t, s] = drop
            out[_O_OCCUPANCY, r, t, s] = q_end
    return pow_lanes


@njit_cached
def _step_close(t, work, consts, out):
    """Finish bucket ``t``: the multiplier decrease/halve/grow/clip
    sequence, consuming the ``power`` plane on the masked lanes."""
    runs = work.shape[1]
    servers = work.shape[2]
    additive_increase = consts[_C_ADDITIVE_INCREASE]
    for r in range(runs):
        for s in range(servers):
            m = work[_W_M, r, s]
            if work[_W_POWMASK, r, s] != 0.0:
                m = m * work[_W_POWVAL, r, s]
            if work[_W_LOSTMASK, r, s] != 0.0:
                m = m * 0.5
            if work[_W_GROWMASK, r, s] != 0.0:
                m = m + additive_increase
            # np.clip(m, 0.05, 1.0)
            if m < 0.05:
                m = 0.05
            elif m > 1.0:
                m = 1.0
            work[_W_M, r, s] = m
            out[_O_MULTIPLIER, r, t, s] = m


def fluid_run_batch(
    demand: np.ndarray,
    gap_steps: np.ndarray,
    initial_multiplier: np.ndarray,
    initial_alpha: np.ndarray,
    quadrant: np.ndarray,
    params: np.ndarray,
    consts: np.ndarray,
    iconsts: np.ndarray,
    windows_per_step: float,
) -> np.ndarray:
    """Drive the native kernel over a validated ``(runs, buckets,
    servers)`` demand tensor; returns the ``(6, runs, buckets,
    servers)`` output array (rows: delivered, delivered_retx,
    ecn_marked, dropped, occupancy, multiplier).

    The caller (:class:`~repro.fleet.buffermodel.FluidBufferModel`)
    owns validation and state broadcasting; this function is pure
    arithmetic and safe to warm from a worker-pool initializer.
    """
    runs, buckets, _servers = demand.shape
    servers = int(quadrant.shape[0])
    work = np.zeros((_W_ROWS, runs, servers))
    work[_W_M] = initial_multiplier
    work[_W_ALPHA] = initial_alpha
    work[_W_GAP] = gap_steps
    retx_pipe = np.zeros((int(iconsts[_I_RETX_SLOTS]), runs, servers))
    pool = np.zeros((runs, int(iconsts[_I_NUM_QUADRANTS])))
    out = np.zeros((OUT_ROWS, runs, buckets, servers))
    pow_base = work[_W_POWBASE]
    pow_val = work[_W_POWVAL]
    for t in range(buckets):
        lanes = _step_admit(
            t, demand, work, retx_pipe, pool, quadrant, params, consts, iconsts, out
        )
        if lanes:
            # The single op the jitted code cannot reproduce bit-exactly:
            # route it through the very ufunc the oracle calls (see the
            # module docstring).  Computed on the full plane, consumed
            # only on the masked lanes — exactly like the oracle.
            np.power(pow_base, windows_per_step, out=pow_val)
        _step_close(t, work, consts, out)
    return out
