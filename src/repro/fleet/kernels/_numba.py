"""Optional numba import, isolated so the kernels never hard-require it.

``numba`` is an optional dependency (``pip install repro[native]``).
When it imports, :func:`njit_cached` is ``numba.njit(cache=True,
fastmath=False)`` — on-disk compilation cache so worker pools pay the
JIT once per machine, and strict IEEE semantics because the native
kernel's contract is *bit-exact* equality with the numpy oracle.  When
numba is absent the decorator is the identity, so every kernel remains
an ordinary Python function: the parity suites exercise the exact code
numba would compile, on machines (and CI legs) with no numba at all.
"""

from __future__ import annotations

try:
    from numba import njit as _njit

    NATIVE_AVAILABLE = True
    NUMBA_IMPORT_ERROR: str | None = None

    def njit_cached(func):
        return _njit(cache=True, fastmath=False)(func)

except Exception as exc:  # ImportError, or a broken numba install
    NATIVE_AVAILABLE = False
    NUMBA_IMPORT_ERROR = repr(exc)

    def njit_cached(func):
        return func
