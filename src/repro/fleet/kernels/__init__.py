"""Kernel selection and warm-up for the native fluid time loop.

The package owns the execution-only ``kernel`` axis
(:data:`repro.config.KERNEL_CHOICES`):

* :func:`resolve_kernel` maps a requested setting (``auto`` / ``numpy``
  / ``native``) to the kernel that will actually run, degrading to
  numpy — with a logged warning and a staged obs counter, never an
  ImportError — when numba is unavailable;
* :func:`warm_kernels` forces JIT compilation once per process (timed
  under :data:`COMPILE_SECONDS_COUNTER`) so the first real rack is
  never silently JIT-stalled;
* :func:`pool_initializer` is the picklable hook worker pools run at
  fork so the warm-up happens in every worker, not the parent;
* :func:`consume_pending` drains counters staged where no
  :class:`~repro.obs.metrics.Metrics` was in scope (import time,
  pool initializers) into the caller's metrics.
"""

from __future__ import annotations

import logging

import numpy as np

from ...config import KERNEL_CHOICES
from ...errors import ConfigError
from ._numba import NATIVE_AVAILABLE, NUMBA_IMPORT_ERROR

__all__ = [
    "KERNEL_CHOICES",
    "NATIVE_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "COMPILE_SECONDS_COUNTER",
    "WARMUP_COUNTER",
    "NATIVE_UNAVAILABLE_COUNTER",
    "POLICY_FALLBACK_COUNTER",
    "resolve_kernel",
    "warm_kernels",
    "pool_initializer",
    "consume_pending",
]

_LOG = logging.getLogger("repro.fleet.kernels")

#: Seconds spent JIT-compiling the native kernel in this process.
COMPILE_SECONDS_COUNTER = "kernel.compile_s"
#: Number of processes that warmed the native kernel.
WARMUP_COUNTER = "kernel.warmups"
#: Explicit ``kernel=native`` request degraded to numpy because numba
#: is unavailable (``auto`` probes silently and never stages this).
NATIVE_UNAVAILABLE_COUNTER = "kernel.native_unavailable"
#: Native kernel selected but the run's policy has no native limit
#: rule, so the model fell back to the numpy path.
POLICY_FALLBACK_COUNTER = "kernel.fallback.policy"

# Counters staged outside any Metrics scope, drained by
# consume_pending().  Plain module state: each process stages and
# drains its own.
_pending: dict[str, float] = {}

_warned_unavailable = False
_warmed = False


def _stage(name: str, value: float = 1.0) -> None:
    _pending[name] = _pending.get(name, 0.0) + value


if not NATIVE_AVAILABLE:
    _LOG.debug("numba unavailable, native kernel disabled: %s", NUMBA_IMPORT_ERROR)


def consume_pending(metrics) -> None:
    """Drain counters staged outside a metrics scope into ``metrics``."""
    if not _pending:
        return
    for name, value in _pending.items():
        metrics.incr(name, value)
    _pending.clear()


def resolve_kernel(requested: str) -> str:
    """Map a requested kernel setting to the kernel that will run.

    Returns ``"numpy"`` or ``"native"``.  ``auto`` probes numba
    silently; an explicit ``native`` request without numba warns once
    per process (and stages :data:`NATIVE_UNAVAILABLE_COUNTER`) before
    degrading, so a misconfigured fleet is visible but never broken.
    """
    global _warned_unavailable
    if requested not in KERNEL_CHOICES:
        raise ConfigError(
            f"kernel must be one of {KERNEL_CHOICES}, got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    if NATIVE_AVAILABLE:
        return "native"
    if requested == "native" and not _warned_unavailable:
        _warned_unavailable = True
        _stage(NATIVE_UNAVAILABLE_COUNTER)
        _LOG.warning(
            "kernel=native requested but numba is unavailable (%s); "
            "falling back to the numpy kernel",
            NUMBA_IMPORT_ERROR,
        )
    return "numpy"


def warm_kernels(metrics=None) -> float:
    """Force JIT compilation of the native kernel; returns the compile
    time in seconds (0.0 when already warm or numba is absent).

    Idempotent per process.  Runs one tiny end-to-end
    :func:`~repro.fleet.kernels.fluid.fluid_run_batch` call — the
    policy id is a runtime value, so a single call compiles the
    dispatch for every registered policy.  Compile time is staged
    under :data:`COMPILE_SECONDS_COUNTER` (or recorded directly when
    ``metrics`` is passed).
    """
    global _warmed
    if _warmed or not NATIVE_AVAILABLE:
        return 0.0
    import time

    from . import fluid

    start = time.perf_counter()
    fluid.fluid_run_batch(
        demand=np.zeros((1, 2, 1)),
        gap_steps=np.ones(1),
        initial_multiplier=np.ones(1),
        initial_alpha=np.zeros(1),
        quadrant=np.zeros(1, dtype=np.int64),
        params=np.zeros(fluid.MAX_POLICY_PARAMS),
        consts=_warmup_consts(),
        iconsts=np.array([1, 1, fluid.POLICY_DYNAMIC_THRESHOLD], dtype=np.int64),
        windows_per_step=1.0,
    )
    elapsed = time.perf_counter() - start
    _warmed = True
    if metrics is not None:
        metrics.incr(COMPILE_SECONDS_COUNTER, elapsed)
        metrics.incr(WARMUP_COUNTER)
    else:
        _stage(COMPILE_SECONDS_COUNTER, elapsed)
        _stage(WARMUP_COUNTER)
    return elapsed


def _warmup_consts() -> np.ndarray:
    from . import fluid

    consts = np.zeros(fluid.CONSTS_LEN)
    consts[1] = 1.0  # shared_total
    consts[3] = 1.0  # drain
    consts[4] = 1.0  # max_offered
    consts[8] = 1.0  # responsive
    consts[9] = 1.0  # retransmit
    return consts


def pool_initializer(kernel_setting: str) -> None:
    """Worker-pool ``initializer`` hook: JIT-compile the native kernel
    at fork time when ``kernel_setting`` resolves to it, so no worker
    pays the compile on its first real task.  Compile time stays staged
    in the worker and is drained into that worker's task metrics by
    :func:`consume_pending`.
    """
    if resolve_kernel(kernel_setting) == "native":
        warm_kernels()
