"""Content-addressed on-disk cache for generated region datasets.

Every figure and table draws on the same region-day of summaries, and
generating one costs minutes of fluid-model time at paper scale.  The
cache keys each :class:`RegionDataset` by a hash of everything that
determines its contents — the :class:`RegionSpec`, the dataset-shaping
fields of :class:`FleetConfig`, and a dataset-format version — so a
given configuration pays generation once ever.

Two properties matter more than cleverness here:

* **Transparency** — a cache hit returns the exact summaries generation
  would have produced (generation is deterministic per seed, and the
  pickle round-trip preserves every float bit).  ``FleetConfig.jobs``
  is deliberately *excluded* from the key: it changes how a dataset is
  computed, never what it contains.
* **Corruption tolerance** — a truncated, stale, or otherwise
  unreadable entry is logged and treated as a miss; the dataset is
  regenerated and the entry overwritten.  Entries are written via a
  temp file + atomic rename so a crashed writer cannot leave a
  half-written entry under the final name.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import math
import os
import pickle
import tempfile
import time

from ..config import DEFAULT_POLICY_SPEC, FleetConfig
from ..obs.metrics import Metrics
from ..workload.region import RegionSpec
from .dataset import RegionDataset

logger = logging.getLogger(__name__)

#: Bump whenever generation or the summary layout changes in a way that
#: invalidates previously cached datasets.
DATASET_FORMAT_VERSION = 1

#: Environment override for the default cache location.
CACHE_DIR_ENV = "MILLISAMPLER_CACHE_DIR"


def default_cache_dir() -> str:
    """``$MILLISAMPLER_CACHE_DIR`` or ``~/.cache/millisampler-repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "millisampler-repro")


def _canonical(value):
    """A JSON-ready, deterministic projection of config objects.

    Handles the mix found in :class:`RegionSpec`: nested dataclasses,
    plain policy classes (projected via ``vars``), dicts, and tuples.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        # Sort by the *stringified* key: mixed-type keys (e.g. int and
        # str in one dict) are unorderable and would make plain
        # sorted(value.items()) raise TypeError.
        return {
            str(key): _canonical(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        # NaN/inf are not valid JSON; project them to stable tokens so
        # the key payload stays portable across serializers.
        return f"__float__:{value!r}"
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {
            "__type__": type(value).__name__,
            **{key: _canonical(item) for key, item in sorted(vars(value).items())},
        }
    return repr(value)


#: Every :class:`FleetConfig` field must appear in exactly one of these
#: two sets.  ``KEY_BEARING_FIELDS`` shape the generated data and feed
#: the content hash; ``EXECUTION_ONLY_FIELDS`` change only how a dataset
#: is computed (fan-out, batching) and are deliberately excluded.  A
#: test asserts the classification is exhaustive, so a future
#: dataset-shaping field cannot silently alias cached datasets.
KEY_BEARING_FIELDS: tuple[str, ...] = (
    "racks_per_region",
    "runs_per_rack",
    "hours",
    "seed",
    "policy",
)
EXECUTION_ONLY_FIELDS: tuple[str, ...] = ("jobs", "fluid_batch", "shm_transfer", "kernel")


def dataset_cache_key(spec: RegionSpec, config: FleetConfig) -> str:
    """Content hash of everything that determines a region-day's data."""
    fleet_fields = {}
    for name in KEY_BEARING_FIELDS:
        value = getattr(config, name)
        if name == "policy" and value == DEFAULT_POLICY_SPEC:
            # The default DT spec reproduces exactly the data generated
            # before policy became a config axis, so it is omitted from
            # the payload: default-policy keys are byte-identical to
            # pre-policy keys and every existing cache entry and shard
            # store stays valid.  Any non-default spec is keyed.
            continue
        fleet_fields[name] = _canonical(value)
    payload = {
        "format": DATASET_FORMAT_VERSION,
        "spec": _canonical(spec),
        # Explicit field list rather than asdict(config): jobs (and any
        # future execution-only knob) must not change the key.
        "fleet": fleet_fields,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, allow_nan=False).encode("utf-8")
    ).hexdigest()
    return digest


#: Counter names recorded on every cache interaction; the orchestrator
#: reads per-experiment deltas of hit/miss into the run manifest.
HIT_COUNTER = "dataset.cache.hit"
MISS_COUNTER = "dataset.cache.miss"
STORE_COUNTER = "dataset.cache.store"
SWEEP_COUNTER = "dataset.cache.swept_tmp"

#: Age (seconds) past which an orphaned ``*.tmp`` file is presumed dead.
#: Writers hold a temp file only for the duration of one pickle dump, so
#: anything this old belongs to a crashed/killed writer, not a live one.
STALE_TMP_AGE_S = 15 * 60


def sweep_stale_tmp_files(
    directory: str,
    max_age_s: float = STALE_TMP_AGE_S,
    metrics: Metrics | None = None,
) -> int:
    """Delete orphaned ``*.tmp`` entries older than ``max_age_s``.

    A writer killed between ``mkstemp`` and ``os.replace`` leaves its
    temp file behind; without a sweep those accumulate forever.  Only
    files old enough that no live writer can still own them are removed,
    and every OS race (a concurrent writer finishing, another sweeper
    winning) is ignored.
    """
    swept = 0
    try:
        entries = os.listdir(directory)
    except OSError:
        return 0
    cutoff = time.time() - max_age_s
    for name in entries:
        if not name.endswith(".tmp"):
            continue
        path = os.path.join(directory, name)
        try:
            if os.path.getmtime(path) >= cutoff:
                continue
            os.unlink(path)
            swept += 1
        except OSError:
            continue
    if swept and metrics is not None:
        metrics.incr(SWEEP_COUNTER, swept)
    return swept


class DatasetCache:
    """Directory of pickled region datasets keyed by content hash.

    ``metrics`` (any :class:`repro.obs.metrics.Metrics`) receives
    hit/miss/store counters and load/store timers; a private registry
    is used when the caller does not supply one, keeping the recording
    path identical whether or not anyone is watching.
    """

    def __init__(self, directory: str, metrics: Metrics | None = None) -> None:
        self.directory = directory
        self.metrics = metrics if metrics is not None else Metrics()

    def path_for(self, spec: RegionSpec, config: FleetConfig) -> str:
        key = dataset_cache_key(spec, config)
        return os.path.join(self.directory, f"{spec.name}-{key}.pkl")

    def load(self, spec: RegionSpec, config: FleetConfig) -> RegionDataset | None:
        """The cached dataset, or None on a miss *or* an unreadable entry."""
        path = self.path_for(spec, config)
        if not os.path.exists(path):
            self.metrics.incr(MISS_COUNTER)
            return None
        try:
            with self.metrics.span("cache/load"):
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
                if payload["format"] != DATASET_FORMAT_VERSION:
                    raise ValueError(f"format {payload['format']} != {DATASET_FORMAT_VERSION}")
                dataset = payload["dataset"]
                if not isinstance(dataset, RegionDataset) or dataset.region != spec.name:
                    raise ValueError("entry does not hold the requested region")
            self.metrics.incr(HIT_COUNTER)
            return dataset
        except Exception as exc:  # corrupt entry: regenerate, overwrite
            logger.warning("ignoring unreadable dataset cache entry %s: %s", path, exc)
            self.metrics.incr(MISS_COUNTER)
            return None

    def store(self, spec: RegionSpec, config: FleetConfig, dataset: RegionDataset) -> str:
        """Atomically write (or overwrite) the entry for this config."""
        os.makedirs(self.directory, exist_ok=True)
        sweep_stale_tmp_files(self.directory, metrics=self.metrics)
        path = self.path_for(spec, config)
        payload = {"format": DATASET_FORMAT_VERSION, "dataset": dataset}
        handle, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with self.metrics.span("cache/store"):
                with os.fdopen(handle, "wb") as tmp:
                    pickle.dump(payload, tmp, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.metrics.incr(STORE_COUNTER)
        return path
