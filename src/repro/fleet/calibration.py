"""Calibration harness: is the synthesis still inside the paper's bands?

The fluid model's service catalog and demand parameters were tuned so
the synthetic fleet lands near the paper's aggregate statistics.  This
module makes that tuning testable: :data:`PAPER_TARGETS` records the
published values with acceptance bands, :func:`measure` computes the
same statistics from a fresh synthesis, and :func:`check` reports what
moved out of band — the regression guard that keeps future parameter
changes honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.region import REGION_A, build_region_workloads
from ..analysis.summary import summarize_run
from ..errors import AnalysisError
from .rackrun import RackRunSynthesizer


@dataclass(frozen=True)
class Target:
    """One published statistic with an acceptance band."""

    name: str
    paper_value: float
    low: float
    high: float

    def holds(self, measured: float) -> bool:
        return self.low <= measured <= self.high


#: The Section 6-8 statistics the synthesis is calibrated against.
#: Bands are deliberately wide — shape fidelity, not curve fitting.
PAPER_TARGETS: tuple[Target, ...] = (
    Target("bursty_server_run_fraction", 0.34, 0.2, 0.55),
    Target("median_burst_length_ms", 2.0, 1.0, 4.0),
    Target("median_burst_volume_mb", 1.8, 0.8, 3.5),
    Target("conn_ratio_inside_outside", 2.7, 1.5, 4.5),
    Target("outside_burst_utilization", 0.055, 0.02, 0.12),
    Target("rega_typical_lossy_pct", 1.05, 0.3, 2.5),
    Target("rega_coloc_lossy_pct", 0.36, 0.05, 1.0),
    Target("loss_inversion_ratio", 2.9, 1.3, 8.0),
    Target("rega_typical_contended_pct", 70.9, 55.0, 90.0),
    Target("rega_coloc_contended_pct", 100.0, 90.0, 100.0),
)


@dataclass
class CalibrationReport:
    """Measured statistics plus per-target verdicts."""

    measured: dict[str, float]
    failures: list[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = ["calibration report:"]
        for target in PAPER_TARGETS:
            value = self.measured.get(target.name, float("nan"))
            status = "ok " if target.holds(value) else "OUT"
            lines.append(
                f"  [{status}] {target.name}: measured {value:.3g} "
                f"(paper {target.paper_value:g}, band {target.low:g}-{target.high:g})"
            )
        return "\n".join(lines)


def measure(racks: int = 20, hour: int = 6, seed: int = 7) -> dict[str, float]:
    """Synthesize a busy-hour RegA slice and compute the calibration
    statistics (RegB enters only through the loss-inversion targets'
    generality; RegA carries both rack classes)."""
    if racks < 6:
        raise AnalysisError("calibration needs enough racks for both classes")
    rng = np.random.default_rng(seed)
    synthesizer = RackRunSynthesizer()
    workloads = build_region_workloads(REGION_A, racks=racks, rng=rng)

    lengths: list[float] = []
    volumes: list[float] = []
    conn_ratios: list[float] = []
    outside_util: list[float] = []
    bursty = 0
    server_runs = 0
    class_counts = {True: [0, 0, 0], False: [0, 0, 0]}  # bursts, contended, lossy

    for workload in workloads:
        sync_run = synthesizer.synthesize(workload, hour, rng)
        summary = summarize_run(sync_run)
        entry = class_counts[workload.colocated]
        for burst in summary.bursts:
            entry[0] += 1
            entry[1] += int(burst.contended)
            entry[2] += int(burst.lossy)
            lengths.append(burst.length)
            volumes.append(burst.volume)
        for stat in summary.server_stats:
            server_runs += 1
            if stat.bursty:
                bursty += 1
                if np.isfinite(stat.utilization_outside_bursts):
                    outside_util.append(stat.utilization_outside_bursts)
                if (
                    np.isfinite(stat.conns_inside)
                    and np.isfinite(stat.conns_outside)
                    and stat.conns_outside > 0
                ):
                    conn_ratios.append(stat.conns_inside / stat.conns_outside)

    spread = class_counts[False]
    coloc = class_counts[True]
    spread_lossy = spread[2] / spread[0] * 100 if spread[0] else 0.0
    coloc_lossy = coloc[2] / coloc[0] * 100 if coloc[0] else 0.0
    return {
        "bursty_server_run_fraction": bursty / server_runs if server_runs else 0.0,
        "median_burst_length_ms": float(np.median(lengths)) if lengths else 0.0,
        "median_burst_volume_mb": float(np.median(volumes)) / 1e6 if volumes else 0.0,
        "conn_ratio_inside_outside": float(np.median(conn_ratios)) if conn_ratios else 0.0,
        "outside_burst_utilization": float(np.median(outside_util)) if outside_util else 0.0,
        "rega_typical_lossy_pct": spread_lossy,
        "rega_coloc_lossy_pct": coloc_lossy,
        "loss_inversion_ratio": spread_lossy / coloc_lossy if coloc_lossy else float("inf"),
        "rega_typical_contended_pct": spread[1] / spread[0] * 100 if spread[0] else 0.0,
        "rega_coloc_contended_pct": coloc[1] / coloc[0] * 100 if coloc[0] else 0.0,
    }


def check(racks: int = 20, hour: int = 6, seed: int = 7) -> CalibrationReport:
    """Measure and compare against every target."""
    measured = measure(racks=racks, hour=hour, seed=seed)
    failures = [
        target.name
        for target in PAPER_TARGETS
        if not target.holds(measured.get(target.name, float("nan")))
    ]
    return CalibrationReport(measured=measured, failures=failures)
