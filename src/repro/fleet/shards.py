"""Sharded, out-of-core columnar store for region-day datasets.

The paper's primary dataset is 2 regions x ~1000 racks x 24 h — an
8.16 B-sample footprint that cannot live as one in-memory
:class:`RegionDataset` behind a single pickle blob.  This module
partitions a region-day into per-``(region, rack-range, hour-band)``
**shards**, each independently generated from the per-(rack, run) seed
streams of :mod:`repro.fleet.dataset`, so generation, caching, and
analysis pipeline shard-by-shard across workers with peak memory
bounded by one shard.

On disk a store is one directory per (region, dataset key, shard
geometry)::

    <store-dir>/RegA-<dataset_key>-r64h12/
        manifest.json            # shard index: keys, hashes, counts
        workloads.pkl            # every planned RackWorkload, rack order
        r0000-0064-h00-12.runs.npy    # columnar numeric run summary fields
        r0000-0064-h00-12.bursts.npy  # columnar per-burst annotations
        r0000-0064-h00-12.pkl         # full RunSummary objects (pickled)

* ``*.runs.npy`` / ``*.bursts.npy`` are plain ``.npy`` arrays loaded
  with ``np.load(mmap_mode="r")`` — zero-copy columnar access for the
  streaming aggregations (:mod:`repro.analysis.streaming`).
* ``*.pkl`` holds the full :class:`RunSummary` objects for consumers
  that need burst records or server stats beyond the numeric columns;
  it is only ever loaded one shard at a time.
* every file is written to a ``*.tmp`` sibling and atomically renamed;
  the manifest is written last, so a crashed writer can never leave a
  store that *looks* complete.  Stale temp files are swept on build.

Because every (rack, run) pair owns an independent seed-stream leaf,
shard contents are **bit-identical** to the corresponding slice of the
monolithic in-memory generation — the legacy path stays available as
the exactness oracle, and the determinism suite holds shard-by-shard.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import threading
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..analysis.streaming import (
    BurstContentionAccumulator,
    BurstContentionView,
    HourlyBoxAccumulator,
    RackProfileAccumulator,
    RunContentionAccumulator,
    RunContentionView,
    Table1Accumulator,
)
from ..analysis.summary import RunSummary
from ..config import FleetConfig
from ..errors import ConfigError, WorkerCancelled
from ..obs.metrics import Metrics
from ..workload.region import RackWorkload, RegionSpec
from .cache import dataset_cache_key, sweep_stale_tmp_files
from .dataset import (
    DatasetSummary,
    RackRunPlan,
    RegionDataset,
    plan_region,
    run_rng,
)
from .kernels import consume_pending, pool_initializer
from .rackrun import BatchItem, RackRunSynthesizer

logger = logging.getLogger(__name__)

#: Bump whenever the shard layout or the summary reduction changes in a
#: way that invalidates existing stores.
SHARD_FORMAT_VERSION = 1

#: Schema tag distinguishing a shard-store manifest from any other JSON.
STORE_SCHEMA = "millisampler-repro/shard-store"

#: Environment override for the default store location.
STORE_DIR_ENV = "MILLISAMPLER_STORE_DIR"

#: Default shard geometry: racks per shard x hours per shard.  64 x 12
#: keeps a paper-scale (1000-rack) region at ~32 shards of a few
#: thousand runs each — large enough to amortize fluid batching, small
#: enough that one shard of summaries is a trivial memory footprint.
DEFAULT_SHARD_RACKS = 64
DEFAULT_SHARD_HOURS = 12

#: Numeric per-run summary columns (one row per rack run).  These are
#: what the streaming aggregations read; the full RunSummary objects
#: stay in the pickle sidecar.
RUN_COLUMNS: tuple[str, ...] = (
    "rack_id",
    "hour",
    "servers",
    "buckets",
    "sampling_interval",
    "contention_mean",
    "contention_min_active",
    "contention_p90",
    "contention_max",
    "contention_frac_zero",
    "n_bursts",
    "bursty_server_runs",
    "switch_discard_bytes",
    "switch_ingress_bytes",
    "total_in_bytes",
    "colocated",
    "distinct_tasks",
    "dominant_share",
)
RUN_COL: dict[str, int] = {name: index for index, name in enumerate(RUN_COLUMNS)}

#: Numeric per-burst columns (one row per detected burst).
BURST_COLUMNS: tuple[str, ...] = (
    "run_row",
    "burst_index",
    "max_contention",
    "lossy",
    "first_loss_contention",
    "length_buckets",
    "volume_bytes",
)
BURST_COL: dict[str, int] = {name: index for index, name in enumerate(BURST_COLUMNS)}


def default_store_dir() -> str:
    """``$MILLISAMPLER_STORE_DIR`` or ``~/.cache/millisampler-shards``."""
    override = os.environ.get(STORE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "millisampler-shards")


# -- shard geometry ----------------------------------------------------------


@dataclass(frozen=True)
class ShardKey:
    """Identity of one shard: a rack range x hour band of one region."""

    region: str
    rack_lo: int
    rack_hi: int  # exclusive
    hour_lo: int
    hour_hi: int  # exclusive

    @property
    def tag(self) -> str:
        return (
            f"r{self.rack_lo:04d}-{self.rack_hi:04d}"
            f"-h{self.hour_lo:02d}-{self.hour_hi:02d}"
        )


@dataclass(frozen=True)
class ShardTask:
    """One shard's generation work: the plans whose rack index falls in
    the range, each with the run indices whose hour falls in the band.

    ``run_indices`` index into the rack's *full* day schedule, so every
    run keeps its original ``(rack_index, run_index)`` seed-stream leaf
    and shard contents are bit-identical to the monolithic generation.
    """

    key: ShardKey
    plans: tuple[RackRunPlan, ...]
    run_indices: tuple[tuple[int, ...], ...]  # aligned with plans

    @property
    def total_runs(self) -> int:
        return sum(len(indices) for indices in self.run_indices)


def plan_region_shards(
    spec: RegionSpec,
    config: FleetConfig,
    shard_racks: int = DEFAULT_SHARD_RACKS,
    shard_hours: int = DEFAULT_SHARD_HOURS,
) -> tuple[list[RackRunPlan], list[ShardTask]]:
    """Partition a region plan into shard tasks.

    Returns the full plan list (rack order — the workloads contract)
    and the shard tasks ordered by (rack range, hour band).  Every
    (rack, run) of the plan appears in exactly one shard.
    """
    if shard_racks < 1:
        raise ConfigError("shard must span at least one rack")
    if shard_hours < 1:
        raise ConfigError("shard must span at least one hour")
    plans = plan_region(spec, config)
    tasks: list[ShardTask] = []
    for rack_lo in range(0, len(plans), shard_racks):
        rack_hi = min(rack_lo + shard_racks, len(plans))
        for hour_lo in range(0, config.hours, shard_hours):
            hour_hi = min(hour_lo + shard_hours, config.hours)
            shard_plans: list[RackRunPlan] = []
            shard_indices: list[tuple[int, ...]] = []
            for plan in plans[rack_lo:rack_hi]:
                indices = tuple(
                    run_index
                    for run_index, hour in enumerate(plan.hours)
                    if hour_lo <= hour < hour_hi
                )
                if indices:
                    shard_plans.append(plan)
                    shard_indices.append(indices)
            if not shard_plans:
                continue
            tasks.append(
                ShardTask(
                    key=ShardKey(spec.name, rack_lo, rack_hi, hour_lo, hour_hi),
                    plans=tuple(shard_plans),
                    run_indices=tuple(shard_indices),
                )
            )
    return plans, tasks


# -- columnar projection -----------------------------------------------------


def summaries_to_columns(
    summaries: list[RunSummary], rack_ids: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Project summaries onto the (runs, bursts) numeric column arrays."""
    runs = np.zeros((len(summaries), len(RUN_COLUMNS)), dtype=np.float64)
    burst_rows: list[list[float]] = []
    for row, (summary, rack_id) in enumerate(zip(summaries, rack_ids)):
        contention = summary.contention
        runs[row] = (
            rack_id,
            summary.hour,
            summary.servers,
            summary.buckets,
            summary.sampling_interval,
            contention.mean,
            contention.min_active,
            contention.p90,
            contention.max,
            contention.frac_zero,
            len(summary.bursts),
            summary.bursty_server_runs(),
            summary.switch_discard_bytes,
            summary.switch_ingress_bytes,
            summary.total_in_bytes,
            float(bool(summary.extras.get("colocated", False))),
            float(summary.extras.get("distinct_tasks", 0)),
            float(summary.extras.get("dominant_share", 0.0)),
        )
        for burst_index, burst in enumerate(summary.bursts):
            burst_rows.append(
                [
                    float(row),
                    float(burst_index),
                    float(burst.max_contention),
                    float(burst.lossy),
                    float(burst.first_loss_contention),
                    float(burst.length),
                    float(burst.volume),
                ]
            )
    bursts = (
        np.asarray(burst_rows, dtype=np.float64)
        if burst_rows
        else np.zeros((0, len(BURST_COLUMNS)), dtype=np.float64)
    )
    return runs, bursts


# -- atomic file plumbing ----------------------------------------------------


def _atomic_write(path: str, write: Callable) -> None:
    """Write via a same-directory temp file + atomic rename."""
    directory = os.path.dirname(path)
    handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            write(stream)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# -- shard generation (worker side) ------------------------------------------


def synthesize_shard(
    task: ShardTask,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    metrics: Metrics | None = None,
) -> list[RunSummary]:
    """Synthesize one shard's runs (rack-major, hour-ascending order),
    reducing each fluid batch immediately — the worker's unit of work."""
    from .dataset import _summarize_batch  # shared batching helper

    synthesizer = synthesizer or RackRunSynthesizer(policy=config.policy, kernel=config.kernel)
    metrics = metrics if metrics is not None else Metrics()
    items: list[BatchItem] = []
    for plan, run_indices in zip(task.plans, task.run_indices):
        for run_index in run_indices:
            items.append(
                (
                    plan.workload,
                    plan.hours[run_index],
                    run_rng(task.key.region, config.seed, plan.rack_index, run_index),
                )
            )
    summaries: list[RunSummary] = []
    for start in range(0, len(items), config.fluid_batch):
        chunk = items[start : start + config.fluid_batch]
        for summary, _workload in _summarize_batch(chunk, synthesizer, metrics):
            summaries.append(summary)
    return summaries


def _write_shard(
    directory: str,
    task: ShardTask,
    summaries: list[RunSummary],
    metrics: Metrics,
) -> dict:
    """Write one shard's three files atomically; return its manifest record."""
    rack_ids = [
        plan.rack_index
        for plan, indices in zip(task.plans, task.run_indices)
        for _ in indices
    ]
    runs, bursts = summaries_to_columns(summaries, rack_ids)
    tag = task.key.tag
    names = {
        "runs": f"{tag}.runs.npy",
        "bursts": f"{tag}.bursts.npy",
        "summaries": f"{tag}.pkl",
    }
    with metrics.span("shards/write"):
        _atomic_write(
            os.path.join(directory, names["runs"]), lambda s: np.save(s, runs)
        )
        _atomic_write(
            os.path.join(directory, names["bursts"]), lambda s: np.save(s, bursts)
        )
        _atomic_write(
            os.path.join(directory, names["summaries"]),
            lambda s: pickle.dump(summaries, s, protocol=pickle.HIGHEST_PROTOCOL),
        )
    record = {
        "tag": tag,
        "region": task.key.region,
        "rack_lo": task.key.rack_lo,
        "rack_hi": task.key.rack_hi,
        "hour_lo": task.key.hour_lo,
        "hour_hi": task.key.hour_hi,
        "runs": int(runs.shape[0]),
        "bursts": int(bursts.shape[0]),
        "racks_present": int(np.unique(runs[:, RUN_COL["rack_id"]]).size),
        "files": names,
        "bytes": {
            kind: os.path.getsize(os.path.join(directory, name))
            for kind, name in names.items()
        },
        "sha256": {
            kind: _sha256_file(os.path.join(directory, name))
            for kind, name in names.items()
        },
    }
    return record


def _shard_worker(task: ShardTask, config: FleetConfig, directory: str) -> tuple[str, dict, dict]:
    """Top-level process-pool entry point (must be picklable).

    Generates and writes one whole shard; only the manifest record and
    a telemetry snapshot cross the process boundary back to the parent.
    """
    metrics = Metrics()
    consume_pending(metrics)  # pool-initializer JIT compile time
    with metrics.span("shards/generate"):
        summaries = synthesize_shard(task, config, metrics=metrics)
        record = _write_shard(directory, task, summaries, metrics)
    return task.key.tag, record, metrics.snapshot()


# -- the store ---------------------------------------------------------------


class ShardStoreError(Exception):
    """An unreadable or inconsistent shard store (treated as a miss)."""


@dataclass
class RegionShardStore:
    """One region-day's shard directory: build, validate, and open.

    The directory name embeds the dataset content key (everything that
    shapes the data) *and* the shard geometry (which shapes only the
    file layout), so differently-sharded stores of the same dataset
    coexist without aliasing.
    """

    root: str
    spec: RegionSpec
    config: FleetConfig
    shard_racks: int = DEFAULT_SHARD_RACKS
    shard_hours: int = DEFAULT_SHARD_HOURS
    metrics: Metrics = field(default_factory=Metrics, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.shard_racks < 1 or self.shard_hours < 1:
            raise ConfigError("shard geometry must be at least 1x1")

    @property
    def dataset_key(self) -> str:
        return dataset_cache_key(self.spec, self.config)

    @property
    def directory(self) -> str:
        return os.path.join(
            self.root,
            f"{self.spec.name}-{self.dataset_key[:16]}"
            f"-r{self.shard_racks}h{self.shard_hours}",
        )

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    # -- reading ---------------------------------------------------------

    def load_manifest(self) -> dict | None:
        """The validated manifest, or None when absent/stale/corrupt."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except FileNotFoundError:
            self.metrics.incr("dataset.shards.miss")
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("ignoring unreadable shard manifest %s: %s", self.manifest_path, exc)
            self.metrics.incr("dataset.shards.miss")
            return None
        try:
            self._validate(manifest)
        except ShardStoreError as exc:
            logger.warning("ignoring stale shard store %s: %s", self.directory, exc)
            self.metrics.incr("dataset.shards.miss")
            return None
        self.metrics.incr("dataset.shards.hit")
        return manifest

    def _validate(self, manifest: dict) -> None:
        if manifest.get("schema") != STORE_SCHEMA:
            raise ShardStoreError("not a shard-store manifest")
        if manifest.get("format") != SHARD_FORMAT_VERSION:
            raise ShardStoreError(
                f"format {manifest.get('format')} != {SHARD_FORMAT_VERSION}"
            )
        if manifest.get("dataset_key") != self.dataset_key:
            raise ShardStoreError("dataset key mismatch")
        if manifest.get("region") != self.spec.name:
            raise ShardStoreError("region mismatch")
        if (
            manifest.get("shard_racks") != self.shard_racks
            or manifest.get("shard_hours") != self.shard_hours
        ):
            raise ShardStoreError("shard geometry mismatch")
        if list(manifest.get("run_columns", [])) != list(RUN_COLUMNS) or list(
            manifest.get("burst_columns", [])
        ) != list(BURST_COLUMNS):
            raise ShardStoreError("column layout mismatch")
        for record in manifest.get("shards", []):
            for kind, name in record["files"].items():
                path = os.path.join(self.directory, name)
                if not os.path.exists(path):
                    raise ShardStoreError(f"missing shard file {name}")
                expected = record["bytes"][kind]
                actual = os.path.getsize(path)
                if actual != expected:
                    raise ShardStoreError(
                        f"shard file {name} is {actual} bytes, expected {expected}"
                    )
        workloads = manifest.get("workloads_file")
        if workloads and not os.path.exists(os.path.join(self.directory, workloads)):
            raise ShardStoreError("missing workloads file")

    def verify_hashes(self, manifest: dict) -> bool:
        """Deep content check: every shard file matches its manifest hash."""
        for record in manifest.get("shards", []):
            for kind, name in record["files"].items():
                if _sha256_file(os.path.join(self.directory, name)) != record["sha256"][kind]:
                    return False
        return True

    # -- building --------------------------------------------------------

    def build(
        self,
        jobs: int = 1,
        synthesizer: RackRunSynthesizer | None = None,
        progress: Callable[[int, int], None] | None = None,
        pool: Executor | None = None,
        cancel_event: threading.Event | None = None,
        on_shard: Callable[[dict], None] | None = None,
    ) -> dict:
        """Generate every shard (serially or across a process pool) and
        atomically publish the manifest.  Returns the manifest.

        ``on_shard`` receives each shard's manifest record as it
        completes (the query service streams these as NDJSON progress
        events).  ``pool`` injects an external executor — the service's
        persistent pool — instead of creating one per build;
        ``cancel_event`` requests a graceful drain (in-flight shards
        finish, the manifest is *not* written, and
        :class:`~repro.errors.WorkerCancelled` is raised — the store
        stays an incomplete-but-consistent miss thanks to manifest-last
        atomicity).  Fan-out failure semantics come from
        :func:`repro.fleet.parallel.run_windowed`: fail-fast
        ``WorkerTaskError`` naming the shard, crash containment via
        ``WorkerCrashError``.
        """
        from .parallel import resolve_jobs, run_windowed

        jobs = resolve_jobs(jobs)
        os.makedirs(self.directory, exist_ok=True)
        sweep_stale_tmp_files(self.directory, metrics=self.metrics)
        plans, tasks = plan_region_shards(
            self.spec, self.config, self.shard_racks, self.shard_hours
        )
        total = sum(task.total_runs for task in tasks)
        done = 0
        records: dict[str, dict] = {}

        def collect(record: dict, snapshot: dict | None) -> None:
            nonlocal done
            records[record["tag"]] = record
            if snapshot is not None:
                self.metrics.merge(snapshot)
            self.metrics.incr("dataset.shards.generated")
            done += record["runs"]
            if progress is not None:
                progress(done, total)
            if on_shard is not None:
                on_shard(record)

        with self.metrics.span(f"shards/build/{self.spec.name}"):
            if (jobs > 1 or pool is not None) and len(tasks) > 1:
                run_windowed(
                    tasks,
                    lambda executor, task: executor.submit(
                        _shard_worker, task, self.config, self.directory
                    ),
                    lambda task, result: collect(result[1], result[2]),
                    jobs=jobs,
                    label=lambda task: f"shard {task.key.tag}",
                    pool=pool,
                    cancel_event=cancel_event,
                    initializer=pool_initializer,
                    initargs=(self.config.kernel,),
                )
            else:
                synthesizer = synthesizer or RackRunSynthesizer(policy=self.config.policy, kernel=self.config.kernel)
                for index, task in enumerate(tasks):
                    if cancel_event is not None and cancel_event.is_set():
                        raise WorkerCancelled(index, len(tasks))
                    with self.metrics.span("shards/generate"):
                        summaries = synthesize_shard(
                            task, self.config, synthesizer, metrics=self.metrics
                        )
                        record = _write_shard(self.directory, task, summaries, self.metrics)
                    collect(record, None)

        _atomic_write(
            os.path.join(self.directory, "workloads.pkl"),
            lambda s: pickle.dump(
                [plan.workload for plan in plans], s, protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
        manifest = {
            "schema": STORE_SCHEMA,
            "format": SHARD_FORMAT_VERSION,
            "region": self.spec.name,
            "dataset_key": self.dataset_key,
            "shard_racks": self.shard_racks,
            "shard_hours": self.shard_hours,
            "config": {
                "racks_per_region": self.config.racks_per_region,
                "runs_per_rack": self.config.runs_per_rack,
                "hours": self.config.hours,
                "seed": self.config.seed,
                # Human-auditable record of the sharing policy the store
                # was generated under; identity-wise the policy is
                # already inside dataset_key (and the directory name),
                # so stores for different policies can never collide.
                "policy": json.loads(self.config.policy.canonical_json()),
            },
            "rack_names": [plan.workload.rack for plan in plans],
            "workloads_file": "workloads.pkl",
            "run_columns": list(RUN_COLUMNS),
            "burst_columns": list(BURST_COLUMNS),
            "total_runs": total,
            "shards": [records[task.key.tag] for task in tasks],
        }
        _atomic_write(
            self.manifest_path,
            lambda s: s.write(json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")),
        )
        self.metrics.incr("dataset.shards.stored", len(tasks))
        return manifest

    def open(
        self,
        jobs: int = 1,
        progress: Callable[[int, int], None] | None = None,
        pool: Executor | None = None,
        cancel_event: threading.Event | None = None,
        on_shard: Callable[[dict], None] | None = None,
    ) -> "ShardedRegionDataset":
        """Open the store, building it first on a miss."""
        manifest = self.load_manifest()
        if manifest is None:
            manifest = self.build(
                jobs=jobs,
                progress=progress,
                pool=pool,
                cancel_event=cancel_event,
                on_shard=on_shard,
            )
        return ShardedRegionDataset(store=self, manifest=manifest)


# -- the lazy dataset view ---------------------------------------------------


def _close_mmap(array: np.ndarray) -> None:
    """Release the file mapping behind a ``np.load(mmap_mode="r")`` array.

    CPython's ``mmap.mmap`` dups the file descriptor, so every live
    memmap holds one open fd until its mapping is explicitly closed —
    GC alone is too lazy for a long-lived service iterating hundreds of
    shards.  Any view taken from the array becomes invalid after this.
    """
    mapping = getattr(array, "_mmap", None)
    if mapping is not None:
        try:
            mapping.close()
        except BufferError:
            # A live view still aliases the mapping; leave it to GC
            # rather than pulling memory out from under the view.
            pass


@dataclass
class ShardFrame:
    """One shard's columnar arrays (memmap-backed) plus its record."""

    record: dict
    runs: np.ndarray  # (n_runs, len(RUN_COLUMNS)) float64, mmap
    bursts: np.ndarray  # (n_bursts, len(BURST_COLUMNS)) float64, mmap

    def run_column(self, name: str) -> np.ndarray:
        return self.runs[:, RUN_COL[name]]

    def burst_column(self, name: str) -> np.ndarray:
        return self.bursts[:, BURST_COL[name]]

    def close(self) -> None:
        """Release both file mappings (and their fds) eagerly.

        Consumers that stream shard-by-shard call this as soon as the
        shard's rows are folded into an accumulator, keeping the open-fd
        count O(1) in the number of shards instead of O(shards)-until-GC.
        """
        _close_mmap(self.runs)
        _close_mmap(self.bursts)


@dataclass
class ShardedRegionDataset:
    """Lazy region-day view over a shard store.

    Duck-types the parts of :class:`RegionDataset` the experiment layer
    uses (``region``, ``summaries``, ``workloads``, ``table1_row``) but
    computes aggregations **streamingly**, one shard at a time, through
    the mergeable partials of :mod:`repro.analysis.streaming`.
    Accessing :attr:`summaries` materializes every shard and is the
    compatibility path for analyses not yet converted to streaming.
    """

    store: RegionShardStore
    manifest: dict
    _summaries: list[RunSummary] | None = field(default=None, repr=False)
    _workloads: list[RackWorkload] | None = field(default=None, repr=False)

    @property
    def region(self) -> str:
        return self.manifest["region"]

    @property
    def rack_names(self) -> list[str]:
        return self.manifest["rack_names"]

    @property
    def metrics(self) -> Metrics:
        return self.store.metrics

    # -- shard iteration -------------------------------------------------

    def iter_frames(self) -> Iterator[ShardFrame]:
        """Memmap-backed columnar frames, shard by shard.

        Each frame holds two open fds until its :meth:`ShardFrame.close`
        is called; the streaming consumers below close every frame as
        soon as it is folded, and callers iterating directly should do
        the same.
        """
        for record in self.manifest["shards"]:
            with self.metrics.span("shards/load"):
                runs = np.load(
                    os.path.join(self.store.directory, record["files"]["runs"]),
                    mmap_mode="r",
                )
                bursts = np.load(
                    os.path.join(self.store.directory, record["files"]["bursts"]),
                    mmap_mode="r",
                )
            self.metrics.incr("dataset.shards.loaded")
            yield ShardFrame(record=record, runs=runs, bursts=bursts)

    def iter_shard_summaries(self) -> Iterator[tuple[dict, list[RunSummary]]]:
        """Full summary objects, one shard in memory at a time."""
        for record in self.manifest["shards"]:
            with self.metrics.span("shards/load"):
                path = os.path.join(
                    self.store.directory, record["files"]["summaries"]
                )
                with open(path, "rb") as stream:
                    summaries = pickle.load(stream)
            self.metrics.incr("dataset.shards.loaded")
            yield record, summaries

    def iter_summaries(self) -> Iterator[RunSummary]:
        """Every run summary in **global order** (rack-major, hour asc),
        holding one shard in memory at a time.

        Shards are stored (rack range major, hour band minor), so a
        rack's runs are split across hour bands; re-interleaving needs
        the shards of one rack range open together — that is one
        rack-range stripe, still far below whole-region footprint.
        """
        stripes: dict[int, list[dict]] = {}
        for record in self.manifest["shards"]:
            stripes.setdefault(record["rack_lo"], []).append(record)
        for rack_lo in sorted(stripes):
            per_rack: dict[int, list[tuple[int, RunSummary]]] = {}
            for record in sorted(stripes[rack_lo], key=lambda r: r["hour_lo"]):
                with self.metrics.span("shards/load"):
                    path = os.path.join(
                        self.store.directory, record["files"]["summaries"]
                    )
                    with open(path, "rb") as stream:
                        summaries = pickle.load(stream)
                runs = np.load(
                    os.path.join(self.store.directory, record["files"]["runs"]),
                    mmap_mode="r",
                )
                self.metrics.incr("dataset.shards.loaded")
                # astype copies, so the mapping (and its fd) can be
                # released before the next shard is opened.
                rack_ids = runs[:, RUN_COL["rack_id"]].astype(np.int64)
                hours = runs[:, RUN_COL["hour"]].astype(np.int64)
                _close_mmap(runs)
                for rack_id, hour, summary in zip(rack_ids, hours, summaries):
                    per_rack.setdefault(int(rack_id), []).append((int(hour), summary))
            for rack_id in sorted(per_rack):
                for _hour, summary in sorted(per_rack[rack_id], key=lambda p: p[0]):
                    yield summary

    # -- RegionDataset compatibility -------------------------------------

    @property
    def summaries(self) -> list[RunSummary]:
        """Materialized full summary list (legacy compatibility path)."""
        if self._summaries is None:
            self._summaries = list(self.iter_summaries())
        return self._summaries

    @property
    def workloads(self) -> list[RackWorkload]:
        if self._workloads is None:
            path = os.path.join(
                self.store.directory, self.manifest["workloads_file"]
            )
            with open(path, "rb") as stream:
                self._workloads = pickle.load(stream)
        return self._workloads

    def to_region_dataset(self) -> RegionDataset:
        """Materialize the equivalent in-memory :class:`RegionDataset`."""
        return RegionDataset(
            region=self.region, summaries=self.summaries, workloads=self.workloads
        )

    # -- streaming aggregations ------------------------------------------

    def _merge_frames(self, make, feed):
        """Run one accumulator per shard and fold them left-to-right —
        the associative-merge shape a distributed reducer would use."""
        merged = None
        for frame in self.iter_frames():
            partial = make()
            try:
                feed(partial, frame)
            finally:
                # Accumulators copy out of memmap-backed blocks (see
                # _RowBlocks._materialized), so the shard's fds can be
                # released the moment its rows are folded.
                frame.close()
            with self.metrics.span("shards/merge"):
                if merged is None:
                    merged = partial
                else:
                    merged.merge(partial)
                self.metrics.incr("dataset.shards.merged")
        if merged is None:
            merged = make()
        return merged

    def table1_row(self) -> DatasetSummary:
        names = np.asarray(self.rack_names)

        def feed(acc: Table1Accumulator, frame: ShardFrame) -> None:
            rack_ids = frame.run_column("rack_id").astype(np.int64)
            acc.add_columns(
                names[rack_ids],
                frame.run_column("servers"),
                frame.run_column("bursty_server_runs"),
                frame.run_column("n_bursts"),
            )

        return self._merge_frames(lambda: Table1Accumulator(self.region), feed).finalize()

    def rack_profiles(self, hours: set[int] | None = None):
        names = np.asarray(self.rack_names)
        region = self.region

        def feed(acc: RackProfileAccumulator, frame: ShardFrame) -> None:
            rack_ids = frame.run_column("rack_id").astype(np.int64)
            acc.add_columns(
                region,
                names[rack_ids],
                frame.run_column("hour").astype(np.int64),
                frame.run_column("contention_mean"),
                frame.run_column("switch_discard_bytes"),
                frame.run_column("switch_ingress_bytes"),
                frame.run_column("distinct_tasks"),
                frame.run_column("dominant_share"),
                frame.run_column("colocated"),
            )

        return self._merge_frames(
            lambda: RackProfileAccumulator(hours=hours), feed
        ).finalize()

    def hourly_boxes(self, racks: set[str] | None = None):
        names = np.asarray(self.rack_names)

        def feed(acc: HourlyBoxAccumulator, frame: ShardFrame) -> None:
            rack_ids = frame.run_column("rack_id").astype(np.int64)
            acc.add_columns(
                names[rack_ids],
                frame.run_column("hour").astype(np.int64),
                frame.run_column("contention_mean"),
            )

        return self._merge_frames(lambda: HourlyBoxAccumulator(racks=racks), feed).finalize()

    def run_contention(self) -> RunContentionView:
        names = np.asarray(self.rack_names)

        def feed(acc: RunContentionAccumulator, frame: ShardFrame) -> None:
            rack_ids = frame.run_column("rack_id").astype(np.int64)
            acc.add_columns(
                names[rack_ids],
                frame.run_column("hour").astype(np.int64),
                frame.run_column("contention_min_active"),
                frame.run_column("contention_p90"),
            )

        return self._merge_frames(lambda: RunContentionAccumulator(), feed).finalize()

    def burst_contention(self) -> BurstContentionView:
        names = np.asarray(self.rack_names)

        def feed(acc: BurstContentionAccumulator, frame: ShardFrame) -> None:
            if frame.bursts.shape[0] == 0:
                return
            run_rows = frame.burst_column("run_row").astype(np.int64)
            rack_ids = frame.runs[run_rows, RUN_COL["rack_id"]].astype(np.int64)
            hours = frame.runs[run_rows, RUN_COL["hour"]].astype(np.int64)
            # Sub-key: preserve intra-run burst order under the stable
            # global (rack, hour, sub) sort.
            acc.add_columns(
                names[rack_ids],
                hours,
                frame.burst_column("burst_index").astype(np.int64),
                frame.burst_column("max_contention"),
                frame.burst_column("lossy"),
                frame.burst_column("first_loss_contention"),
            )

        return self._merge_frames(lambda: BurstContentionAccumulator(), feed).finalize()

    def hour_counts(self) -> dict[int, int]:
        """Runs per hour — the busy-hour fallback needs coverage counts."""
        counts: dict[int, int] = {}
        for frame in self.iter_frames():
            try:
                hours, per_hour = np.unique(
                    frame.run_column("hour").astype(np.int64), return_counts=True
                )
            finally:
                frame.close()
            for hour, count in zip(hours.tolist(), per_hour.tolist()):
                counts[hour] = counts.get(hour, 0) + count
        return counts


def generate_region_shards(
    spec: RegionSpec,
    config: FleetConfig,
    store_dir: str,
    shard_racks: int = DEFAULT_SHARD_RACKS,
    shard_hours: int = DEFAULT_SHARD_HOURS,
    jobs: int = 1,
    metrics: Metrics | None = None,
    progress: Callable[[int, int], None] | None = None,
    pool: Executor | None = None,
    cancel_event: threading.Event | None = None,
    on_shard: Callable[[dict], None] | None = None,
) -> ShardedRegionDataset:
    """Build-or-open convenience wrapper around :class:`RegionShardStore`."""
    store = RegionShardStore(
        root=store_dir,
        spec=spec,
        config=config,
        shard_racks=shard_racks,
        shard_hours=shard_hours,
        metrics=metrics if metrics is not None else Metrics(),
    )
    return store.open(
        jobs=jobs,
        progress=progress,
        pool=pool,
        cancel_event=cancel_event,
        on_shard=on_shard,
    )


# Re-exported for the CLI's manifest epilogue.
__all__ = [
    "BURST_COL",
    "BURST_COLUMNS",
    "DEFAULT_SHARD_HOURS",
    "DEFAULT_SHARD_RACKS",
    "RUN_COL",
    "RUN_COLUMNS",
    "RegionShardStore",
    "ShardFrame",
    "ShardKey",
    "ShardStoreError",
    "ShardTask",
    "ShardedRegionDataset",
    "default_store_dir",
    "generate_region_shards",
    "plan_region_shards",
    "summaries_to_columns",
    "synthesize_shard",
]
