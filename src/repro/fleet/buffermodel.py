"""Vectorized fluid model of the shared ToR buffer with DCTCP sources.

One step = one Millisampler bucket (1 ms).  State is kept per server
queue; dynamic-threshold admission is computed per quadrant, exactly
mirroring :class:`repro.simnet.buffer.SharedBuffer` in fluid form.

Source adaptation — the fluid DCTCP state per server:

* ``m`` — normalized aggregate congestion window of the senders
  currently feeding this server (1 = fully open);
* ``alpha`` — their EWMA mark fraction.

The dynamics mirror real DCTCP connections:

* while senders are **active**, marked milliseconds scale ``m`` by
  ``1 - alpha/2`` and drops halve it; unmarked active milliseconds grow
  ``m`` additively;
* while senders are **idle**, state is frozen — DCTCP only updates
  alpha per window of sent data;
* when activity resumes after a gap longer than the service's
  ``sender_persistence``, the senders are *new connections*: ``m``
  resets to 1 and ``alpha`` to 0 (full fresh windows, no congestion
  memory — their slow-start overshoot is modelled on the demand side).

Services with long-lived connection pools (ML training meshes) never
hit the reset, stay adapted to their rack's persistent contention, and
therefore rarely overflow the buffer; request/response services reset
on almost every burst and arrive unadapted.  This is the mechanism
behind Section 8.1's loss inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..config import BufferConfig
from ..errors import SimulationError
from .kernels import resolve_kernel
from .kernels import fluid as _native
from .policies import DynamicThresholdPolicy, SharingPolicy


@dataclass
class FluidBufferResult:
    """Per-server, per-millisecond outputs of one fluid run.

    All arrays are ``(buckets, servers)`` float64, bytes per bucket
    except where noted.
    """

    delivered: np.ndarray  # bytes handed to each host (fresh + retx)
    delivered_retx: np.ndarray  # the retransmitted subset of delivered
    ecn_marked: np.ndarray  # delivered bytes that carried CE marks
    dropped: np.ndarray  # bytes discarded at the buffer
    queue_occupancy: np.ndarray  # end-of-bucket queue depth, bytes
    rate_multiplier: np.ndarray  # the senders' fluid DCTCP multiplier m

    @property
    def total_dropped(self) -> float:
        return float(self.dropped.sum())

    @property
    def total_delivered(self) -> float:
        return float(self.delivered.sum())


@dataclass
class FluidBufferBatchResult:
    """Outputs of one batched fluid pass over many independent runs.

    All arrays are ``(runs, buckets, servers)`` float64, where
    ``buckets`` is the padded batch length (the longest run in the
    batch).  ``lengths`` holds each run's true bucket count; buckets at
    or past a run's length are padding and carry no demand.
    """

    delivered: np.ndarray
    delivered_retx: np.ndarray
    ecn_marked: np.ndarray
    dropped: np.ndarray
    queue_occupancy: np.ndarray
    rate_multiplier: np.ndarray
    lengths: np.ndarray  # (runs,) int64 true bucket counts

    @property
    def runs(self) -> int:
        return self.delivered.shape[0]

    def per_run(self, run: int) -> FluidBufferResult:
        """The ``run``-th run's outputs, trimmed to its true length.

        Runs are independent along the leading axis, so the trimmed
        arrays are exactly what a serial :meth:`FluidBufferModel.run`
        over that run's demand produces.
        """
        length = int(self.lengths[run])
        return FluidBufferResult(
            delivered=self.delivered[run, :length].copy(),
            delivered_retx=self.delivered_retx[run, :length].copy(),
            ecn_marked=self.ecn_marked[run, :length].copy(),
            dropped=self.dropped[run, :length].copy(),
            queue_occupancy=self.queue_occupancy[run, :length].copy(),
            rate_multiplier=self.rate_multiplier[run, :length].copy(),
        )


class FluidBufferModel:
    """Fluid dynamic-threshold buffer + DCTCP sources for one rack."""

    def __init__(
        self,
        servers: int,
        buffer_config: BufferConfig | None = None,
        line_rate: float = units.SERVER_LINK_RATE,
        step: float = units.ANALYSIS_INTERVAL,
        num_quadrants: int = units.NUM_QUADRANTS,
        rtt: float = units.TYPICAL_RTT,
        dctcp_gain: float = 1.0 / 16.0,
        additive_increase: float = 0.006,
        activity_threshold_fraction: float = 0.45,
        retx_delay_steps: int = 1,
        max_offered_factor: float = 8.0,
        policy: SharingPolicy | None = None,
        responsive_sources: bool = True,
        retransmit_losses: bool = True,
        kernel: str = "auto",
    ) -> None:
        if servers <= 0:
            raise SimulationError("need at least one server")
        if retx_delay_steps < 1:
            raise SimulationError("retransmissions cannot arrive in the loss bucket")
        if not 0 < activity_threshold_fraction < 1:
            raise SimulationError("activity threshold must be a fraction of line rate")
        self.servers = servers
        self.buffer_config = buffer_config or BufferConfig()
        self.line_rate = line_rate
        self.step = step
        self.num_quadrants = min(num_quadrants, servers)
        self.rtt = rtt
        self.dctcp_gain = dctcp_gain
        self.additive_increase = additive_increase
        self.activity_threshold_fraction = activity_threshold_fraction
        self.retx_delay_steps = retx_delay_steps
        self.max_offered_factor = max_offered_factor
        #: Buffer-sharing rule; defaults to the deployed dynamic
        #: threshold with the configured alpha (Section 2.1).  Swap for
        #: any :mod:`repro.fleet.policies` implementation to ablate.
        self.policy = policy or DynamicThresholdPolicy(
            alpha=(buffer_config or BufferConfig()).alpha
        )
        #: When False, sources are open-loop (raw paced senders): the
        #: DCTCP state is frozen.  Used for cross-validation against
        #: raw packet-level bursts.
        self.responsive_sources = responsive_sources
        #: When False, dropped bytes vanish instead of re-entering as
        #: retransmissions (UDP-like traffic).
        self.retransmit_losses = retransmit_losses
        #: Bytes a server link drains per step.
        self.drain_per_step = line_rate * step
        #: Quadrant index of each server (round-robin, as in the switch).
        self.quadrant = np.arange(servers) % self.num_quadrants
        #: DCTCP decrease opportunities per bucket: one per ~4 RTTs of
        #: marked traffic.  A marked millisecond spans several windows,
        #: so an *adapted* sender pool (high alpha) throttles within a
        #: bucket or two, while a fresh pool (alpha ~ 0) barely reacts —
        #: exactly the asymmetry behind the Section 8.1 loss inversion.
        self.windows_per_step = max(1.0, step / rtt / 4.0)
        #: Resolved kernel setting (``"numpy"`` or ``"native"``); the
        #: kernel that actually runs also depends on whether the policy
        #: has a native limit rule (see :attr:`effective_kernel`).
        #: Execution detail only: both kernels are bit-identical.
        self.kernel_choice = resolve_kernel(kernel)

    @property
    def native_supported(self) -> bool:
        """True when this model's policy has a native limit rule."""
        return self.policy.native_kernel_id is not None

    @property
    def effective_kernel(self) -> str:
        """The kernel :meth:`run`/:meth:`run_batch` will execute:
        ``"native"`` only when numba resolved *and* the policy has a
        native limit rule; otherwise the numpy oracle."""
        if self.kernel_choice == "native" and self.native_supported:
            return "native"
        return "numpy"

    def _native_outputs(
        self,
        demand: np.ndarray,
        gap_steps: np.ndarray,
        initial_multiplier: np.ndarray,
        initial_alpha: np.ndarray,
    ) -> np.ndarray:
        """Run the native kernel over validated ``(runs, buckets,
        servers)`` demand; returns the packed ``(6, ...)`` output array."""
        cfg = self.buffer_config
        drain = self.drain_per_step
        params = np.zeros(_native.MAX_POLICY_PARAMS)
        params[:] = self.policy.native_kernel_params()
        consts = np.array(
            [
                float(cfg.dedicated_bytes_per_queue),
                float(cfg.shared_bytes),
                float(cfg.ecn_threshold_bytes),
                drain,
                self.max_offered_factor * drain,
                self.activity_threshold_fraction * drain,
                self.dctcp_gain,
                self.additive_increase,
                1.0 if self.responsive_sources else 0.0,
                1.0 if self.retransmit_losses else 0.0,
            ]
        )
        iconsts = np.array(
            [self.retx_delay_steps, self.num_quadrants, self.policy.native_kernel_id],
            dtype=np.int64,
        )
        return _native.fluid_run_batch(
            demand=np.ascontiguousarray(demand),
            gap_steps=np.asarray(gap_steps, dtype=np.float64),
            initial_multiplier=initial_multiplier,
            initial_alpha=initial_alpha,
            quadrant=np.ascontiguousarray(self.quadrant, dtype=np.int64),
            params=params,
            consts=consts,
            iconsts=iconsts,
            windows_per_step=self.windows_per_step,
        )

    def run(
        self,
        demand: np.ndarray,
        sender_persistence: np.ndarray,
        initial_multiplier: np.ndarray | None = None,
        initial_alpha: np.ndarray | None = None,
    ) -> FluidBufferResult:
        """Simulate ``demand`` (bytes offered per bucket per server,
        shape ``(buckets, servers)``) through the rack buffer.

        ``sender_persistence`` gives each server's sender-memory time
        constant in seconds.  ``initial_multiplier``/``initial_alpha``
        seed the DCTCP state (persistent-sender services start adapted;
        default is fresh senders).
        """
        demand = np.asarray(demand, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[1] != self.servers:
            raise SimulationError(
                f"demand must be (buckets, {self.servers}); got {demand.shape}"
            )
        if np.any(demand < 0):
            raise SimulationError("demand cannot be negative")
        persistence = np.asarray(sender_persistence, dtype=np.float64)
        if persistence.shape != (self.servers,):
            raise SimulationError("sender_persistence must have one entry per server")

        buckets = demand.shape[0]
        cfg = self.buffer_config
        dedicated = float(cfg.dedicated_bytes_per_queue)
        shared_total = float(cfg.shared_bytes)
        ecn_threshold = float(cfg.ecn_threshold_bytes)
        drain = self.drain_per_step
        max_offered = self.max_offered_factor * drain
        activity_floor = self.activity_threshold_fraction * drain
        gap_steps = np.maximum(persistence / self.step, 1.0)

        if self.effective_kernel == "native":
            out = self._native_outputs(
                demand[None],
                gap_steps,
                initial_multiplier=(
                    np.ones(self.servers)
                    if initial_multiplier is None
                    else np.asarray(initial_multiplier, dtype=np.float64)
                ),
                initial_alpha=(
                    np.zeros(self.servers)
                    if initial_alpha is None
                    else np.asarray(initial_alpha, dtype=np.float64)
                ),
            )
            return FluidBufferResult(
                delivered=out[0, 0],
                delivered_retx=out[1, 0],
                ecn_marked=out[2, 0],
                dropped=out[3, 0],
                queue_occupancy=out[4, 0],
                rate_multiplier=out[5, 0],
            )

        # State
        q_fresh = np.zeros(self.servers)
        q_retx = np.zeros(self.servers)
        backlog = np.zeros(self.servers)  # sender-side unsent bytes
        m = (
            np.ones(self.servers)
            if initial_multiplier is None
            else np.asarray(initial_multiplier, dtype=np.float64).copy()
        )
        dctcp_alpha = (
            np.zeros(self.servers)
            if initial_alpha is None
            else np.asarray(initial_alpha, dtype=np.float64).copy()
        )
        # At run start every sender pool counts as recently active: the
        # initial m/alpha already encode its adapted-or-fresh state.
        steps_since_active = np.zeros(self.servers)
        #: Consecutive steps each queue has held bytes (the sharing
        #: policies' mice/elephant signal).
        queue_active_steps = np.zeros(self.servers)
        retx_pipe = np.zeros((self.retx_delay_steps, self.servers))

        # Outputs
        delivered = np.zeros((buckets, self.servers))
        delivered_retx = np.zeros((buckets, self.servers))
        ecn_marked = np.zeros((buckets, self.servers))
        dropped = np.zeros((buckets, self.servers))
        occupancy = np.zeros((buckets, self.servers))
        multiplier = np.zeros((buckets, self.servers))

        quadrant = self.quadrant
        nq = self.num_quadrants

        for t in range(buckets):
            # --- connection churn: fresh senders after long gaps --------
            slot = t % self.retx_delay_steps
            retx_in = retx_pipe[slot].copy()
            retx_pipe[slot] = 0.0
            wants_to_send = (demand[t] + backlog + retx_in) > activity_floor
            reset = wants_to_send & (steps_since_active > gap_steps)
            if np.any(reset):
                m[reset] = 1.0
                dctcp_alpha[reset] = 0.0

            # --- sources offer traffic, throttled by their windows ------
            backlog += demand[t]
            window_budget = np.maximum(m * max_offered - retx_in, 0.0)
            offered_fresh = np.minimum(backlog, window_budget)
            backlog -= offered_fresh
            offered = offered_fresh + retx_in

            # --- policy-governed admission, per quadrant ----------------
            q_total = q_fresh + q_retx
            q_before = q_total
            shared_used = np.maximum(q_total - dedicated, 0.0)
            pool_used = np.bincount(quadrant, weights=shared_used, minlength=nq)
            threshold = self.policy.limits(
                shared_total, pool_used, quadrant, shared_used, queue_active_steps
            )
            allowed_occ = dedicated + threshold
            # Space freed by draining during the bucket also admits bytes.
            room = np.maximum(allowed_occ - q_total, 0.0) + drain
            accepted = np.minimum(offered, room)

            # Respect the absolute pool size: a quadrant's end-of-bucket
            # shared usage can never exceed its physical shared bytes.
            # Reduce acceptances in proportion to each queue's would-be
            # shared draw until the constraint holds (a couple of passes
            # suffice; the clamp to non-negative acceptance is the only
            # nonlinearity).
            base_shared = q_total - drain - dedicated
            for _ in range(3):
                new_shared = np.maximum(base_shared + accepted, 0.0)
                new_pool = np.bincount(quadrant, weights=new_shared, minlength=nq)
                excess = np.maximum(new_pool - shared_total, 0.0)
                if not np.any(excess > 0):
                    break
                with np.errstate(invalid="ignore", divide="ignore"):
                    frac = np.where(
                        new_pool[quadrant] > 0, new_shared / new_pool[quadrant], 0.0
                    )
                reduction = np.minimum(excess[quadrant] * frac, accepted)
                accepted = accepted - reduction

            drop = offered - accepted
            # Acceptance and drops split pro-rata between fresh and retx.
            with np.errstate(invalid="ignore", divide="ignore"):
                retx_frac_in = np.where(offered > 0, retx_in / offered, 0.0)
            accepted_retx = accepted * retx_frac_in

            # --- queue update and delivery -------------------------------
            q_fresh += accepted - accepted_retx
            q_retx += accepted_retx
            q_total = q_fresh + q_retx
            out = np.minimum(q_total, drain)
            with np.errstate(invalid="ignore", divide="ignore"):
                retx_share = np.where(q_total > 0, q_retx / q_total, 0.0)
            out_retx = out * retx_share
            q_fresh -= out - out_retx
            q_retx -= out_retx
            q_end = q_fresh + q_retx

            # --- ECN marking ----------------------------------------------
            # Fluid occupancy: arrivals spread over the bucket drain
            # concurrently, so the standing queue is the average of the
            # pre-arrival and post-drain depths — an arrival rate below
            # the drain rate leaves the queue (and ECN) untouched.
            mid_occupancy = 0.5 * (q_before + q_end)
            marked = mid_occupancy > ecn_threshold
            mark_fraction = np.where(marked, 1.0, 0.0)

            # --- fluid DCTCP source response ------------------------------
            # Activity follows *demand*, not throughput: a sender pool
            # throttled below the floor is still clocking ACKs and
            # growing its windows.
            active = wants_to_send & self.responsive_sources
            lost = (drop > 0) & self.responsive_sources
            # alpha only updates on active senders (per window of data).
            dctcp_alpha = np.where(
                active,
                dctcp_alpha + self.dctcp_gain * (mark_fraction - dctcp_alpha),
                dctcp_alpha,
            )
            m = np.where(
                active & marked,
                m * (1.0 - dctcp_alpha / 2.0) ** self.windows_per_step,
                m,
            )
            m = np.where(lost, m * 0.5, m)
            grow = active & ~(marked | lost)
            m = np.where(grow, m + self.additive_increase, m)
            np.clip(m, 0.05, 1.0, out=m)
            steps_since_active = np.where(active, 0.0, steps_since_active + 1.0)
            queue_busy = (q_end > 0) | (accepted > 0)
            queue_active_steps = np.where(queue_busy, queue_active_steps + 1.0, 0.0)

            # --- retransmissions: dropped bytes return one RTT+ later ----
            if self.retransmit_losses:
                retx_pipe[(t + self.retx_delay_steps) % self.retx_delay_steps] += drop

            delivered[t] = out
            delivered_retx[t] = out_retx
            ecn_marked[t] = out * mark_fraction
            dropped[t] = drop
            occupancy[t] = q_end
            multiplier[t] = m

        return FluidBufferResult(
            delivered=delivered,
            delivered_retx=delivered_retx,
            ecn_marked=ecn_marked,
            dropped=dropped,
            queue_occupancy=occupancy,
            rate_multiplier=multiplier,
        )

    def _batch_state(self, value, runs: int, default: float) -> np.ndarray:
        """Broadcast per-server or per-run initial state to (runs, servers)."""
        if value is None:
            return np.full((runs, self.servers), default)
        array = np.asarray(value, dtype=np.float64)
        if array.shape == (self.servers,):
            return np.broadcast_to(array, (runs, self.servers)).copy()
        if array.shape == (runs, self.servers):
            return array.copy()
        raise SimulationError(
            f"initial state must be ({self.servers},) or ({runs}, {self.servers}); "
            f"got {array.shape}"
        )

    def run_batch(
        self,
        demand: np.ndarray,
        sender_persistence: np.ndarray,
        initial_multiplier: np.ndarray | None = None,
        initial_alpha: np.ndarray | None = None,
        lengths: np.ndarray | None = None,
    ) -> FluidBufferBatchResult:
        """Simulate a batch of independent runs in one vectorized time loop.

        ``demand`` is ``(runs, buckets, servers)``: a stack of per-run
        demand matrices, zero-padded on the bucket axis to the longest
        run (``lengths`` gives each run's true bucket count; omitted, all
        runs span the full bucket axis).  ``sender_persistence``,
        ``initial_multiplier`` and ``initial_alpha`` accept either one
        row shared by every run (``(servers,)``) or per-run rows
        (``(runs, servers)``).

        Runs never interact: every update is elementwise over the
        leading axis and the per-quadrant pool sums are segmented per
        run, so each run's outputs are bit-identical to a serial
        :meth:`run` over its own demand — the time loop just executes
        once per *batch* instead of once per run, which is where the
        region-dataset speedup comes from (the per-bucket numpy dispatch
        overhead is amortized over the whole batch).
        """
        demand = np.asarray(demand, dtype=np.float64)
        if demand.ndim != 3 or demand.shape[2] != self.servers:
            raise SimulationError(
                f"batch demand must be (runs, buckets, {self.servers}); "
                f"got {demand.shape}"
            )
        if np.any(demand < 0):
            raise SimulationError("demand cannot be negative")
        runs, buckets, _ = demand.shape
        if runs == 0:
            raise SimulationError("batch must contain at least one run")
        persistence = np.asarray(sender_persistence, dtype=np.float64)
        if persistence.shape not in ((self.servers,), (runs, self.servers)):
            raise SimulationError(
                "sender_persistence must be per-server or per-run per-server"
            )
        if lengths is None:
            lengths_arr = np.full(runs, buckets, dtype=np.int64)
        else:
            lengths_arr = np.asarray(lengths, dtype=np.int64)
            if lengths_arr.shape != (runs,):
                raise SimulationError("lengths must have one entry per run")
            if np.any(lengths_arr < 1) or np.any(lengths_arr > buckets):
                raise SimulationError("run lengths must be in [1, buckets]")

        cfg = self.buffer_config
        dedicated = float(cfg.dedicated_bytes_per_queue)
        shared_total = float(cfg.shared_bytes)
        ecn_threshold = float(cfg.ecn_threshold_bytes)
        drain = self.drain_per_step
        max_offered = self.max_offered_factor * drain
        activity_floor = self.activity_threshold_fraction * drain
        gap_steps = np.maximum(persistence / self.step, 1.0)

        if self.effective_kernel == "native":
            out = self._native_outputs(
                demand,
                gap_steps,
                initial_multiplier=self._batch_state(initial_multiplier, runs, 1.0),
                initial_alpha=self._batch_state(initial_alpha, runs, 0.0),
            )
            return FluidBufferBatchResult(
                delivered=out[0],
                delivered_retx=out[1],
                ecn_marked=out[2],
                dropped=out[3],
                queue_occupancy=out[4],
                rate_multiplier=out[5],
                lengths=lengths_arr,
            )

        # State, one row per run.
        q_fresh = np.zeros((runs, self.servers))
        q_retx = np.zeros((runs, self.servers))
        backlog = np.zeros((runs, self.servers))
        m = self._batch_state(initial_multiplier, runs, 1.0)
        dctcp_alpha = self._batch_state(initial_alpha, runs, 0.0)
        steps_since_active = np.zeros((runs, self.servers))
        queue_active_steps = np.zeros((runs, self.servers))
        retx_pipe = np.zeros((self.retx_delay_steps, runs, self.servers))

        # Outputs
        delivered = np.zeros((runs, buckets, self.servers))
        delivered_retx = np.zeros((runs, buckets, self.servers))
        ecn_marked = np.zeros((runs, buckets, self.servers))
        dropped = np.zeros((runs, buckets, self.servers))
        occupancy = np.zeros((runs, buckets, self.servers))
        multiplier = np.zeros((runs, buckets, self.servers))

        quadrant = self.quadrant
        nq = self.num_quadrants
        # Flattened (run, quadrant) bin index per (run, server) cell: the
        # per-quadrant pool sums of every run compute in one bincount.
        flat_quadrant = (
            np.arange(runs, dtype=np.int64)[:, None] * nq + quadrant[None, :]
        ).ravel()
        flat_bins = runs * nq

        def pool_sums(per_queue: np.ndarray) -> np.ndarray:
            """Segmented per-(run, quadrant) sums, shape (runs, nq).

            ``np.bincount`` accumulates weights in input order, so each
            bin sums its servers in ascending order — the same
            accumulation order as the serial per-run bincount, keeping
            the batched floats bit-identical.
            """
            return np.bincount(
                flat_quadrant, weights=per_queue.ravel(), minlength=flat_bins
            ).reshape(runs, nq)

        for t in range(buckets):
            demand_t = demand[:, t, :]
            # --- connection churn: fresh senders after long gaps --------
            slot = t % self.retx_delay_steps
            retx_in = retx_pipe[slot].copy()
            retx_pipe[slot] = 0.0
            wants_to_send = (demand_t + backlog + retx_in) > activity_floor
            reset = wants_to_send & (steps_since_active > gap_steps)
            if np.any(reset):
                m[reset] = 1.0
                dctcp_alpha[reset] = 0.0

            # --- sources offer traffic, throttled by their windows ------
            backlog += demand_t
            window_budget = np.maximum(m * max_offered - retx_in, 0.0)
            offered_fresh = np.minimum(backlog, window_budget)
            backlog -= offered_fresh
            offered = offered_fresh + retx_in

            # --- policy-governed admission, per quadrant ----------------
            q_total = q_fresh + q_retx
            q_before = q_total
            shared_used = np.maximum(q_total - dedicated, 0.0)
            pool_used = pool_sums(shared_used)
            threshold = self.policy.limits_batch(
                shared_total, pool_used, quadrant, shared_used, queue_active_steps
            )
            allowed_occ = dedicated + threshold
            room = np.maximum(allowed_occ - q_total, 0.0) + drain
            accepted = np.minimum(offered, room)

            base_shared = q_total - drain - dedicated
            for _ in range(3):
                new_shared = np.maximum(base_shared + accepted, 0.0)
                new_pool = pool_sums(new_shared)
                excess = np.maximum(new_pool - shared_total, 0.0)
                if not np.any(excess > 0):
                    break
                pool_per_queue = new_pool[:, quadrant]
                with np.errstate(invalid="ignore", divide="ignore"):
                    frac = np.where(
                        pool_per_queue > 0, new_shared / pool_per_queue, 0.0
                    )
                reduction = np.minimum(excess[:, quadrant] * frac, accepted)
                accepted = accepted - reduction

            drop = offered - accepted
            with np.errstate(invalid="ignore", divide="ignore"):
                retx_frac_in = np.where(offered > 0, retx_in / offered, 0.0)
            accepted_retx = accepted * retx_frac_in

            # --- queue update and delivery -------------------------------
            q_fresh += accepted - accepted_retx
            q_retx += accepted_retx
            q_total = q_fresh + q_retx
            out = np.minimum(q_total, drain)
            with np.errstate(invalid="ignore", divide="ignore"):
                retx_share = np.where(q_total > 0, q_retx / q_total, 0.0)
            out_retx = out * retx_share
            q_fresh -= out - out_retx
            q_retx -= out_retx
            q_end = q_fresh + q_retx

            # --- ECN marking ----------------------------------------------
            mid_occupancy = 0.5 * (q_before + q_end)
            marked = mid_occupancy > ecn_threshold
            mark_fraction = np.where(marked, 1.0, 0.0)

            # --- fluid DCTCP source response ------------------------------
            active = wants_to_send & self.responsive_sources
            lost = (drop > 0) & self.responsive_sources
            dctcp_alpha = np.where(
                active,
                dctcp_alpha + self.dctcp_gain * (mark_fraction - dctcp_alpha),
                dctcp_alpha,
            )
            m = np.where(
                active & marked,
                m * (1.0 - dctcp_alpha / 2.0) ** self.windows_per_step,
                m,
            )
            m = np.where(lost, m * 0.5, m)
            grow = active & ~(marked | lost)
            m = np.where(grow, m + self.additive_increase, m)
            np.clip(m, 0.05, 1.0, out=m)
            steps_since_active = np.where(active, 0.0, steps_since_active + 1.0)
            queue_busy = (q_end > 0) | (accepted > 0)
            queue_active_steps = np.where(queue_busy, queue_active_steps + 1.0, 0.0)

            # --- retransmissions: dropped bytes return one RTT+ later ----
            if self.retransmit_losses:
                retx_pipe[(t + self.retx_delay_steps) % self.retx_delay_steps] += drop

            delivered[:, t, :] = out
            delivered_retx[:, t, :] = out_retx
            ecn_marked[:, t, :] = out * mark_fraction
            dropped[:, t, :] = drop
            occupancy[:, t, :] = q_end
            multiplier[:, t, :] = m

        return FluidBufferBatchResult(
            delivered=delivered,
            delivered_retx=delivered_retx,
            ecn_marked=ecn_marked,
            dropped=dropped,
            queue_occupancy=occupancy,
            rate_multiplier=multiplier,
            lengths=lengths_arr,
        )
