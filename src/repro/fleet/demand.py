"""Per-server traffic demand synthesis.

Turns a rack's task placement into the fluid model's inputs: a
``(buckets, servers)`` matrix of offered bytes per millisecond, true
active-connection counts, and per-server sender-persistence constants.

Burst anatomy (per burst):

* arrival time — Poisson process at the task's diurnal-scaled rate;
* volume — lognormal (service-specific median/sigma);
* body intensity — clipped normal around the service mean, as a
  fraction of the server line rate;
* **slow-start overshoot** — the first couple of milliseconds arrive
  faster than the body, scaled by the burst's fan-in (many fresh DCTCP
  senders ramping together overshoot hardest; Section 3's heavy-incast
  problem).  The fluid DCTCP multiplier in the buffer model damps this
  for services whose senders stay adapted.

Contention emerges from three synchronization channels: bursts of one
*task* partially align on shared request/exchange waves (co-located
placements fire together), a smaller fraction align on *rack-wide*
waves (fan-in from common upstream aggregators), and the rest are
independent — plus sheer density.  Per-server burst rates are
heavy-tailed, and each run draws a rack-level load factor, giving the
run-to-run variation behind Figures 12 and 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..errors import SimulationError
from ..workload.region import RackWorkload
from ..workload.services import ServiceSpec


@dataclass
class ServerDemand:
    """Fluid-model inputs for one rack run."""

    #: Offered bytes per bucket per server, (buckets, servers).
    demand: np.ndarray
    #: True active connection count per bucket per server.
    connections: np.ndarray
    #: Per-server sender-persistence time constants (seconds).
    persistence: np.ndarray
    #: Initial DCTCP rate multiplier per server (adapted for
    #: persistent-sender services, fully open otherwise).
    initial_multiplier: np.ndarray
    #: Initial DCTCP EWMA mark fraction (warm for persistent services,
    #: whose connections predate the run).
    initial_alpha: np.ndarray


class DemandModel:
    """Generates :class:`ServerDemand` for rack runs."""

    def __init__(
        self,
        step: float = units.ANALYSIS_INTERVAL,
        line_rate: float = units.SERVER_LINK_RATE,
        overshoot_scale: float = 0.4,
        overshoot_buckets: int = 2,
        shared_task_sync: float = 0.45,
        rack_sync: float = 0.15,
        rate_tail_sigma: float = 1.0,
        adapted_multiplier: float = 0.15,
    ) -> None:
        if overshoot_scale < 0:
            raise SimulationError("overshoot scale cannot be negative")
        if overshoot_buckets < 1:
            raise SimulationError("overshoot must span at least one bucket")
        if not 0 <= shared_task_sync <= 1 or not 0 <= rack_sync <= 1:
            raise SimulationError("sync fractions must be in [0, 1]")
        if shared_task_sync + rack_sync > 1:
            raise SimulationError("sync fractions cannot sum above 1")
        self.step = step
        self.line_rate = line_rate
        self.drain = line_rate * step
        self.overshoot_scale = overshoot_scale
        self.overshoot_buckets = overshoot_buckets
        # Geometric decay of the overshoot region; constant per model,
        # hoisted out of the per-burst profile call (plain floats: the
        # profile's hot path is scalar arithmetic).
        self._decay_powers = [0.5**bucket for bucket in range(overshoot_buckets)]
        self.shared_task_sync = shared_task_sync
        self.rack_sync = rack_sync
        self.rate_tail_sigma = rate_tail_sigma
        self.adapted_multiplier = adapted_multiplier

    # -- burst primitives ----------------------------------------------------

    def _burst_profile(
        self, volume: float, intensity: float, overshoot: float
    ) -> np.ndarray:
        """Byte arrivals per bucket for one burst of ``volume`` bytes.

        The first ``overshoot_buckets`` buckets carry the geometrically
        decaying overshoot (``0.5**bucket``) on top of the constant body
        rate, then the body rate runs until the volume is spent.

        Two regimes, both bit-identical to the historical bucket-by-
        bucket loop: the overshoot region plus a few body buckets run as
        scalar arithmetic (the median burst is one or two buckets, where
        array allocation costs more than it saves), and anything longer
        finishes in one ``np.subtract.accumulate`` over the constant
        body rate — the same left-to-right subtraction order, so the
        final partial bucket holds the identical floating-point
        remainder.
        """
        if volume <= 0:
            return np.zeros(0)
        body_rate = intensity * self.drain
        over = self.overshoot_buckets

        # Scalar regime: the decaying head and the first few body
        # buckets, exactly as the historical loop wrote them.
        head_limit = over + 8
        head: list[float] = []
        remaining = volume
        bucket = 0
        while remaining > 0 and bucket < head_limit:
            if bucket < over:
                rate = body_rate * (1.0 + (overshoot - 1.0) * self._decay_powers[bucket])
            else:
                rate = body_rate
            take = min(remaining, rate)
            head.append(take)
            remaining -= take
            bucket += 1
        if remaining <= 0:
            return np.array(head)

        # Vectorized regime: every further bucket drains body_rate, so
        # the rest of the sequential subtraction collapses into one
        # accumulate.  ceil(remaining / body_rate) + slack bounds the
        # length; the historical loop's runaway guard capped profiles at
        # 10_000 buckets, so never search further than that.
        if body_rate > 0:
            tail_estimate = int(np.ceil(remaining / body_rate)) + 2
        else:
            tail_estimate = 10_001
        tail_buckets = min(10_001, max(tail_estimate, 0))
        # tail[k] = bytes left after k more body buckets, subtracted in
        # the same left-to-right order as the historical loop (the final
        # partial bucket is that sequence's exact remainder).
        tail = np.empty(1 + tail_buckets)
        tail[0] = remaining
        tail[1:] = body_rate
        np.subtract.accumulate(tail, out=tail)
        exhausted = np.nonzero(tail <= 0)[0]
        if len(exhausted) == 0 or head_limit + exhausted[0] > 10_000:
            raise SimulationError("burst profile failed to terminate")
        buckets = int(exhausted[0])
        profile = np.empty(head_limit + buckets)
        profile[:head_limit] = head
        profile[head_limit:] = body_rate
        # The last bucket takes whatever the sequential subtraction left.
        profile[-1] = tail[buckets - 1]
        return profile

    def _draw_burst_starts(
        self,
        spec: ServiceSpec,
        buckets: int,
        load: float,
        rng: np.random.Generator,
        task_phase: np.ndarray | None,
        rack_phase: np.ndarray,
        rate_multiplier: float,
    ) -> np.ndarray:
        """Burst start buckets: Poisson arrivals, partially synchronized.

        A burst aligns with one of three clocks: the *task's* shared
        phase (instances answering the same request waves / exchanging
        gradients in lockstep), the *rack's* phase (fan-in from common
        upstream aggregators hitting many services at once), or its own
        independent timing.  Synchronization is what turns per-server
        duty cycles into simultaneous buffer contention.
        """
        duration = buckets * self.step
        lam = spec.burst_rate * load * duration * rate_multiplier
        count = rng.poisson(lam)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        # Long-lived pools (collectives, streaming reads) stagger their
        # exchanges across peers; fresh request/response fan-in aligns
        # tightly on the triggering request wave.
        jitter = 16 if spec.sender_persistence >= 1.0 else 8
        choice = rng.random(count)
        starts = rng.integers(0, buckets, size=count)
        rack_aligned = choice < self.rack_sync
        if rack_aligned.any() and len(rack_phase) > 0:
            picks = rack_phase[rng.integers(0, len(rack_phase), size=count)]
            starts = np.where(
                rack_aligned, picks + rng.integers(0, jitter, size=count), starts
            )
        task_aligned = (choice >= self.rack_sync) & (
            choice < self.rack_sync + self.shared_task_sync
        )
        if task_aligned.any() and task_phase is not None and len(task_phase) > 0:
            picks = task_phase[rng.integers(0, len(task_phase), size=count)]
            starts = np.where(
                task_aligned, picks + rng.integers(0, jitter, size=count), starts
            )
        return np.clip(starts, 0, buckets - 1)

    def _serialize_starts(
        self, starts: np.ndarray, spec: ServiceSpec, buckets: int
    ) -> np.ndarray:
        """Push overlapping burst starts back so transfers on one host
        follow each other (separated by the typical burst length)."""
        if len(starts) == 0:
            return starts
        typical_length = max(
            1,
            int(
                np.exp(spec.burst_volume_log_mu)
                / (spec.burst_intensity_mean * self.drain)
            ),
        )
        ordered = np.sort(starts)
        serialized = []
        next_free = 0
        for start in ordered:
            start = max(int(start), next_free)
            if start >= buckets:
                break
            serialized.append(start)
            next_free = start + typical_length
        return np.array(serialized, dtype=np.int64)

    # -- rack-level generation ---------------------------------------------

    def generate(
        self,
        workload: RackWorkload,
        hour: int,
        buckets: int,
        rng: np.random.Generator,
    ) -> ServerDemand:
        """Synthesize one run's demand for every server in the rack."""
        if buckets <= 0:
            raise SimulationError("bucket count must be positive")
        placement = workload.placement
        servers = placement.servers

        demand = np.zeros((buckets, servers))
        connections = np.zeros((buckets, servers))
        persistence = np.zeros(servers)
        initial_m = np.ones(servers)
        initial_alpha = np.zeros(servers)

        # Shared burst phases per task: instances of one task tend to
        # receive fan-in waves together (shards answering the same
        # requests, trainers exchanging gradients in lockstep).
        # Iterate tasks in sorted order: set iteration follows Python's
        # salted string hash and would consume RNG draws in a
        # process-dependent order, breaking reproducibility.
        task_phases: dict[str, np.ndarray] = {}
        for task in sorted(set(placement.tasks)):
            wave_count = rng.poisson(max(1.0, buckets * self.step * 8.0))
            task_phases[task] = rng.integers(0, buckets, size=max(wave_count, 1))
        rack_wave_count = rng.poisson(max(1.0, buckets * self.step * 5.0))
        rack_phase = rng.integers(0, buckets, size=max(rack_wave_count, 1))

        # Run-to-run load swings: the same rack is sometimes nearly idle
        # and sometimes hot (Section 7.3's 6.2% zero-activity runs, and
        # the day-long min/max bands of Figure 12).
        rack_load = float(rng.lognormal(mean=-0.1, sigma=0.45))

        for index in range(servers):
            spec = placement.services[index]
            task = placement.tasks[index]
            load = (
                workload.diurnal.scaled(spec.diurnal_sensitivity).at_hour(hour)
                * workload.load_scale
                * rack_load
            )
            persistence[index] = spec.sender_persistence
            persistent_senders = spec.sender_persistence >= 1.0
            if persistent_senders:
                # Long-lived connection pools predate the run: their
                # windows and mark-fraction EWMA are already adapted.
                initial_m[index] = self.adapted_multiplier
                initial_alpha[index] = 0.5

            # -- baseline smooth traffic --------------------------------
            # Jitter is mean-one with a light tail: baseline traffic must
            # never cross the 50%-utilization burst threshold on its own.
            base = spec.baseline_utilization * load * self.drain
            if base > 0:
                jitter = rng.lognormal(mean=-0.06, sigma=0.35, size=buckets)
                demand[:, index] += base * jitter
            connections_base = spec.base_connections
            connections[:, index] += np.maximum(
                rng.normal(connections_base, connections_base * 0.2, size=buckets), 0.0
            )

            # -- active episode? ------------------------------------------
            # Server runs are bimodal: a server is either in an active
            # exchange episode (bursting at the task's full rate) or
            # nearly idle for the whole 2 s window (Section 5: 34% of
            # server runs have bursty ingress).  Load shifts the odds.
            p_active = min(0.95, spec.active_probability * load**0.25)
            if rng.random() >= p_active:
                continue

            # -- bursts ---------------------------------------------------
            # Active servers differ wildly in how hard they burst (the
            # heavy tail behind Figure 6's 7.5-vs-39.8 median/p90 gap).
            # min/max instead of np.clip: identical values (comparisons
            # are exact) without the scalar-ufunc dispatch cost.
            rate_multiplier = float(
                min(max(rng.lognormal(mean=-0.35, sigma=self.rate_tail_sigma), 0.05), 4.0)
            )
            starts = self._draw_burst_starts(
                spec, buckets, load, rng, task_phases.get(task), rack_phase,
                rate_multiplier,
            )
            if persistent_senders:
                # Long-lived pools (ML collectives, storage streams)
                # serialize transfers on a host: a new exchange waits for
                # the previous one instead of piling onto the same NIC.
                # Fresh request/response fan-in does stack — that *is*
                # incast, and it is where the overshoot loss lives.
                starts = self._serialize_starts(starts, spec, buckets)
            for start in starts:
                volume = rng.lognormal(
                    spec.burst_volume_log_mu, spec.burst_volume_log_sigma
                )
                intensity = float(
                    min(
                        max(
                            rng.normal(
                                spec.burst_intensity_mean, spec.burst_intensity_std
                            ),
                            0.55,
                        ),
                        1.25,
                    )
                )
                fanin = max(
                    1.0, spec.burst_connections * rng.lognormal(mean=0.0, sigma=0.35)
                )
                # Slow-start overshoot: fresh senders ramp exponentially
                # and overshoot together; adapted long-lived connection
                # pools (persistent services) pace near their converged
                # windows and barely overshoot.
                scale = self.overshoot_scale * (0.15 if persistent_senders else 1.0)
                overshoot = 1.0 + scale * (fanin / 40.0) * rng.lognormal(
                    mean=0.0, sigma=0.5
                )
                profile = self._burst_profile(volume, intensity, overshoot)
                end = min(int(start) + len(profile), buckets)
                span = end - int(start)
                if span <= 0:
                    continue
                demand[int(start) : end, index] += profile[:span]
                connections[int(start) : end, index] = np.maximum(
                    connections[int(start) : end, index], fanin
                )

        return ServerDemand(
            demand=demand,
            connections=connections,
            persistence=persistence,
            initial_multiplier=initial_m,
            initial_alpha=initial_alpha,
        )
