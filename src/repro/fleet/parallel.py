"""Process-pool fan-out for region-day synthesis.

Dataset generation is embarrassingly parallel once every (rack, run)
pair owns an independent seed stream (see the seeding notes in
:mod:`repro.fleet.dataset`): each worker synthesizes whole rack days
and reduces every raw run to its :class:`RunSummary` before returning,
so peak memory stays one raw rack run per worker and only the small
summaries cross the process boundary.

Determinism is structural, not incidental — workers never share RNG
state, and results are reassembled in rack order — so a region-day is
byte-identical for any job count.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable

from ..analysis.summary import RunSummary
from ..config import FleetConfig
from ..errors import ConfigError
from ..obs.metrics import Metrics
from ..workload.region import RegionSpec
from .dataset import RackRunPlan, RegionDataset, plan_region, synthesize_rack_day
from .rackrun import RackRunSynthesizer


def resolve_jobs(jobs: int) -> int:
    """Resolve a ``--jobs`` value: 0 means every available core."""
    if jobs < 0:
        raise ConfigError("jobs cannot be negative")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _rack_day_task(
    plan: RackRunPlan, config: FleetConfig, synthesizer: RackRunSynthesizer | None
) -> tuple[int, list[RunSummary], dict]:
    """Top-level worker entry point (must be picklable).

    Stage timers (demand/fluid/assemble/summarize) are recorded into a
    worker-local registry and returned as a snapshot so the parent can
    merge them; telemetry crosses the process boundary as plain data,
    never as shared state.
    """
    worker_metrics = Metrics()
    summaries = synthesize_rack_day(plan, config, synthesizer, metrics=worker_metrics)
    return plan.rack_index, summaries, worker_metrics.snapshot()


def generate_region_dataset_parallel(
    spec: RegionSpec,
    config: FleetConfig,
    jobs: int,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Metrics | None = None,
) -> RegionDataset:
    """Generate one region-day with ``jobs`` worker processes.

    Produces exactly the same :class:`RegionDataset` as the serial path
    in :func:`repro.fleet.dataset.generate_region_dataset`.  ``metrics``
    stays in the parent process (only plans and summaries cross the
    process boundary); it records the fan-out span and per-rack-day
    task counts.
    """
    jobs = resolve_jobs(jobs)
    metrics = metrics if metrics is not None else Metrics()
    plans = plan_region(spec, config)
    if not plans:
        # A region that plans zero racks is a valid degenerate scale;
        # ProcessPoolExecutor(max_workers=0) would raise, so short-circuit
        # to the same empty dataset the serial path returns.
        metrics.incr("dataset.generated_runs", 0)
        return RegionDataset(region=spec.name, summaries=[], workloads=[])
    total = sum(len(plan.hours) for plan in plans)
    per_rack: list[list[RunSummary] | None] = [None] * len(plans)
    done = 0
    # Keep the in-flight queue shallow so a huge region never has every
    # plan pickled and queued at once.
    window = 2 * jobs
    next_plan = 0
    with metrics.span(f"generate/{spec.name}"):
        with ProcessPoolExecutor(max_workers=min(jobs, len(plans))) as pool:
            futures = set()
            while futures or next_plan < len(plans):
                while next_plan < len(plans) and len(futures) < window:
                    futures.add(
                        pool.submit(_rack_day_task, plans[next_plan], config, synthesizer)
                    )
                    next_plan += 1
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    rack_index, summaries, worker_snapshot = future.result()
                    per_rack[rack_index] = summaries
                    done += len(summaries)
                    metrics.incr("dataset.parallel.rack_days")
                    metrics.merge(worker_snapshot)
                    if progress is not None:
                        progress(done, total)
    summaries = [summary for rack in per_rack for summary in (rack or [])]
    metrics.incr("dataset.generated_runs", len(summaries))
    return RegionDataset(
        region=spec.name,
        summaries=summaries,
        workloads=[plan.workload for plan in plans],
    )
