"""Process-pool fan-out for region-day synthesis.

Dataset generation is embarrassingly parallel once every (rack, run)
pair owns an independent seed stream (see the seeding notes in
:mod:`repro.fleet.dataset`): each worker synthesizes whole rack days
and reduces every raw run to its :class:`RunSummary` before returning,
so peak memory stays one raw rack run per worker and only the small
summaries cross the process boundary.

Determinism is structural, not incidental — workers never share RNG
state, and results are reassembled in rack order — so a region-day is
byte-identical for any job count.

:func:`run_windowed` is the shared fan-out substrate (also used by the
shard store and the query service).  It owns the failure semantics a
long-lived process needs:

* **fail-fast** — the first task exception cancels everything still
  queued and surfaces as :class:`~repro.errors.WorkerTaskError` naming
  the failing unit, so a crash at rack 3 of 1000 costs O(window) work,
  not O(racks);
* **crash containment** — a worker process dying abruptly
  (``BrokenProcessPool``) is retried once on a fresh pool when the
  substrate owns the pool (transient death: OOM kill, stray signal);
  a second break raises :class:`~repro.errors.WorkerCrashError` listing
  the in-flight suspects;
* **graceful drain** — a ``cancel_event`` stops new submissions,
  lets in-flight work finish, and raises
  :class:`~repro.errors.WorkerCancelled` (the service's SIGTERM path).
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Executor, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence, TypeVar

from ..analysis.summary import RunSummary
from ..config import FleetConfig
from ..errors import ConfigError, WorkerCancelled, WorkerCrashError, WorkerTaskError
from ..obs.metrics import Metrics
from ..workload.region import RegionSpec
from .dataset import RackRunPlan, RegionDataset, plan_region, synthesize_rack_day
from .kernels import consume_pending, pool_initializer
from .rackrun import RackRunSynthesizer

T = TypeVar("T")


def resolve_jobs(jobs: int, reserved: int = 0) -> int:
    """Resolve a ``--jobs`` value: 0 means every available core.

    ``reserved`` subtracts cores already committed elsewhere from the
    auto-detected count — the query service passes its active request
    thread count so a persistent pool plus ``--exp-jobs`` style thread
    fan-out cannot double-subscribe the machine.  An *explicit* job
    count is honored as given (the caller said exactly what they want);
    only the ``0 = everything`` auto mode is clamped.  At least one
    worker always survives the clamp.
    """
    if jobs < 0:
        raise ConfigError("jobs cannot be negative")
    if reserved < 0:
        raise ConfigError("reserved core count cannot be negative")
    if jobs == 0:
        return max(1, (os.cpu_count() or 1) - reserved)
    return jobs


def run_windowed(
    items: Sequence[T],
    submit: Callable[[Executor, T], Future],
    handle: Callable[[T, Any], None],
    *,
    jobs: int = 1,
    window: int | None = None,
    label: Callable[[T], str] = repr,
    pool: Executor | None = None,
    retry_broken: bool = True,
    cancel_event: threading.Event | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> int:
    """Fan ``items`` out over a process pool with a shallow window.

    ``submit(executor, item)`` starts one unit of work and returns its
    future; ``handle(item, result)`` consumes each result in completion
    order.  At most ``window`` (default ``2 * jobs``) futures are in
    flight, so a huge region never has every task pickled and queued at
    once.  Returns the number of items handled.

    When ``pool`` is None the substrate creates and owns a
    ``ProcessPoolExecutor`` (``initializer``/``initargs`` run in each
    worker at fork — kernel JIT warm-up lives there); passing an
    executor (the service's persistent pool) reuses it, in which case a
    broken pool is *not* retried here — the pool's owner decides how to
    replace it — and the initializer is the pool owner's business.

    Failure semantics (see the module docstring): first task exception
    → cancel queued work, raise :class:`WorkerTaskError`; broken pool →
    one retry of the unfinished items on a fresh owned pool, then
    :class:`WorkerCrashError`; ``cancel_event`` set → drain in-flight
    work, raise :class:`WorkerCancelled`.
    """
    items = list(items)
    total = len(items)
    if total == 0:
        return 0
    jobs = resolve_jobs(jobs)
    if window is None:
        window = 2 * jobs
    if window < 1:
        raise ConfigError("window must admit at least one in-flight task")

    completed = 0
    pending: deque[int] = deque(range(total))
    retried = False
    while pending:
        owned: ProcessPoolExecutor | None = None
        executor = pool
        if executor is None:
            owned = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                initializer=initializer,
                initargs=initargs,
            )
            executor = owned
        in_flight: dict[Future, int] = {}
        drained = False
        retry_break: BrokenProcessPool | None = None
        try:
            while in_flight or (pending and not drained):
                if cancel_event is not None and cancel_event.is_set():
                    drained = True
                while pending and not drained and len(in_flight) < window:
                    index = pending.popleft()
                    try:
                        future = submit(executor, items[index])
                    except BrokenProcessPool as exc:
                        # A worker that died while the pool was idle (or
                        # between windows) breaks the pool before any
                        # future exists; same contract as a broken
                        # in-flight future.
                        unfinished = sorted((index, *in_flight.values(), *pending))
                        if owned is not None and retry_broken and not retried:
                            retried = True
                            pending = deque(unfinished)
                            retry_break = exc
                            break
                        suspects = [label(items[index])] + [
                            label(items[i]) for i in sorted(in_flight.values())
                        ]
                        raise WorkerCrashError(suspects, detail=str(exc)) from exc
                    in_flight[future] = index
                if retry_break is not None:
                    break
                if not in_flight:
                    break
                finished, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                for future in finished:
                    index = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        # Every in-flight future reports the same pool
                        # breakage; the true victim is unknowable, so
                        # collect every suspect before deciding.
                        unfinished = sorted((index, *in_flight.values(), *pending))
                        if owned is not None and retry_broken and not retried:
                            retried = True
                            pending = deque(unfinished)
                            retry_break = exc
                            break
                        suspects = [label(items[index])] + [
                            label(items[i]) for i in sorted(in_flight.values())
                        ]
                        raise WorkerCrashError(suspects, detail=str(exc)) from exc
                    except Exception as exc:
                        raise WorkerTaskError(label(items[index]), exc) from exc
                    handle(items[index], result)
                    completed += 1
                if retry_break is not None:
                    break
        finally:
            if owned is not None:
                # cancel_futures drops everything still queued — the
                # fail-fast half of the contract; wait=False lets the
                # raising path return after at most one in-flight task
                # per worker.
                owned.shutdown(wait=False, cancel_futures=True)
            else:
                for future in in_flight:
                    future.cancel()
        if retry_break is not None:
            continue  # fresh owned pool for the unfinished items
        if drained and pending:
            raise WorkerCancelled(completed, total)
        pending.clear()
    return completed


def _rack_day_task(
    plan: RackRunPlan, config: FleetConfig, synthesizer: RackRunSynthesizer | None
) -> tuple[int, list[RunSummary], dict]:
    """Top-level worker entry point (must be picklable).

    Stage timers (demand/fluid/assemble/summarize) are recorded into a
    worker-local registry and returned as a snapshot so the parent can
    merge them; telemetry crosses the process boundary as plain data,
    never as shared state.
    """
    worker_metrics = Metrics()
    consume_pending(worker_metrics)  # pool-initializer JIT compile time
    summaries = synthesize_rack_day(plan, config, synthesizer, metrics=worker_metrics)
    return plan.rack_index, summaries, worker_metrics.snapshot()


def _plan_label(plan: RackRunPlan) -> str:
    return f"rack {plan.rack_index} ({plan.workload.rack})"


def generate_region_dataset_parallel(
    spec: RegionSpec,
    config: FleetConfig,
    jobs: int,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Metrics | None = None,
    pool: Executor | None = None,
    cancel_event: threading.Event | None = None,
) -> RegionDataset:
    """Generate one region-day with ``jobs`` worker processes.

    Produces exactly the same :class:`RegionDataset` as the serial path
    in :func:`repro.fleet.dataset.generate_region_dataset`.  ``metrics``
    stays in the parent process (only plans and results cross the
    process boundary); it records the fan-out span and per-rack-day
    task counts.

    With ``config.shm_transfer`` set, workers return their summaries
    through a preallocated ``multiprocessing.shared_memory`` segment
    (columnar float64 slots, see :mod:`repro.fleet.shm`) instead of
    pickling them over the result pipe; the decoded dataset is
    bit-identical to the pickled path, which stays available as the
    exactness oracle.

    Failure semantics come from :func:`run_windowed`: fail-fast
    :class:`WorkerTaskError` naming the failing rack, retry-once then
    :class:`WorkerCrashError` on worker death, graceful-drain
    :class:`WorkerCancelled` via ``cancel_event``.
    """
    jobs = resolve_jobs(jobs)
    metrics = metrics if metrics is not None else Metrics()
    plans = plan_region(spec, config)
    if not plans:
        # A region that plans zero racks is a valid degenerate scale;
        # ProcessPoolExecutor(max_workers=0) would raise, so short-circuit
        # to the same empty dataset the serial path returns.
        metrics.incr("dataset.generated_runs", 0)
        return RegionDataset(region=spec.name, summaries=[], workloads=[])
    total = sum(len(plan.hours) for plan in plans)
    per_rack: list[list[RunSummary] | None] = [None] * len(plans)
    progress_done = 0

    def handle_result(plan: RackRunPlan, summaries: list[RunSummary], snapshot: dict) -> None:
        nonlocal progress_done
        per_rack[plan.rack_index] = summaries
        progress_done += len(summaries)
        metrics.incr("dataset.parallel.rack_days")
        metrics.merge(snapshot)
        if progress is not None:
            progress(progress_done, total)

    window = 2 * jobs
    with metrics.span(f"generate/{spec.name}"):
        if config.shm_transfer:
            from .shm import run_plans_shm

            run_plans_shm(
                plans,
                spec,
                config,
                handle_result,
                jobs=jobs,
                window=window,
                synthesizer=synthesizer,
                metrics=metrics,
                pool=pool,
                cancel_event=cancel_event,
            )
        else:

            def handle(plan: RackRunPlan, result: tuple[int, list[RunSummary], dict]) -> None:
                _rack_index, summaries, snapshot = result
                handle_result(plan, summaries, snapshot)

            run_windowed(
                plans,
                lambda executor, plan: executor.submit(
                    _rack_day_task, plan, config, synthesizer
                ),
                handle,
                jobs=jobs,
                window=window,
                label=_plan_label,
                pool=pool,
                cancel_event=cancel_event,
                initializer=pool_initializer,
                initargs=(config.kernel,),
            )
    summaries = [summary for rack in per_rack for summary in (rack or [])]
    metrics.incr("dataset.generated_runs", len(summaries))
    return RegionDataset(
        region=spec.name,
        summaries=summaries,
        workloads=[plan.workload for plan in plans],
    )
