"""Shared-memory result transport for the dataset process pool.

The pickled result path serializes every :class:`RunSummary` (bursts,
per-server stats, contention) through the executor's result pipe — at
paper scale that is hundreds of kilobytes per rack-day crossing a
byte-copied pipe, twice (pickle + unpickle).  This module replaces the
transport, not the data: workers write their rack-day into a columnar
float64 slot of one preallocated ``multiprocessing.shared_memory``
segment and return only ``(rack_index, counts, metrics snapshot)``;
the parent decodes the slot back into summary objects.

Bit-exactness is structural:

* every numeric summary field is a float64 or an integer far below
  2**53, so the float64 columns round-trip exactly (NaN included);
* every *non*-numeric field (rack and region names, per-server task
  names, the workload ``extras``) is a pure function of the
  :class:`RackRunPlan` the parent already holds — the decoder rebuilds
  them exactly the way ``RackRunSynthesizer._assemble`` built them.

The pickled path stays wired in (``FleetConfig.shm_transfer=False``,
the default) as the bit-exactness oracle; the determinism suite
asserts fingerprint equality between the two transports.

Slots are sized from the plan: run and server-stat capacities are
exact, burst capacity is a heuristic (bursts per server-run are data-
dependent).  A rack-day that overflows its slot falls back to the
pickled transport for that one result — counted, never wrong.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Executor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable

import numpy as np

from ..analysis.bursts import Burst
from ..analysis.contention import ContentionStats
from ..analysis.summary import RunSummary, ServerRunStats
from ..config import FleetConfig
from ..errors import ConfigError
from ..obs.metrics import Metrics
from ..workload.region import RegionSpec
from .dataset import RackRunPlan, synthesize_rack_day
from .kernels import consume_pending, pool_initializer
from .rackrun import RackRunSynthesizer

#: Columnar field orders.  Append-only: the layout is process-private
#: (never persisted), but keeping encode/decode in one place depends on
#: these staying in sync with the dataclasses they project.
RUN_FIELDS: tuple[str, ...] = (
    "hour",
    "servers",
    "buckets",
    "sampling_interval",
    "contention_mean",
    "contention_min_active",
    "contention_p90",
    "contention_max",
    "contention_frac_zero",
    "switch_discard_bytes",
    "switch_ingress_bytes",
    "n_bursts",
    "n_server_stats",
)
BURST_FIELDS: tuple[str, ...] = (
    "server",
    "start",
    "length",
    "volume",
    "avg_connections",
    "retx_bytes",
    "max_contention",
    "lossy",
    "first_loss_contention",
)
STAT_FIELDS: tuple[str, ...] = (
    "server",
    "bursty",
    "avg_utilization",
    "utilization_in_bursts",
    "utilization_outside_bursts",
    "bursts_per_second",
    "conns_inside",
    "conns_outside",
    "total_in_bytes",
    "in_burst_bytes",
)

#: Expected bursts per server-run used to size the burst region of a
#: slot.  Synthetic runs land well under this; a pathological run that
#: exceeds it takes the per-result pickle fallback (counted via
#: ``dataset.shm.fallback``), so the hint trades segment size against
#: fallback frequency, never correctness.
BURSTS_PER_SERVER_RUN_HINT = 32

_ITEMSIZE = np.dtype(np.float64).itemsize


@dataclass(frozen=True)
class SlotLayout:
    """Capacities of one rack-day slot (crosses to workers, picklable)."""

    run_cap: int
    burst_cap: int
    stat_cap: int

    def __post_init__(self) -> None:
        if min(self.run_cap, self.burst_cap, self.stat_cap) < 1:
            raise ConfigError("slot capacities must be at least 1")

    @property
    def slot_floats(self) -> int:
        return (
            self.run_cap * len(RUN_FIELDS)
            + self.burst_cap * len(BURST_FIELDS)
            + self.stat_cap * len(STAT_FIELDS)
        )

    @property
    def slot_bytes(self) -> int:
        return self.slot_floats * _ITEMSIZE

    def slot_arrays(
        self, buf, slot: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(runs, bursts, stats) views into slot ``slot`` of ``buf``.

        Views alias the shared segment — callers must drop them before
        the segment is closed (the decoder copies every value out).
        """
        flat = np.frombuffer(
            buf,
            dtype=np.float64,
            count=self.slot_floats,
            offset=slot * self.slot_bytes,
        )
        runs_end = self.run_cap * len(RUN_FIELDS)
        bursts_end = runs_end + self.burst_cap * len(BURST_FIELDS)
        return (
            flat[:runs_end].reshape(self.run_cap, len(RUN_FIELDS)),
            flat[runs_end:bursts_end].reshape(self.burst_cap, len(BURST_FIELDS)),
            flat[bursts_end:].reshape(self.stat_cap, len(STAT_FIELDS)),
        )


def plan_slot_layout(
    plans: list[RackRunPlan], burst_hint: int = BURSTS_PER_SERVER_RUN_HINT
) -> SlotLayout:
    """Size one slot for the largest rack-day in ``plans``.

    Run and server-stat capacities are exact (the plan fixes both);
    only the burst capacity is heuristic.
    """
    run_cap = max(len(plan.hours) for plan in plans)
    stat_cap = max(
        len(plan.hours) * plan.workload.placement.servers for plan in plans
    )
    burst_cap = max(1, burst_hint * stat_cap)
    return SlotLayout(run_cap=max(1, run_cap), burst_cap=burst_cap, stat_cap=max(1, stat_cap))


# -- codec -------------------------------------------------------------------


def encode_rack_day(
    summaries: list[RunSummary],
    runs: np.ndarray,
    bursts: np.ndarray,
    stats: np.ndarray,
) -> tuple[int, int, int] | None:
    """Write one rack-day into a slot's arrays; None when it overflows."""
    total_bursts = sum(len(summary.bursts) for summary in summaries)
    total_stats = sum(len(summary.server_stats) for summary in summaries)
    if (
        len(summaries) > runs.shape[0]
        or total_bursts > bursts.shape[0]
        or total_stats > stats.shape[0]
    ):
        return None
    burst_row = stat_row = 0
    for row, summary in enumerate(summaries):
        contention = summary.contention
        runs[row] = (
            summary.hour,
            summary.servers,
            summary.buckets,
            summary.sampling_interval,
            contention.mean,
            contention.min_active,
            contention.p90,
            contention.max,
            contention.frac_zero,
            summary.switch_discard_bytes,
            summary.switch_ingress_bytes,
            len(summary.bursts),
            len(summary.server_stats),
        )
        for burst in summary.bursts:
            bursts[burst_row] = (
                burst.server,
                burst.start,
                burst.length,
                burst.volume,
                burst.avg_connections,
                burst.retx_bytes,
                burst.max_contention,
                burst.lossy,
                burst.first_loss_contention,
            )
            burst_row += 1
        for stat in summary.server_stats:
            stats[stat_row] = (
                stat.server,
                stat.bursty,
                stat.avg_utilization,
                stat.utilization_in_bursts,
                stat.utilization_outside_bursts,
                stat.bursts_per_second,
                stat.conns_inside,
                stat.conns_outside,
                stat.total_in_bytes,
                stat.in_burst_bytes,
            )
            stat_row += 1
    return len(summaries), burst_row, stat_row


def decode_rack_day(
    plan: RackRunPlan,
    counts: tuple[int, int, int],
    runs: np.ndarray,
    bursts: np.ndarray,
    stats: np.ndarray,
) -> list[RunSummary]:
    """Rebuild one rack-day's summaries from a slot's arrays.

    Non-numeric fields are rebuilt from ``plan.workload`` exactly the
    way ``RackRunSynthesizer._assemble`` builds them, so the decoded
    objects are value-identical to the pickled transport's.
    """
    workload = plan.workload
    tasks = workload.placement.tasks
    extras_proto = {
        "colocated": workload.colocated,
        "distinct_tasks": workload.placement.distinct_tasks(),
        "dominant_share": workload.placement.dominant_share(),
        "dominant_task": workload.placement.dominant_task(),
    }
    n_runs, n_bursts, n_stats = counts
    out: list[RunSummary] = []
    burst_row = stat_row = 0
    for row in range(n_runs):
        record = runs[row]
        run_bursts = int(record[11])
        run_stats = int(record[12])
        burst_list = [
            Burst(
                server=int(b[0]),
                start=int(b[1]),
                length=int(b[2]),
                volume=float(b[3]),
                avg_connections=float(b[4]),
                retx_bytes=float(b[5]),
                max_contention=int(b[6]),
                lossy=bool(b[7]),
                first_loss_contention=int(b[8]),
            )
            for b in bursts[burst_row : burst_row + run_bursts]
        ]
        burst_row += run_bursts
        stat_list = [
            ServerRunStats(
                server=int(s[0]),
                task=tasks[int(s[0])],
                bursty=bool(s[1]),
                avg_utilization=float(s[2]),
                utilization_in_bursts=float(s[3]),
                utilization_outside_bursts=float(s[4]),
                bursts_per_second=float(s[5]),
                conns_inside=float(s[6]),
                conns_outside=float(s[7]),
                total_in_bytes=float(s[8]),
                in_burst_bytes=float(s[9]),
            )
            for s in stats[stat_row : stat_row + run_stats]
        ]
        stat_row += run_stats
        out.append(
            RunSummary(
                rack=workload.rack,
                region=workload.region,
                hour=int(record[0]),
                servers=int(record[1]),
                buckets=int(record[2]),
                sampling_interval=float(record[3]),
                contention=ContentionStats(
                    mean=float(record[4]),
                    min_active=float(record[5]),
                    p90=float(record[6]),
                    max=float(record[7]),
                    frac_zero=float(record[8]),
                ),
                bursts=burst_list,
                server_stats=stat_list,
                switch_discard_bytes=float(record[9]),
                switch_ingress_bytes=float(record[10]),
                extras=dict(extras_proto),
            )
        )
    if burst_row != n_bursts or stat_row != n_stats:
        raise ConfigError(
            f"slot count mismatch: decoded ({burst_row}, {stat_row}) bursts/stats, "
            f"worker wrote ({n_bursts}, {n_stats})"
        )
    return out


# -- worker side -------------------------------------------------------------


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to the parent's segment without adopting its lifetime.

    CPython 3.11 registers every attach with the resource tracker
    unconditionally (the ``track=False`` knob arrived in 3.13).  Under
    fork the worker shares the parent's tracker process, so an
    unregister-after-attach would erase the *parent's* entry; under
    spawn the worker's own tracker would "reclaim" the parent-owned
    segment at worker exit.  Suppressing registration during the attach
    is correct for both topologies: the parent created the segment, the
    parent's registration stands, the parent unlinks it.  Pool workers
    are single-threaded task loops, so the brief patch window races
    with nothing.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _rack_day_shm_task(
    plan: RackRunPlan,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None,
    segment_name: str,
    slot: int,
    layout: SlotLayout,
) -> tuple[int, tuple[int, int, int] | None, list[RunSummary] | None, dict]:
    """Top-level pool entry point: synthesize, write the slot, return counts.

    On slot overflow the summaries ride back pickled (the ``fallback``
    element) — slower for that one rack-day, never wrong.
    """
    metrics = Metrics()
    consume_pending(metrics)  # pool-initializer JIT compile time
    summaries = synthesize_rack_day(plan, config, synthesizer, metrics=metrics)
    segment = _attach_segment(segment_name)
    try:
        with metrics.span("shm/encode"):
            counts = encode_rack_day(summaries, *layout.slot_arrays(segment.buf, slot))
    finally:
        segment.close()
    if counts is None:
        return plan.rack_index, None, summaries, metrics.snapshot()
    return plan.rack_index, counts, None, metrics.snapshot()


# -- parent side -------------------------------------------------------------


def run_plans_shm(
    plans: list[RackRunPlan],
    spec: RegionSpec,
    config: FleetConfig,
    handle_result: Callable[[RackRunPlan, list[RunSummary], dict], None],
    *,
    jobs: int,
    window: int | None = None,
    synthesizer: RackRunSynthesizer | None = None,
    metrics: Metrics | None = None,
    pool: Executor | None = None,
    cancel_event: threading.Event | None = None,
    burst_hint: int = BURSTS_PER_SERVER_RUN_HINT,
) -> int:
    """Fan rack-day plans out with shared-memory result transport.

    ``handle_result(plan, summaries, worker_snapshot)`` receives each
    decoded rack-day in completion order.  Failure semantics are
    :func:`repro.fleet.parallel.run_windowed`'s; slots held by work
    that was in flight when a pool broke are re-used by the retry
    (slot assignment is per rack, not per submission).
    """
    from .parallel import _plan_label, resolve_jobs, run_windowed

    if not plans:
        return 0
    jobs = resolve_jobs(jobs)
    if window is None:
        window = 2 * jobs
    metrics = metrics if metrics is not None else Metrics()
    layout = plan_slot_layout(plans, burst_hint=burst_hint)
    segment = shared_memory.SharedMemory(create=True, size=window * layout.slot_bytes)
    free_slots: deque[int] = deque(range(window))
    slot_by_rack: dict[int, int] = {}

    def submit(executor: Executor, plan: RackRunPlan):
        slot = slot_by_rack.get(plan.rack_index)
        if slot is None:
            slot = free_slots.popleft()
            slot_by_rack[plan.rack_index] = slot
        return executor.submit(
            _rack_day_shm_task, plan, config, synthesizer, segment.name, slot, layout
        )

    def handle(plan: RackRunPlan, result) -> None:
        _rack_index, counts, fallback, snapshot = result
        slot = slot_by_rack.pop(plan.rack_index)
        try:
            if counts is None:
                metrics.incr("dataset.shm.fallback")
                summaries = fallback
            else:
                with metrics.span("shm/decode"):
                    summaries = decode_rack_day(
                        plan, counts, *layout.slot_arrays(segment.buf, slot)
                    )
                metrics.incr("dataset.shm.rack_days")
        finally:
            free_slots.append(slot)
        handle_result(plan, summaries, snapshot)

    try:
        return run_windowed(
            plans,
            submit,
            handle,
            jobs=jobs,
            window=window,
            label=_plan_label,
            pool=pool,
            cancel_event=cancel_event,
            initializer=pool_initializer,
            initargs=(config.kernel,),
        )
    finally:
        segment.close()
        segment.unlink()
