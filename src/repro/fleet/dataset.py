"""Day-scale dataset generation (Section 5, Table 1).

The paper's primary dataset: SyncMillisampler runs on ~1000 racks per
region, roughly hourly across one weekday — 22.4K rack runs and ~2M
server runs per region.  This module generates the synthetic
equivalent at configurable scale, reducing every rack run to a
:class:`~repro.analysis.summary.RunSummary` on the fly so memory stays
bounded regardless of scale.

Seeding
-------
Randomness is organized as a tree of independent streams derived from
``(config.seed, crc32(region))`` with :class:`numpy.random.SeedSequence`
spawn keys, instead of threading one sequential generator through the
whole region:

* one stream for task placement across the region's racks;
* one stream per rack for its run-hour schedule;
* one stream per (rack, run) for the synthesis of that rack run.

Because each (rack, run) stream is derived purely from indices, any
rack run can be synthesized in isolation — which is what makes
generation embarrassingly parallel (see :mod:`repro.fleet.parallel`)
and cacheable (see :mod:`repro.fleet.cache`).  For a fixed seed the
summaries are identical whether the region is generated serially, by a
process pool of any size, or loaded back from the on-disk cache.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..analysis.summary import RunSummary, summarize_run
from ..config import FleetConfig
from ..errors import ConfigError
from ..obs.metrics import Metrics
from ..workload.region import RackWorkload, RegionSpec, REGION_A, REGION_B, build_region_workloads
from .rackrun import BatchItem, RackRunSynthesizer

#: Stream-tree branch tags (the first element of every spawn key).
_PLACEMENT_STREAM = 0
_HOURS_STREAM = 1
_RUN_STREAM = 2


@dataclass
class RackDay:
    """One rack's day of runs, reduced."""

    rack: str
    region: str
    colocated: bool
    summaries: list[RunSummary]


@dataclass
class DatasetSummary:
    """Table 1's row for one region."""

    region: str
    runs: int
    server_runs: int
    bursty_server_runs: int
    bursts: int
    racks: int

    @property
    def bursty_run_fraction(self) -> float:
        if self.server_runs == 0:
            return 0.0
        return self.bursty_server_runs / self.server_runs


@dataclass
class RegionDataset:
    """All reduced runs for one region-day."""

    region: str
    summaries: list[RunSummary]
    workloads: list[RackWorkload] = field(default_factory=list)

    def rack_days(self) -> list[RackDay]:
        grouped: dict[str, list[RunSummary]] = {}
        for summary in self.summaries:
            grouped.setdefault(summary.rack, []).append(summary)
        return [
            RackDay(
                rack=rack,
                region=self.region,
                colocated=bool(runs[0].extras.get("colocated", False)),
                summaries=runs,
            )
            for rack, runs in sorted(grouped.items())
        ]

    def table1_row(self) -> DatasetSummary:
        server_runs = sum(summary.servers for summary in self.summaries)
        bursty = sum(summary.bursty_server_runs() for summary in self.summaries)
        bursts = sum(len(summary.bursts) for summary in self.summaries)
        racks = len({summary.rack for summary in self.summaries})
        return DatasetSummary(
            region=self.region,
            runs=len(self.summaries),
            server_runs=server_runs,
            bursty_server_runs=bursty,
            bursts=bursts,
            racks=racks,
        )


# -- seed-stream tree --------------------------------------------------------


def _region_entropy(region: str, seed: int) -> tuple[int, int]:
    """Root entropy for one region's stream tree.

    Deterministic per-region salt: Python's hash() is salted per process
    and would make "the same dataset" differ across runs, so the region
    name is mixed in via crc32.  SeedSequence requires non-negative
    entropy words.
    """
    return (seed % 2**63, zlib.crc32(region.encode("utf-8")))


def _stream(region: str, seed: int, spawn_key: tuple[int, ...]) -> np.random.Generator:
    sequence = np.random.SeedSequence(_region_entropy(region, seed), spawn_key=spawn_key)
    return np.random.default_rng(sequence)


def placement_rng(region: str, seed: int) -> np.random.Generator:
    """The stream that places tasks on every rack of a region."""
    return _stream(region, seed, (_PLACEMENT_STREAM,))


def rack_hours_rng(region: str, seed: int, rack_index: int) -> np.random.Generator:
    """The stream that schedules one rack's run hours."""
    return _stream(region, seed, (_HOURS_STREAM, rack_index))


def run_rng(region: str, seed: int, rack_index: int, run_index: int) -> np.random.Generator:
    """The stream that synthesizes one rack run, independent of all others."""
    return _stream(region, seed, (_RUN_STREAM, rack_index, run_index))


def _run_hours(
    runs_per_rack: int, hours: int, rng: np.random.Generator
) -> np.ndarray:
    """Hours at which one rack is sampled: spread across the day.

    The control plane schedules each rack roughly hourly but a rack
    lands in the sampled subset ~10 times a day (Section 7.2: "Each
    rack is typically associated with 10 runs spread throughout the
    day").
    """
    if runs_per_rack > hours:
        raise ConfigError("cannot run a rack more often than hourly in this model")
    chosen = rng.choice(hours, size=runs_per_rack, replace=False)
    return np.sort(chosen)


# -- generation plan ---------------------------------------------------------


@dataclass(frozen=True)
class RackRunPlan:
    """Everything needed to synthesize one rack's day in isolation."""

    rack_index: int
    workload: RackWorkload
    hours: tuple[int, ...]


def plan_region(spec: RegionSpec, config: FleetConfig) -> list[RackRunPlan]:
    """Deterministically place workloads and schedule every rack's runs.

    The plan is cheap (no fluid-model time); the expensive synthesis of
    each plan entry is independent of every other entry.
    """
    rng = placement_rng(spec.name, config.seed)
    workloads = build_region_workloads(spec, config.racks_per_region, rng)
    plans: list[RackRunPlan] = []
    for rack_index, workload in enumerate(workloads):
        hours = _run_hours(
            config.runs_per_rack,
            config.hours,
            rack_hours_rng(spec.name, config.seed, rack_index),
        )
        plans.append(
            RackRunPlan(
                rack_index=rack_index,
                workload=workload,
                hours=tuple(int(hour) for hour in hours),
            )
        )
    return plans


def _plan_items(plan: RackRunPlan, config: FleetConfig) -> list[BatchItem]:
    """One rack day as batch items, each on its own seed-stream leaf."""
    return [
        (
            plan.workload,
            hour,
            run_rng(plan.workload.region, config.seed, plan.rack_index, run_index),
        )
        for run_index, hour in enumerate(plan.hours)
    ]


def _summarize_batch(
    items: list[BatchItem],
    synthesizer: RackRunSynthesizer,
    metrics: Metrics,
) -> list[tuple[RunSummary, RackWorkload]]:
    """Synthesize one fluid batch and reduce every run immediately."""
    sync_runs = synthesizer.synthesize_batch(items, metrics=metrics)
    with metrics.span("synthesis/summarize"):
        return [
            (summarize_run(sync_run), workload)
            for (workload, _hour, _rng), sync_run in zip(items, sync_runs)
        ]


def iter_rack_day(
    plan: RackRunPlan,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    metrics: Metrics | None = None,
) -> Iterator[RunSummary]:
    """Synthesize and reduce one rack's runs, one fluid batch at a time."""
    synthesizer = synthesizer or RackRunSynthesizer(policy=config.policy, kernel=config.kernel)
    metrics = metrics if metrics is not None else Metrics()
    items = _plan_items(plan, config)
    for start in range(0, len(items), config.fluid_batch):
        chunk = items[start : start + config.fluid_batch]
        for summary, _workload in _summarize_batch(chunk, synthesizer, metrics):
            yield summary


def synthesize_rack_day(
    plan: RackRunPlan,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    metrics: Metrics | None = None,
) -> list[RunSummary]:
    """One rack's reduced day — the unit of work a pool worker executes."""
    return list(iter_rack_day(plan, config, synthesizer, metrics))


def iter_region_summaries(
    spec: RegionSpec,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Metrics | None = None,
) -> Iterator[tuple[RunSummary, RackWorkload]]:
    """Lazily generate (summary, workload) pairs for a region-day.

    Consecutive rack runs — across rack boundaries — are synthesized in
    fluid batches of ``config.fluid_batch`` and reduced immediately, so
    peak memory is one batch of raw runs regardless of region scale.
    """
    plans = plan_region(spec, config)
    yield from iter_plan_summaries(plans, config, synthesizer, progress, metrics)


def iter_plan_summaries(
    plans: list[RackRunPlan],
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
    metrics: Metrics | None = None,
) -> Iterator[tuple[RunSummary, RackWorkload]]:
    """:func:`iter_region_summaries` over an explicit plan list (the
    shard store synthesizes hour-band slices of a region plan)."""
    synthesizer = synthesizer or RackRunSynthesizer(policy=config.policy, kernel=config.kernel)
    metrics = metrics if metrics is not None else Metrics()
    total = sum(len(plan.hours) for plan in plans)
    done = 0
    buffer: list[BatchItem] = []
    for plan in plans:
        buffer.extend(_plan_items(plan, config))
        while len(buffer) >= config.fluid_batch:
            chunk, buffer = buffer[: config.fluid_batch], buffer[config.fluid_batch :]
            for summary, workload in _summarize_batch(chunk, synthesizer, metrics):
                done += 1
                if progress is not None:
                    progress(done, total)
                yield summary, workload
    if buffer:
        for summary, workload in _summarize_batch(buffer, synthesizer, metrics):
            done += 1
            if progress is not None:
                progress(done, total)
            yield summary, workload


def generate_region_dataset(
    spec: RegionSpec,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
    jobs: int | None = None,
    metrics: Metrics | None = None,
    pool=None,
    cancel_event=None,
) -> RegionDataset:
    """Generate and reduce one region-day.

    ``jobs`` overrides ``config.jobs``: 1 synthesizes serially in this
    process, N > 1 fans rack days out over a process pool, and 0 uses
    every available core.  The result is identical for any job count.
    ``metrics`` receives a ``generate/<region>`` span and a
    ``dataset.generated_runs`` counter; telemetry never shapes data.
    ``pool``/``cancel_event`` reach the parallel fan-out (see
    :func:`repro.fleet.parallel.run_windowed`); the query service uses
    them for its persistent pool and graceful drain.
    """
    resolved = config.jobs if jobs is None else jobs
    from .parallel import resolve_jobs

    resolved = resolve_jobs(resolved)
    metrics = metrics if metrics is not None else Metrics()
    if resolved > 1 or pool is not None:
        from .parallel import generate_region_dataset_parallel

        return generate_region_dataset_parallel(
            spec, config, jobs=resolved, synthesizer=synthesizer,
            progress=progress, metrics=metrics,
            pool=pool, cancel_event=cancel_event,
        )

    summaries: list[RunSummary] = []
    plans = plan_region(spec, config)
    with metrics.span(f"generate/{spec.name}"):
        for summary, _workload in iter_plan_summaries(
            plans, config, synthesizer, progress, metrics=metrics
        ):
            summaries.append(summary)
    metrics.incr("dataset.generated_runs", len(summaries))
    # One workloads rule for every path (serial, parallel, sharded):
    # every *planned* rack contributes its workload in rack order, even
    # racks that scheduled zero runs.  Collecting workloads from yielded
    # summaries instead would silently drop zero-run racks and disagree
    # with the parallel path.
    return RegionDataset(
        region=spec.name,
        summaries=summaries,
        workloads=[plan.workload for plan in plans],
    )


def generate_paper_dataset(
    config: FleetConfig | None = None,
    progress: Callable[[str, int, int], None] | None = None,
    jobs: int | None = None,
) -> dict[str, RegionDataset]:
    """Both regions of the paper's primary dataset."""
    config = config or FleetConfig()
    datasets: dict[str, RegionDataset] = {}
    for spec in (REGION_A, REGION_B):
        region_progress = (
            (lambda done, total, name=spec.name: progress(name, done, total))
            if progress is not None
            else None
        )
        datasets[spec.name] = generate_region_dataset(
            spec, config, progress=region_progress, jobs=jobs
        )
    return datasets
