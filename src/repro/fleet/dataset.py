"""Day-scale dataset generation (Section 5, Table 1).

The paper's primary dataset: SyncMillisampler runs on ~1000 racks per
region, roughly hourly across one weekday — 22.4K rack runs and ~2M
server runs per region.  This module generates the synthetic
equivalent at configurable scale, reducing every rack run to a
:class:`~repro.analysis.summary.RunSummary` on the fly so memory stays
bounded regardless of scale.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..analysis.summary import RunSummary, summarize_run
from ..config import FleetConfig
from ..errors import ConfigError
from ..workload.region import RackWorkload, RegionSpec, REGION_A, REGION_B, build_region_workloads
from .rackrun import RackRunSynthesizer


@dataclass
class RackDay:
    """One rack's day of runs, reduced."""

    rack: str
    region: str
    colocated: bool
    summaries: list[RunSummary]


@dataclass
class DatasetSummary:
    """Table 1's row for one region."""

    region: str
    runs: int
    server_runs: int
    bursty_server_runs: int
    bursts: int
    racks: int

    @property
    def bursty_run_fraction(self) -> float:
        if self.server_runs == 0:
            return 0.0
        return self.bursty_server_runs / self.server_runs


@dataclass
class RegionDataset:
    """All reduced runs for one region-day."""

    region: str
    summaries: list[RunSummary]
    workloads: list[RackWorkload] = field(default_factory=list)

    def rack_days(self) -> list[RackDay]:
        grouped: dict[str, list[RunSummary]] = {}
        for summary in self.summaries:
            grouped.setdefault(summary.rack, []).append(summary)
        return [
            RackDay(
                rack=rack,
                region=self.region,
                colocated=bool(runs[0].extras.get("colocated", False)),
                summaries=runs,
            )
            for rack, runs in sorted(grouped.items())
        ]

    def table1_row(self) -> DatasetSummary:
        server_runs = sum(summary.servers for summary in self.summaries)
        bursty = sum(summary.bursty_server_runs() for summary in self.summaries)
        bursts = sum(len(summary.bursts) for summary in self.summaries)
        racks = len({summary.rack for summary in self.summaries})
        return DatasetSummary(
            region=self.region,
            runs=len(self.summaries),
            server_runs=server_runs,
            bursty_server_runs=bursty,
            bursts=bursts,
            racks=racks,
        )


def _run_hours(
    runs_per_rack: int, hours: int, rng: np.random.Generator
) -> np.ndarray:
    """Hours at which one rack is sampled: spread across the day.

    The control plane schedules each rack roughly hourly but a rack
    lands in the sampled subset ~10 times a day (Section 7.2: "Each
    rack is typically associated with 10 runs spread throughout the
    day").
    """
    if runs_per_rack > hours:
        raise ConfigError("cannot run a rack more often than hourly in this model")
    chosen = rng.choice(hours, size=runs_per_rack, replace=False)
    return np.sort(chosen)


def iter_region_summaries(
    spec: RegionSpec,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> Iterator[tuple[RunSummary, RackWorkload]]:
    """Lazily generate (summary, workload) pairs for a region-day.

    Raw runs are reduced and discarded immediately; peak memory is one
    rack run.
    """
    # Deterministic per-region seed: Python's hash() is salted per
    # process and would make "the same dataset" differ across runs.
    region_salt = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng((config.seed * 1_000_003 + region_salt) % 2**32)
    synthesizer = synthesizer or RackRunSynthesizer()
    workloads = build_region_workloads(spec, config.racks_per_region, rng)
    total = len(workloads) * config.runs_per_rack
    done = 0
    for workload in workloads:
        for hour in _run_hours(config.runs_per_rack, config.hours, rng):
            sync_run = synthesizer.synthesize(workload, int(hour), rng)
            summary = summarize_run(sync_run)
            done += 1
            if progress is not None:
                progress(done, total)
            yield summary, workload


def generate_region_dataset(
    spec: RegionSpec,
    config: FleetConfig,
    synthesizer: RackRunSynthesizer | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> RegionDataset:
    """Generate and reduce one region-day."""
    summaries: list[RunSummary] = []
    workloads: dict[str, RackWorkload] = {}
    for summary, workload in iter_region_summaries(spec, config, synthesizer, progress):
        summaries.append(summary)
        workloads[workload.rack] = workload
    return RegionDataset(
        region=spec.name, summaries=summaries, workloads=list(workloads.values())
    )


def generate_paper_dataset(
    config: FleetConfig | None = None,
    progress: Callable[[str, int, int], None] | None = None,
) -> dict[str, RegionDataset]:
    """Both regions of the paper's primary dataset."""
    config = config or FleetConfig()
    datasets: dict[str, RegionDataset] = {}
    for spec in (REGION_A, REGION_B):
        region_progress = (
            (lambda done, total, name=spec.name: progress(name, done, total))
            if progress is not None
            else None
        )
        datasets[spec.name] = generate_region_dataset(
            spec, config, progress=region_progress
        )
    return datasets
