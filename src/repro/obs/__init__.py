"""Observability: metrics, tracing spans, and run manifests.

The paper's own region-scale pipeline reduced 8.16B samples across two
regions; at that scale "did it run, how long, what did it hit" must be
machine-readable, not scraped from logs.  This package provides the
substrate the experiment orchestrator reports through:

* :mod:`repro.obs.metrics` — named counters and timers with scoped
  spans, cheap enough to leave on everywhere;
* :mod:`repro.obs.manifest` — the JSON run manifest (config, seed,
  telemetry, per-experiment outcomes) and its schema validator.
"""

from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    validate_manifest,
    write_manifest,
)
from .metrics import Metrics, TimerStats

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "Metrics",
    "TimerStats",
    "build_manifest",
    "validate_manifest",
    "write_manifest",
]
