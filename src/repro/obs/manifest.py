"""The JSON run manifest: what ran, with which config, and how it went.

``millisampler-repro run all --manifest out/manifest.json`` leaves a
machine-readable record of the whole suite — the dataset configuration
and seed, cache traffic, and one outcome entry per experiment (status,
wall time, peak memory, headline metrics).  CI, regression tooling, and
later scaling PRs read this instead of parsing terminal output.

Schema (version 1) — see :data:`MANIFEST_SCHEMA` for the field-level
contract enforced by :func:`validate_manifest`:

```json
{
  "schema": "millisampler-repro/run-manifest",
  "schema_version": 1,
  "created_at": 1754438400.0,
  "config": {"racks_per_region": 100, "runs_per_rack": 10,
             "hours": 24, "seed": 20221025, "jobs": 0,
             "cache_dir": "~/.cache/millisampler-repro"},
  "exp_jobs": 4,
  "status": "failed",
  "failed": ["fig9"],
  "experiments": [
    {"experiment_id": "fig1", "status": "ok", "wall_time_s": 0.21,
     "error": null, "peak_tracemalloc_bytes": 1048576,
     "peak_rss_bytes": 181403648, "cache_hits": 0, "cache_misses": 0,
     "metrics": {"share_alpha1_s1": 0.5}},
    {"experiment_id": "fig9", "status": "failed", "wall_time_s": 0.02,
     "error": "AnalysisError: ...", ...}
  ],
  "telemetry": {"counters": {"dataset.cache.hit": 2}, "timers": {...}}
}
```
"""

from __future__ import annotations

import json
import os
import time

from ..errors import ManifestError

#: Name of the schema family; distinguishes this file from any other JSON.
MANIFEST_SCHEMA = "millisampler-repro/run-manifest"

#: Bump on any backwards-incompatible change to the manifest layout.
MANIFEST_SCHEMA_VERSION = 1

#: Valid values of an experiment outcome's ``status`` field.
OUTCOME_STATUSES = ("ok", "failed", "skipped")

#: Required per-experiment outcome fields -> accepted types (None-able
#: fields list ``type(None)``).
_OUTCOME_FIELDS: dict[str, tuple[type, ...]] = {
    "experiment_id": (str,),
    "status": (str,),
    "wall_time_s": (int, float),
    "error": (str, type(None)),
    "peak_tracemalloc_bytes": (int, type(None)),
    "peak_rss_bytes": (int, type(None)),
    "cache_hits": (int, float),
    "cache_misses": (int, float),
    "metrics": (dict,),
}

_CONFIG_FIELDS: dict[str, tuple[type, ...]] = {
    "racks_per_region": (int,),
    "runs_per_rack": (int,),
    "hours": (int,),
    "seed": (int,),
    "jobs": (int,),
    "cache_dir": (str, type(None)),
    # Sharded-store runs record where and how the dataset was sharded;
    # legacy in-memory runs leave all three None/absent.
    "store_dir": (str, type(None)),
    "shard_racks": (int, type(None)),
    "shard_hours": (int, type(None)),
    # The fluid kernel that ran ("numpy" or "native") — the *resolved*
    # choice, not the requested setting, so the manifest answers "what
    # actually executed here".  Execution-only: never in the cache key.
    "kernel": (str,),
}


def _resolved_kernel(fleet_config) -> str:
    """The kernel the run's fluid models execute with.

    Imported lazily: ``obs`` must not depend on the fleet package at
    import time (fleet modules record through ``obs``).
    """
    from ..fleet.kernels import resolve_kernel

    return resolve_kernel(getattr(fleet_config, "kernel", "auto"))


def _clean_number(value):
    """Coerce numpy scalars (and other number-likes) to JSON floats."""
    if isinstance(value, (int, float)):
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


def build_manifest(
    fleet_config,
    outcomes,
    telemetry: dict | None = None,
    cache_dir: str | None = None,
    exp_jobs: int = 1,
    store_dir: str | None = None,
    shard_racks: int | None = None,
    shard_hours: int | None = None,
) -> dict:
    """Assemble a schema-valid manifest dict.

    ``fleet_config`` is the run's :class:`~repro.config.FleetConfig`;
    ``outcomes`` is the ordered list of
    :class:`~repro.experiments.orchestrator.ExperimentOutcome`.
    """
    failed = [o.experiment_id for o in outcomes if o.status == "failed"]
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_at": time.time(),
        "config": {
            "racks_per_region": fleet_config.racks_per_region,
            "runs_per_rack": fleet_config.runs_per_rack,
            "hours": fleet_config.hours,
            "seed": fleet_config.seed,
            "jobs": fleet_config.jobs,
            "policy": fleet_config.policy.canonical_json(),
            "kernel": _resolved_kernel(fleet_config),
            "cache_dir": cache_dir,
            "store_dir": store_dir,
            "shard_racks": shard_racks,
            "shard_hours": shard_hours,
        },
        "exp_jobs": exp_jobs,
        "status": "failed" if failed else "ok",
        "failed": failed,
        "experiments": [
            {
                "experiment_id": outcome.experiment_id,
                "status": outcome.status,
                "wall_time_s": float(outcome.wall_time_s),
                "error": outcome.error,
                "peak_tracemalloc_bytes": outcome.peak_tracemalloc_bytes,
                "peak_rss_bytes": outcome.peak_rss_bytes,
                "cache_hits": outcome.cache_hits,
                "cache_misses": outcome.cache_misses,
                "metrics": {
                    name: _clean_number(value)
                    for name, value in sorted(outcome.metrics.items())
                },
            }
            for outcome in outcomes
        ],
        "telemetry": telemetry if telemetry is not None else {},
    }
    validate_manifest(manifest)
    return manifest


def validate_manifest(manifest: dict) -> None:
    """Check a manifest against the version-1 schema.

    Raises :class:`~repro.errors.ManifestError` listing *every*
    violation, so a failing CI run reports the whole story at once.
    """
    problems: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    check(isinstance(manifest, dict), "manifest is not a dict")
    if not isinstance(manifest, dict):
        raise ManifestError("; ".join(problems))

    check(manifest.get("schema") == MANIFEST_SCHEMA,
          f"schema != {MANIFEST_SCHEMA!r}")
    check(manifest.get("schema_version") == MANIFEST_SCHEMA_VERSION,
          f"schema_version != {MANIFEST_SCHEMA_VERSION}")
    check(isinstance(manifest.get("created_at"), (int, float)),
          "created_at is not a timestamp")
    check(manifest.get("status") in ("ok", "failed"),
          "status is not 'ok' or 'failed'")
    check(isinstance(manifest.get("exp_jobs"), int), "exp_jobs is not an int")
    check(isinstance(manifest.get("failed"), list), "failed is not a list")

    config = manifest.get("config")
    if isinstance(config, dict):
        for name, types in _CONFIG_FIELDS.items():
            check(isinstance(config.get(name), types),
                  f"config.{name} missing or mistyped")
    else:
        problems.append("config is not a dict")

    experiments = manifest.get("experiments")
    if isinstance(experiments, list):
        for index, outcome in enumerate(experiments):
            if not isinstance(outcome, dict):
                problems.append(f"experiments[{index}] is not a dict")
                continue
            label = outcome.get("experiment_id", f"#{index}")
            for name, types in _OUTCOME_FIELDS.items():
                check(isinstance(outcome.get(name), types),
                      f"experiments[{label}].{name} missing or mistyped")
            check(outcome.get("status") in OUTCOME_STATUSES,
                  f"experiments[{label}].status not in {OUTCOME_STATUSES}")
            if outcome.get("status") == "failed":
                check(bool(outcome.get("error")),
                      f"experiments[{label}] failed without an error message")
        failed = manifest.get("failed")
        if isinstance(failed, list):
            actual = [o.get("experiment_id") for o in experiments
                      if isinstance(o, dict) and o.get("status") == "failed"]
            check(failed == actual, "failed list disagrees with outcomes")
    else:
        problems.append("experiments is not a list")

    telemetry = manifest.get("telemetry")
    check(isinstance(telemetry, dict), "telemetry is not a dict")

    if problems:
        raise ManifestError(
            "manifest does not satisfy schema v"
            f"{MANIFEST_SCHEMA_VERSION}: " + "; ".join(problems)
        )


#: Schema family of the query service's ``/metrics`` document — a
#: sibling of the run manifest that reuses its ``config`` block layout
#: (and validator) so tooling reading one can read the other.
SERVICE_METRICS_SCHEMA = "millisampler-repro/service-metrics"

#: Version of the service-metrics layout; tracks the manifest version.
SERVICE_METRICS_SCHEMA_VERSION = 1

#: Required service block fields -> accepted types.
_SERVICE_FIELDS: dict[str, tuple[type, ...]] = {
    "requests": (int,),
    "queries_executed": (int,),
    "queries_coalesced": (int,),
    "queries_failed": (int,),
    "pool_replaced": (int,),
    "uptime_s": (int, float),
    "request_threads": (int,),
    "pool_jobs": (int,),
}


def build_service_metrics(
    fleet_config,
    service: dict,
    telemetry: dict | None = None,
    store_dir: str | None = None,
    shard_racks: int | None = None,
    shard_hours: int | None = None,
    cache_dir: str | None = None,
) -> dict:
    """Assemble a ``/metrics`` document for the query service.

    Shares the run manifest's ``config`` block verbatim (same fields,
    same types) and carries the service's own counters in ``service``
    plus the full metrics-registry snapshot in ``telemetry``.
    """
    document = {
        "schema": SERVICE_METRICS_SCHEMA,
        "schema_version": SERVICE_METRICS_SCHEMA_VERSION,
        "created_at": time.time(),
        "config": {
            "racks_per_region": fleet_config.racks_per_region,
            "runs_per_rack": fleet_config.runs_per_rack,
            "hours": fleet_config.hours,
            "seed": fleet_config.seed,
            "jobs": fleet_config.jobs,
            "policy": fleet_config.policy.canonical_json(),
            "kernel": _resolved_kernel(fleet_config),
            "cache_dir": cache_dir,
            "store_dir": store_dir,
            "shard_racks": shard_racks,
            "shard_hours": shard_hours,
        },
        "service": {name: service.get(name, 0) for name in _SERVICE_FIELDS},
        "telemetry": telemetry if telemetry is not None else {},
    }
    validate_service_metrics(document)
    return document


def validate_service_metrics(document: dict) -> None:
    """Check a service ``/metrics`` document; raises listing every
    violation, mirroring :func:`validate_manifest`."""
    problems: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    check(isinstance(document, dict), "metrics document is not a dict")
    if not isinstance(document, dict):
        raise ManifestError("; ".join(problems))

    check(document.get("schema") == SERVICE_METRICS_SCHEMA,
          f"schema != {SERVICE_METRICS_SCHEMA!r}")
    check(document.get("schema_version") == SERVICE_METRICS_SCHEMA_VERSION,
          f"schema_version != {SERVICE_METRICS_SCHEMA_VERSION}")
    check(isinstance(document.get("created_at"), (int, float)),
          "created_at is not a timestamp")

    config = document.get("config")
    if isinstance(config, dict):
        for name, types in _CONFIG_FIELDS.items():
            check(isinstance(config.get(name), types),
                  f"config.{name} missing or mistyped")
    else:
        problems.append("config is not a dict")

    service = document.get("service")
    if isinstance(service, dict):
        for name, types in _SERVICE_FIELDS.items():
            check(isinstance(service.get(name), types),
                  f"service.{name} missing or mistyped")
    else:
        problems.append("service is not a dict")

    check(isinstance(document.get("telemetry"), dict), "telemetry is not a dict")

    if problems:
        raise ManifestError(
            "service metrics do not satisfy schema v"
            f"{SERVICE_METRICS_SCHEMA_VERSION}: " + "; ".join(problems)
        )


def write_manifest(manifest: dict, path: str) -> str:
    """Validate and write a manifest; returns the path."""
    validate_manifest(manifest)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
