"""Lightweight named counters, timers, and scoped spans.

One :class:`Metrics` instance rides on an
:class:`~repro.experiments.context.ExperimentContext` and is threaded
through dataset generation, the cache, and every experiment.  The
design constraints, in order:

* **Always on** — recording a counter is a dict update under a lock;
  a span is two ``perf_counter`` calls.  Nothing here is worth a
  feature flag.
* **Thread-safe** — ``run all --exp-jobs N`` runs experiments on a
  thread pool against one shared registry.
* **Serializable** — :meth:`Metrics.snapshot` is plain JSON-ready data,
  which is what the run manifest embeds.

Spans nest: entering ``span("report")`` then ``span("fig9")`` on the
same thread records the inner timer as ``report/fig9``, so the profile
reads as a call tree without any tracing machinery.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class TimerStats:
    """Aggregate of every observation of one named timer."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class Metrics:
    """Thread-safe registry of named counters and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._timers: dict[str, TimerStats] = {}
        self._span_stack = threading.local()

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict[str, float]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    # -- timers and spans -------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation of the named timer."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.observe(seconds)

    @contextmanager
    def span(self, name: str):
        """Time a scope; nested spans record under ``outer/inner``."""
        stack = getattr(self._span_stack, "names", None)
        if stack is None:
            stack = self._span_stack.names = []
        qualified = "/".join(stack + [name])
        stack.append(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            stack.pop()
            self.observe(qualified, elapsed)

    def timers(self) -> dict[str, TimerStats]:
        """A point-in-time copy of every timer's aggregate."""
        with self._lock:
            return {
                name: TimerStats(stats.count, stats.total_s, stats.max_s)
                for name, stats in self._timers.items()
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used to bring telemetry across process boundaries: dataset
        workers record stage timers into a local registry and return its
        snapshot with their results; the parent merges so ``--manifest``
        sees the whole fleet's cost breakdown.  Counters add; timers
        combine count/total and keep the larger max.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, value)
        with self._lock:
            for name, data in snapshot.get("timers", {}).items():
                stats = self._timers.get(name)
                if stats is None:
                    stats = self._timers[name] = TimerStats()
                stats.count += int(data["count"])
                stats.total_s += float(data["total_s"])
                stats.max_s = max(stats.max_s, float(data["max_s"]))

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready projection of every counter and timer."""
        return {
            "counters": self.counters(),
            "timers": {
                name: {
                    "count": stats.count,
                    "total_s": stats.total_s,
                    "mean_s": stats.mean_s,
                    "max_s": stats.max_s,
                }
                for name, stats in sorted(self.timers().items())
            },
        }

    def render_profile(self) -> str:
        """Human-readable profile: timers by total time, then counters."""
        lines = ["-- profile: timers (by total time) --"]
        timers = self.timers()
        if not timers:
            lines.append("  (none recorded)")
        width = max((len(name) for name in timers), default=0)
        for name, stats in sorted(
            timers.items(), key=lambda kv: kv[1].total_s, reverse=True
        ):
            lines.append(
                f"  {name:<{width}}  total {stats.total_s:8.3f}s  "
                f"n={stats.count:<5d} mean {stats.mean_s:7.3f}s  "
                f"max {stats.max_s:7.3f}s"
            )
        counters = self.counters()
        lines.append("-- profile: counters --")
        if not counters:
            lines.append("  (none recorded)")
        cwidth = max((len(name) for name in counters), default=0)
        for name, value in sorted(counters.items()):
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{cwidth}}  {rendered}")
        return "\n".join(lines)
