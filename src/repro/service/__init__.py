"""Persistent query service (``repro serve``).

Owns one shard store / dataset cache and one worker pool for many
queries: :mod:`repro.service.core` implements single-flight query
execution with crash containment; :mod:`repro.service.server` exposes
it over local HTTP / unix socket with NDJSON streaming.
"""

from .core import Query, QueryService, ServiceConfig
from .server import ReproServer, run_server

__all__ = [
    "Query",
    "QueryService",
    "ServiceConfig",
    "ReproServer",
    "run_server",
]
