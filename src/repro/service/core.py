"""Query execution core of ``repro serve``.

The service turns the one-shot CLI pipeline into a persistent process:
one :class:`~repro.experiments.context.ExperimentContext` (hence one
:class:`~repro.fleet.shards.RegionShardStore` / dataset cache and one
metrics registry) plus one long-lived worker pool answer every query,
so the expensive region-day builds are paid once and shared.

Three properties define the core, independent of any transport:

* **Single-flight** — identical queries that arrive while one is
  already executing subscribe to the in-flight :class:`_Flight` instead
  of starting a second generation.  A flight records every event it
  publishes, so a late subscriber replays the full stream and all
  subscribers observe byte-identical event sequences.
* **Bit-exactness** — query bodies call the same context methods the
  CLI uses and serialize through the module-level ``serialize_*``
  functions below; tests compare service responses against direct
  serializer output to pin the equivalence.
* **Crash containment** — a worker process dying surfaces as
  :class:`~repro.errors.WorkerCrashError` (naming the rack in flight);
  the service replaces the broken pool and retries the query once
  before failing it, and a crashed build leaves the shard store
  consistent (manifest-last atomicity) so the retry regenerates.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..config import FleetConfig
from ..errors import ConfigError, WorkerCrashError
from ..experiments.context import ExperimentContext
from ..fleet.dataset import DatasetSummary
from ..fleet.kernels import pool_initializer
from ..obs.manifest import build_service_metrics

#: Queue sentinel closing a subscriber's event stream.
_DONE = object()


def _worker_pid() -> int:
    """No-op pool warm-up task (must be a top-level function to pickle)."""
    import os

    return os.getpid()

#: Figure-query names -> how the result is produced and serialized.
FIGURE_NAMES = ("hourly_boxes", "run_contention", "burst_contention", "profiles")

#: Counter names exported in the ``/metrics`` service block.
REQUESTS = "service.requests"
EXECUTED = "service.queries.executed"
COALESCED = "service.queries.coalesced"
FAILED = "service.queries.failed"
POOL_REPLACED = "service.pool.replaced"


# -- result serializers ------------------------------------------------------
#
# Module-level pure functions so tests can feed the one-shot CLI path
# through the exact same projection and assert the service's HTTP body
# is bit-identical.  Floats pass through as Python floats (repr round-
# trips every bit); arrays become lists.


def serialize_table1(row: DatasetSummary) -> dict:
    return {
        "region": row.region,
        "runs": row.runs,
        "server_runs": row.server_runs,
        "bursty_server_runs": row.bursty_server_runs,
        "bursty_run_fraction": row.bursty_run_fraction,
        "bursts": row.bursts,
        "racks": row.racks,
    }


def serialize_hourly_boxes(boxes: dict) -> dict:
    return {
        "hours": {
            str(hour): {
                "low_whisker": box.low_whisker,
                "q1": box.q1,
                "median": box.median,
                "q3": box.q3,
                "high_whisker": box.high_whisker,
                "mean": box.mean,
                "count": box.count,
            }
            for hour, box in sorted(boxes.items())
        }
    }


def serialize_run_contention(view) -> dict:
    return {
        "total": view.total,
        "excluded": view.excluded,
        "mins": np.asarray(view.mins, dtype=np.float64).tolist(),
        "p90s": np.asarray(view.p90s, dtype=np.float64).tolist(),
    }


def serialize_burst_contention(view) -> dict:
    return {
        "racks": [str(rack) for rack in view.racks],
        "max_contention": np.asarray(view.max_contention, dtype=np.int64).tolist(),
        "lossy": np.asarray(view.lossy, dtype=bool).tolist(),
        "first_loss_contention": np.asarray(
            view.first_loss_contention, dtype=np.int64
        ).tolist(),
    }


def serialize_profiles(profiles: list) -> dict:
    return {
        "profiles": [
            {
                "rack": p.rack,
                "region": p.region,
                "mean_contention": p.mean_contention,
                "min_contention": p.min_contention,
                "max_contention": p.max_contention,
                "runs": p.runs,
                "distinct_tasks": p.distinct_tasks,
                "dominant_share": p.dominant_share,
                "colocated": p.colocated,
                "total_discard_bytes": p.total_discard_bytes,
                "total_ingress_bytes": p.total_ingress_bytes,
            }
            for p in profiles
        ]
    }


def serialize_dataset(dataset) -> dict:
    """The ``/v1/dataset`` result: presence/shape, not the data itself."""
    summaries = dataset.summaries
    return {
        "region": dataset.region,
        "runs": len(summaries),
        "racks": len({s.rack for s in summaries}),
        "hours": sorted({s.hour for s in summaries}),
    }


# -- queries -----------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """One service query, hashable so identical requests coalesce."""

    kind: str  # "dataset" | "table1" | "figure"
    region: str = "RegA"
    name: str | None = None  # figure name when kind == "figure"

    def __post_init__(self) -> None:
        if self.kind not in ("dataset", "table1", "figure"):
            raise ConfigError(f"unknown query kind {self.kind!r}")
        if self.region not in ("RegA", "RegB"):
            raise ConfigError(f"unknown region {self.region!r}")
        if self.kind == "figure":
            if self.name not in FIGURE_NAMES:
                raise ConfigError(
                    f"unknown figure {self.name!r}; known: {FIGURE_NAMES}"
                )
        elif self.name is not None:
            raise ConfigError(f"{self.kind} query takes no figure name")

    @property
    def tag(self) -> str:
        return "/".join(filter(None, (self.kind, self.region, self.name)))


class _Flight:
    """One in-flight generation shared by every identical query.

    Publishes progress events to live subscribers and records them, so
    a subscriber that joins mid-flight replays the prefix it missed —
    every subscriber sees the same event sequence regardless of when it
    arrived.  Closed exactly once via :meth:`finish`.
    """

    def __init__(self, key: Query) -> None:
        self.key = key
        self.result: dict | None = None
        self.error: BaseException | None = None
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._queues: list[queue.SimpleQueue] = []
        self._done = False

    def subscribe(self) -> queue.SimpleQueue:
        stream: queue.SimpleQueue = queue.SimpleQueue()
        with self._lock:
            for event in self._events:
                stream.put(event)
            if self._done:
                stream.put(_DONE)
            else:
                self._queues.append(stream)
        return stream

    def publish(self, event: dict) -> None:
        with self._lock:
            if self._done:
                return
            self._events.append(event)
            for stream in self._queues:
                stream.put(event)

    def finish(self, result: dict | None, error: BaseException | None) -> None:
        with self._lock:
            self.result = result
            self.error = error
            self._done = True
            for stream in self._queues:
                stream.put(_DONE)
            self._queues.clear()


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs beyond the fleet config."""

    fleet: FleetConfig = field(default_factory=FleetConfig)
    cache_dir: str | None = None
    store_dir: str | None = None
    shard_racks: int | None = None
    shard_hours: int | None = None
    #: Threads executing query bodies (and hence the most queries that
    #: generate concurrently).  Counted as reserved cores when sizing
    #: the worker pool — see :meth:`QueryService.pool_jobs`.
    request_threads: int = 2


class QueryService:
    """The transport-independent service: flights, pool, telemetry.

    The HTTP layer (:mod:`repro.service.server`) maps requests onto
    :meth:`stream` and renders the yielded events as NDJSON lines;
    tests drive :meth:`stream` directly.
    """

    def __init__(self, config: ServiceConfig) -> None:
        from ..fleet.shards import DEFAULT_SHARD_HOURS, DEFAULT_SHARD_RACKS

        self.config = config
        self.cancel_event = threading.Event()
        self.context = ExperimentContext(
            fleet=config.fleet,
            cache_dir=config.cache_dir,
            store_dir=config.store_dir,
            shard_racks=config.shard_racks or DEFAULT_SHARD_RACKS,
            shard_hours=config.shard_hours or DEFAULT_SHARD_HOURS,
            reserved_cores=config.request_threads,
            cancel_event=self.cancel_event,
        )
        self.metrics = self.context.metrics
        self._flights: dict[Query, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._started = time.monotonic()
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.request_threads),
            thread_name_prefix="repro-serve",
        )
        self.context.pool = self._new_pool()

    # -- worker pool ------------------------------------------------------

    def pool_jobs(self) -> int:
        """Persistent-pool size: the resolved job count minus the cores
        the request threads occupy.

        ``resolve_jobs(0)`` alone would size the pool to every core;
        with ``request_threads`` threads also running query bodies (and
        folding shard results) the process would oversubscribe the
        machine by exactly that many cores.  ``reserved_cores`` applies
        the discount only to the auto-size case — an explicit ``--jobs``
        is taken literally.
        """
        return self.context.resolved_jobs()

    def _new_pool(self) -> ProcessPoolExecutor:
        """A fully warmed pool: every worker forks *now*.

        ProcessPoolExecutor spawns workers lazily, one per submission —
        which would fork them mid-request, and under the fork start
        method a worker forked while a client connection is open
        inherits that socket fd and keeps it alive long after the
        parent closes it.  Warming at creation (service start / pool
        replacement) pins every fork to a moment with no connections.
        """
        pool = ProcessPoolExecutor(
            max_workers=self.pool_jobs(),
            initializer=pool_initializer,
            initargs=(self.config.fleet.kernel,),
        )
        for future in [pool.submit(_worker_pid) for _ in range(pool._max_workers)]:
            future.result()
        return pool

    def _replace_pool(self) -> None:
        """Swap in a fresh pool after a worker crash poisoned this one."""
        with self._pool_lock:
            broken, self.context.pool = self.context.pool, self._new_pool()
        self.metrics.incr(POOL_REPLACED)
        broken.shutdown(wait=False, cancel_futures=True)

    # -- query execution --------------------------------------------------

    def stream(self, query: Query):
        """Yield this query's event dicts; the last is result or error.

        The leader for a key executes the body on the request executor;
        coalesced followers only subscribe.  Events:

        ``{"event": "start", "query": ..., "coalesced": bool}``
        ``{"event": "shard", "tag": ..., "runs": ...}``  (per shard built)
        ``{"event": "result", "data": {...}}``
        ``{"event": "error", "error": type, "detail": str}``
        """
        if self._closed:
            raise ConfigError("service is shut down")
        self.metrics.incr(REQUESTS)
        flight, leader = self._acquire_flight(query)
        stream = flight.subscribe()
        yield {"event": "start", "query": query.tag, "coalesced": not leader}
        if leader:
            self._executor.submit(self._run_flight, flight, query)
        while True:
            event = stream.get()
            if event is _DONE:
                break
            yield event
        if flight.error is not None:
            yield {
                "event": "error",
                "error": type(flight.error).__name__,
                "detail": str(flight.error),
            }
        else:
            yield {"event": "result", "data": flight.result}

    def _acquire_flight(self, query: Query) -> tuple[_Flight, bool]:
        with self._flights_lock:
            flight = self._flights.get(query)
            if flight is not None:
                self.metrics.incr(COALESCED)
                return flight, False
            flight = self._flights[query] = _Flight(query)
            return flight, True

    def _run_flight(self, flight: _Flight, query: Query) -> None:
        result: dict | None = None
        error: BaseException | None = None
        try:
            with self.metrics.span(f"serve/{query.kind}"):
                try:
                    result = self._execute(query, flight.publish)
                except WorkerCrashError as exc:
                    # The pool is poisoned; worker death is assumed
                    # transient (OOM kill, operator signal) exactly once
                    # per query.  The store's manifest-last atomicity
                    # means the crashed build reads as a miss, so the
                    # retry regenerates the missing shards.
                    self._replace_pool()
                    flight.publish(
                        {
                            "event": "retry",
                            "error": type(exc).__name__,
                            "detail": str(exc),
                        }
                    )
                    result = self._execute(query, flight.publish)
            self.metrics.incr(EXECUTED)
        except BaseException as exc:  # surfaced to every subscriber
            error = exc
            self.metrics.incr(FAILED)
        finally:
            with self._flights_lock:
                self._flights.pop(query, None)
            flight.finish(result, error)

    def _execute(self, query: Query, publish) -> dict:
        def on_shard(record: dict) -> None:
            publish(
                {
                    "event": "shard",
                    "tag": record.get("tag"),
                    "runs": record.get("runs"),
                    "bursts": record.get("bursts"),
                }
            )

        dataset = self.context.dataset(query.region, on_shard=on_shard)
        if query.kind == "dataset":
            return serialize_dataset(dataset)
        if query.kind == "table1":
            return serialize_table1(self.context.table1_row(query.region))
        if query.name == "hourly_boxes":
            return serialize_hourly_boxes(self.context.hourly_boxes(query.region))
        if query.name == "run_contention":
            return serialize_run_contention(self.context.run_contention(query.region))
        if query.name == "burst_contention":
            return serialize_burst_contention(
                self.context.burst_contention(query.region)
            )
        return serialize_profiles(self.context.profiles(query.region))

    # -- health and metrics ----------------------------------------------

    def healthz(self) -> dict:
        return {
            "status": "draining" if self._closed or self.cancel_event.is_set()
            else "ok",
            "uptime_s": time.monotonic() - self._started,
            "in_flight": len(self._flights),
        }

    def metrics_document(self) -> dict:
        """The ``/metrics`` body — schema-checked against the manifest
        family (see :mod:`repro.obs.manifest`)."""
        counters = self.metrics.counters()
        return build_service_metrics(
            self.config.fleet,
            {
                "requests": int(counters.get(REQUESTS, 0)),
                "queries_executed": int(counters.get(EXECUTED, 0)),
                "queries_coalesced": int(counters.get(COALESCED, 0)),
                "queries_failed": int(counters.get(FAILED, 0)),
                "pool_replaced": int(counters.get(POOL_REPLACED, 0)),
                "uptime_s": time.monotonic() - self._started,
                "request_threads": self.config.request_threads,
                "pool_jobs": self.pool_jobs(),
            },
            telemetry=self.metrics.snapshot(),
            store_dir=self.config.store_dir,
            shard_racks=self.config.shard_racks if self.config.store_dir else None,
            shard_hours=self.config.shard_hours if self.config.store_dir else None,
            cache_dir=self.config.cache_dir,
        )

    # -- lifecycle --------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Graceful drain: stop admitting queries, cancel queued fleet
        work (in-flight rack days finish; see ``run_windowed``), and
        release both executors.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.cancel_event.set()
        self._executor.shutdown(wait=wait, cancel_futures=True)
        with self._pool_lock:
            pool = self.context.pool
            self.context.pool = None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
