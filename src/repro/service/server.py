"""Asyncio transport for ``repro serve``.

A deliberately small HTTP/1.0-style server over ``asyncio.start_server``
(TCP) and/or ``asyncio.start_unix_server`` (unix socket) — GET only,
``Connection: close``, no keep-alive — because the service is a local
sidecar, not an internet-facing daemon, and the standard library has no
HTTP server that streams from an asyncio loop without extra deps.

Endpoints::

    GET /healthz                       -> application/json
    GET /metrics                       -> application/json
        (schema millisampler-repro/service-metrics; see repro.obs.manifest)
    GET /v1/dataset?region=RegA        -> application/x-ndjson
    GET /v1/table1?region=RegA         -> application/x-ndjson
    GET /v1/figure?name=hourly_boxes&region=RegA -> application/x-ndjson

NDJSON responses stream one JSON object per line as the query
progresses — a ``start`` event (with ``"coalesced": true`` when the
request joined an in-flight identical query), one ``shard`` event per
shard the build lands, then exactly one terminal ``result`` or
``error`` event.  Identical concurrent requests receive bit-identical
event sequences (single-flight replay; see
:class:`repro.service.core._Flight`).

Query bodies are blocking (process-pool fan-out, shard folds), so they
run on the service's request-thread executor; the loop thread only
shuttles events to sockets.  SIGTERM/SIGINT trigger a graceful drain:
stop accepting, cancel queued fleet work, let in-flight rack days
finish, then exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import urllib.parse

from ..errors import ConfigError
from .core import Query, QueryService

#: NDJSON routes -> query kind.
_QUERY_ROUTES = {
    "/v1/dataset": "dataset",
    "/v1/table1": "table1",
    "/v1/figure": "figure",
}

_MAX_REQUEST_BYTES = 65536


def _response_head(
    status: int, reason: str, content_type: str, framing: str
) -> bytes:
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"{framing}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")


def _json_line(payload: dict) -> bytes:
    # sort_keys so identical events are byte-identical across requests.
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


class ReproServer:
    """One :class:`QueryService` behind TCP and/or unix-socket listeners."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: str | None = None,
    ) -> None:
        if host is None and unix_socket is None:
            raise ConfigError("server needs a TCP listener or a unix socket")
        self.service = service
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self._servers: list[asyncio.base_events.Server] = []
        self._stopping: asyncio.Event | None = None

    @property
    def bound_port(self) -> int | None:
        """The actual TCP port (after binding port 0); None when
        serving only a unix socket."""
        for server in self._servers:
            for sock in server.sockets or ():
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[1]
        return None

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        if self.host is not None:
            self._servers.append(
                await asyncio.start_server(self._handle, self.host, self.port)
            )
        if self.unix_socket is not None:
            self._servers.append(
                await asyncio.start_unix_server(self._handle, path=self.unix_socket)
            )

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until :meth:`request_stop` (or SIGTERM/SIGINT) fires,
        then drain gracefully."""
        if self._stopping is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stopping.wait()
        await self._shutdown()

    def request_stop(self) -> None:
        """Signal-safe stop request (idempotent)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        # Blocking drain (pool + executor teardown) off the loop thread.
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.shutdown
        )

    # -- request handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            await self._finish(writer, 400, "Bad Request", {"error": "oversized"})
            return
        try:
            line = request.split(b"\r\n", 1)[0].decode("ascii")
            method, target, _version = line.split(" ", 2)
        except ValueError:
            await self._finish(writer, 400, "Bad Request", {"error": "malformed"})
            return
        if method != "GET":
            await self._finish(
                writer, 405, "Method Not Allowed", {"error": "GET only"}
            )
            return
        parsed = urllib.parse.urlsplit(target)
        params = dict(urllib.parse.parse_qsl(parsed.query))
        try:
            await self._route(writer, parsed.path, params)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, path: str, params: dict
    ) -> None:
        if path == "/healthz":
            await self._finish(writer, 200, "OK", self.service.healthz())
            return
        if path == "/metrics":
            await self._finish(writer, 200, "OK", self.service.metrics_document())
            return
        kind = _QUERY_ROUTES.get(path)
        if kind is None:
            await self._finish(writer, 404, "Not Found", {"error": f"no route {path}"})
            return
        try:
            query = Query(
                kind=kind,
                region=params.get("region", "RegA"),
                name=params.get("name"),
            )
        except ConfigError as exc:
            await self._finish(writer, 400, "Bad Request", {"error": str(exc)})
            return
        await self._stream_query(writer, query)

    async def _stream_query(
        self, writer: asyncio.StreamWriter, query: Query
    ) -> None:
        # Chunked framing, not read-to-EOF: long-lived pool workers can
        # hold an inherited duplicate of this socket (fork), so clients
        # must be able to recognize end-of-response without the FIN.
        writer.write(
            _response_head(
                200, "OK", "application/x-ndjson", "Transfer-Encoding: chunked"
            )
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        events = self.service.stream(query)
        while True:
            # The generator blocks on the flight queue; pull each event
            # on a worker thread so the loop keeps serving others.
            event = await loop.run_in_executor(None, _next_or_none, events)
            if event is None:
                break
            writer.write(_chunk(_json_line(event)))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _finish(
        self, writer: asyncio.StreamWriter, status: int, reason: str, payload: dict
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        writer.write(
            _response_head(
                status, reason, "application/json",
                f"Content-Length: {len(body)}",
            )
        )
        writer.write(body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _next_or_none(iterator):
    return next(iterator, None)


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8787,
    unix_socket: str | None = None,
    ready=None,
) -> None:
    """Blocking entry point used by ``repro serve``.

    ``ready`` (optional callable) receives the bound TCP port once
    listeners are up — the CI smoke test and the concurrency suite use
    it to synchronize with port-0 binding.
    """

    async def _main() -> None:
        server = ReproServer(
            service, host=host, port=port, unix_socket=unix_socket
        )
        await server.start()
        if ready is not None:
            ready(server.bound_port)
        await server.serve_forever()

    asyncio.run(_main())
