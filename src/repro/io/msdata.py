"""Millisampler-dataset reader/writer.

Record format: newline-delimited JSON (optionally gzip-compressed),
one record per host run.  Each record carries identity fields plus
parallel per-bucket arrays — the shape of the released Millisampler
data.  A :class:`FieldMap` translates between this library's field
names and whatever a given release calls them, so pointing the reader
at real data is a configuration change, not a code change.

The default map (and the writer's output) uses:

```json
{
  "host": "h1", "rack": "r1", "region": "RegA", "task": "cache/7",
  "timestamp": 1650000000.0, "interval_us": 1000, "line_rate_bps": 12.5e9,
  "ingress_bytes":      [ ... per-bucket ... ],
  "egress_bytes":       [ ... ],
  "ingress_retx_bytes": [ ... ],
  "egress_retx_bytes":  [ ... ],
  "ingress_ecn_bytes":  [ ... ],
  "connections":        [ ... ]
}
```
"""

from __future__ import annotations

import glob
import gzip
import json
import os
from dataclasses import dataclass

import numpy as np

from ..core.run import MillisamplerRun, RunMetadata, SyncRun
from ..core.syncsampler import SyncMillisampler
from ..errors import StorageError


@dataclass(frozen=True)
class FieldMap:
    """Record-field names used by a particular dataset release."""

    host: str = "host"
    rack: str = "rack"
    region: str = "region"
    task: str = "task"
    timestamp: str = "timestamp"
    interval_us: str = "interval_us"
    line_rate_bps: str = "line_rate_bps"
    ingress_bytes: str = "ingress_bytes"
    egress_bytes: str = "egress_bytes"
    ingress_retx_bytes: str = "ingress_retx_bytes"
    egress_retx_bytes: str = "egress_retx_bytes"
    ingress_ecn_bytes: str = "ingress_ecn_bytes"
    connections: str = "connections"
    #: Fields tolerated as missing (filled with zeros on read).
    optional: tuple[str, ...] = (
        "egress_bytes",
        "ingress_retx_bytes",
        "egress_retx_bytes",
        "ingress_ecn_bytes",
        "connections",
        "task",
        "region",
    )


DEFAULT_FIELD_MAP = FieldMap()


def run_from_record(record: dict, fields: FieldMap = DEFAULT_FIELD_MAP) -> MillisamplerRun:
    """Build a :class:`MillisamplerRun` from one dataset record."""
    def require(name: str):
        key = getattr(fields, name)
        if key in record:
            return record[key]
        if name in fields.optional:
            return None
        raise StorageError(f"record missing required field {key!r}")

    ingress = require("ingress_bytes")
    if ingress is None:
        raise StorageError("record has no ingress series")
    buckets = len(ingress)

    def series(name: str) -> np.ndarray:
        values = require(name)
        if values is None:
            return np.zeros(buckets)
        array = np.asarray(values, dtype=np.float64)
        if len(array) != buckets:
            raise StorageError(
                f"series {getattr(fields, name)!r} length {len(array)} != "
                f"ingress length {buckets}"
            )
        return array

    interval_us = require("interval_us")
    if interval_us is None or interval_us <= 0:
        raise StorageError("record needs a positive sampling interval")
    meta = RunMetadata(
        host=str(require("host")),
        rack=str(record.get(fields.rack, "")),
        region=str(record.get(fields.region, "") or ""),
        task=str(record.get(fields.task, "") or ""),
        start_time=float(record.get(fields.timestamp, 0.0)),
        sampling_interval=float(interval_us) * 1e-6,
        line_rate=float(record.get(fields.line_rate_bps, 12.5e9)) / 8.0,
    )
    return MillisamplerRun(
        meta=meta,
        in_bytes=np.asarray(ingress, dtype=np.float64),
        out_bytes=series("egress_bytes"),
        in_retx_bytes=series("ingress_retx_bytes"),
        out_retx_bytes=series("egress_retx_bytes"),
        in_ecn_bytes=series("ingress_ecn_bytes"),
        conn_estimate=series("connections"),
    )


def record_from_run(run: MillisamplerRun, fields: FieldMap = DEFAULT_FIELD_MAP) -> dict:
    """Serialize a run into the dataset record shape."""
    return {
        fields.host: run.meta.host,
        fields.rack: run.meta.rack,
        fields.region: run.meta.region,
        fields.task: run.meta.task,
        fields.timestamp: run.meta.start_time,
        fields.interval_us: run.meta.sampling_interval * 1e6,
        fields.line_rate_bps: run.meta.line_rate * 8.0,
        fields.ingress_bytes: run.in_bytes.tolist(),
        fields.egress_bytes: run.out_bytes.tolist(),
        fields.ingress_retx_bytes: run.in_retx_bytes.tolist(),
        fields.egress_retx_bytes: run.out_retx_bytes.tolist(),
        fields.ingress_ecn_bytes: run.in_ecn_bytes.tolist(),
        fields.connections: run.conn_estimate.tolist(),
    }


def _open_maybe_gzip(path: str, mode: str):
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_host_records(
    path: str, fields: FieldMap = DEFAULT_FIELD_MAP
) -> list[MillisamplerRun]:
    """Read one NDJSON(.gz) file of host records."""
    runs: list[MillisamplerRun] = []
    try:
        with _open_maybe_gzip(path, "r") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StorageError(
                        f"{path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                runs.append(run_from_record(record, fields))
    except OSError as exc:
        raise StorageError(f"cannot read {path}: {exc}") from exc
    return runs


def write_sync_run(
    sync_run: SyncRun,
    directory: str,
    fields: FieldMap = DEFAULT_FIELD_MAP,
    compress: bool = True,
) -> str:
    """Write a rack run as one NDJSON(.gz) file; returns the path.

    File naming is ``<rack>__h<hour>.ndjson[.gz]`` so a directory holds
    a full region-day.
    """
    os.makedirs(directory, exist_ok=True)
    suffix = ".ndjson.gz" if compress else ".ndjson"
    path = os.path.join(directory, f"{sync_run.rack}__h{sync_run.hour:02d}{suffix}")
    with _open_maybe_gzip(path, "w") as handle:
        for run in sync_run.runs:
            handle.write(json.dumps(record_from_run(run, fields)) + "\n")
    return path


def load_rack_directory(
    directory: str,
    fields: FieldMap = DEFAULT_FIELD_MAP,
    pattern: str = "*.ndjson*",
) -> list[SyncRun]:
    """Load every rack-run file in a directory into aligned SyncRuns.

    Each file is treated as one rack collection: its host runs are
    trimmed and interpolated onto a common base exactly like live
    SyncMillisampler output, so real released data flows through the
    identical pipeline.
    """
    paths = sorted(glob.glob(os.path.join(directory, pattern)))
    if not paths:
        raise StorageError(f"no dataset files matching {pattern!r} in {directory}")
    sync_runs: list[SyncRun] = []
    for path in paths:
        runs = read_host_records(path, fields)
        if not runs:
            continue
        name = os.path.basename(path)
        hour = 0
        if "__h" in name:
            try:
                hour = int(name.split("__h")[1][:2])
            except ValueError:
                hour = 0
        rack = runs[0].meta.rack or name.split("__")[0]
        region = runs[0].meta.region
        sync_runs.append(
            SyncMillisampler.assemble_from_runs(rack, region, runs, hour=hour)
        )
    return sync_runs
