"""Dataset import/export.

The paper's authors released an anonymized Millisampler dataset; this
package reads per-host record files in that style into the repo's
:class:`~repro.core.run.MillisamplerRun` / :class:`~repro.core.run.SyncRun`
model (so the whole Section 5-8 pipeline runs on real data), and
exports synthetic region-days in the same format (so tooling built
against the released data works on the synthesis).

Field names in published datasets drift between releases; the reader
takes a :class:`~repro.io.msdata.FieldMap` so any column naming can be
adapted without code changes.
"""

from .msdata import (
    DEFAULT_FIELD_MAP,
    FieldMap,
    load_rack_directory,
    read_host_records,
    record_from_run,
    run_from_record,
    write_sync_run,
)

__all__ = [
    "DEFAULT_FIELD_MAP",
    "FieldMap",
    "load_rack_directory",
    "read_host_records",
    "record_from_run",
    "run_from_record",
    "write_sync_run",
]
