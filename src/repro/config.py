"""Configuration dataclasses shared by the simulator, fleet model, and
analysis pipeline.

Defaults reproduce the rack profile the paper studies (Section 3): a
50 Gbps NIC shared by 4 servers (12.5 Gbps per server queue), a 16 MB
shared ToR buffer in four 4 MB quadrants with ~3.6 MB dynamically shared
per quadrant, dynamic-threshold alpha of 1, and a 120 KB static ECN
threshold.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from . import units
from .errors import ConfigError


@dataclass(frozen=True)
class BufferConfig:
    """Shared-memory ToR buffer configuration (Section 2.1 and 3)."""

    #: Total dynamically shared bytes in the quadrant serving the
    #: studied server queues.
    shared_bytes: float = units.SHARED_QUADRANT_BYTES
    #: Dedicated (reserved) bytes available to each queue before it
    #: draws from the shared pool.
    dedicated_bytes_per_queue: float = units.QUADRANT_BYTES - units.SHARED_QUADRANT_BYTES
    #: Dynamic-threshold alpha: T(t) = alpha * (B - Q(t)).
    alpha: float = units.DEFAULT_ALPHA
    #: Static ECN marking threshold per queue.
    ecn_threshold_bytes: float = units.ECN_THRESHOLD_BYTES

    def __post_init__(self) -> None:
        if self.shared_bytes <= 0:
            raise ConfigError("shared buffer must be positive")
        if self.alpha <= 0:
            raise ConfigError("alpha must be positive")
        if self.dedicated_bytes_per_queue < 0:
            raise ConfigError("dedicated buffer cannot be negative")
        if self.ecn_threshold_bytes < 0:
            raise ConfigError("ECN threshold cannot be negative")

    def saturated_queue_limit(self, active_queues: int) -> float:
        """Fixed-point per-queue limit when ``active_queues`` queues all
        exercise the buffer to their permitted limit (Section 2.1.2):

            T = alpha * B / (1 + alpha * S)
        """
        if active_queues < 0:
            raise ConfigError("active queue count cannot be negative")
        if active_queues == 0:
            return self.alpha * self.shared_bytes
        return self.alpha * self.shared_bytes / (1.0 + self.alpha * active_queues)

    def queue_share_fraction(self, active_queues: int) -> float:
        """:meth:`saturated_queue_limit` as a fraction of the shared buffer
        (the y-axis of Figure 1)."""
        return self.saturated_queue_limit(active_queues) / self.shared_bytes


@dataclass(frozen=True)
class RackConfig:
    """Physical rack profile (Section 3)."""

    servers: int = units.SERVERS_PER_RACK
    server_link_rate: float = units.SERVER_LINK_RATE
    uplinks: int = 4
    uplink_rate: float = units.gbps(100)
    buffer: BufferConfig = field(default_factory=BufferConfig)
    rtt: float = units.TYPICAL_RTT

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise ConfigError("rack must have at least one server")
        if self.server_link_rate <= 0:
            raise ConfigError("server link rate must be positive")
        if self.uplinks <= 0 or self.uplink_rate <= 0:
            raise ConfigError("uplinks must exist and have positive rate")
        if self.rtt <= 0:
            raise ConfigError("RTT must be positive")


@dataclass(frozen=True)
class SamplerConfig:
    """Millisampler run parameters (Section 4.1)."""

    #: Width of each time bucket, in seconds.
    sampling_interval: float = units.ANALYSIS_INTERVAL
    #: Number of buckets per run; fixed at 2000 in production.
    buckets: int = units.MILLISAMPLER_BUCKETS
    #: Number of CPU cores (per-CPU counter arrays avoid locking).
    #: Production hosts average a few dozen cores; the per-CPU maps for
    #: 26 cores land near the paper's 3.6 MB average footprint.
    cpus: int = 26
    #: Whether to estimate active connections with the 128-bit sketch.
    count_flows: bool = True

    def __post_init__(self) -> None:
        if self.sampling_interval <= 0:
            raise ConfigError("sampling interval must be positive")
        if self.buckets <= 0:
            raise ConfigError("bucket count must be positive")
        if self.cpus <= 0:
            raise ConfigError("cpu count must be positive")

    @property
    def duration(self) -> float:
        """Nominal observation period of one run, in seconds."""
        return self.sampling_interval * self.buckets


#: Parameter values a :class:`PolicySpec` may carry.  The scalar JSON
#: types only — a spec must survive a canonical-JSON round trip bit-for-
#: bit, and it crosses process boundaries (pickled into workers, hashed
#: into dataset cache keys), so anything richer lives in the policy
#: object built from the spec, never in the spec itself.
_POLICY_PARAM_TYPES = (str, int, float, bool)


def _coerce_policy_value(raw: str) -> str | int | float | bool:
    """Parse one ``key=value`` CLI token into its natural scalar type."""
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


@dataclass(frozen=True)
class PolicySpec:
    """Serializable identity of a buffer-sharing policy.

    A spec is *data*, not behaviour: a registered policy name plus the
    constructor parameters the run pins down, normalized to a sorted
    tuple of ``(key, value)`` pairs so equal specs compare, hash, and
    serialize identically.  The live :class:`~repro.fleet.policies.SharingPolicy`
    is built from a spec via :func:`repro.fleet.policies.build_policy`
    (the registry lives there; this module stays import-cycle-free).

    The default spec — ``dynamic-threshold`` with no pinned parameters —
    means "Choudhury-Hahne DT at the rack's configured alpha", i.e.
    exactly the behaviour every dataset had before policy became a
    config axis.  Parameters left unpinned take the policy class's own
    defaults at build time.
    """

    name: str = "dynamic-threshold"
    params: tuple[tuple[str, str | int | float | bool], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError("policy name must be a non-empty string")
        raw = self.params.items() if isinstance(self.params, dict) else self.params
        seen: dict[str, str | int | float | bool] = {}
        for pair in raw:
            try:
                key, value = pair
            except (TypeError, ValueError):
                raise ConfigError(
                    "policy params must be (name, value) pairs"
                ) from None
            if not isinstance(key, str) or not key:
                raise ConfigError("policy parameter names must be non-empty strings")
            if key in seen:
                raise ConfigError(f"duplicate policy parameter {key!r}")
            if not isinstance(value, _POLICY_PARAM_TYPES):
                raise ConfigError(
                    f"policy parameter {key!r} must be str/int/float/bool, "
                    f"got {type(value).__name__}"
                )
            if isinstance(value, float) and not math.isfinite(value):
                raise ConfigError(f"policy parameter {key!r} must be finite")
            seen[key] = value
        object.__setattr__(self, "params", tuple(sorted(seen.items())))

    def param_dict(self) -> dict[str, str | int | float | bool]:
        """The pinned parameters as a plain dict."""
        return dict(self.params)

    def canonical_json(self) -> str:
        """Deterministic JSON form: equal specs produce equal strings.

        This is the spec's identity everywhere it is persisted — the
        dataset cache key payload, the shard-store manifest — so it must
        be stable across processes and Python versions (sorted keys, no
        NaN, no whitespace variance).
        """
        return json.dumps(
            {"name": self.name, "params": self.param_dict()},
            sort_keys=True,
            allow_nan=False,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "PolicySpec":
        """Inverse of :meth:`canonical_json`."""
        try:
            payload = json.loads(text)
            name = payload["name"]
            params = tuple(payload.get("params", {}).items())
        except (ValueError, TypeError, KeyError, AttributeError) as exc:
            raise ConfigError(f"malformed policy spec JSON: {exc}") from exc
        return cls(name=name, params=params)

    @classmethod
    def from_string(cls, text: str) -> "PolicySpec":
        """Parse the CLI form ``name`` or ``name:key=val,key=val``.

        Values are coerced to the narrowest scalar type that parses
        (bool, int, float, then string), matching how the policy
        constructors consume them.
        """
        name, _, rest = text.partition(":")
        name = name.strip()
        params: list[tuple[str, str | int | float | bool]] = []
        if rest.strip():
            for token in rest.split(","):
                key, sep, raw = token.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ConfigError(
                        f"malformed policy parameter {token!r}; "
                        "expected name:key=value,key=value"
                    )
                params.append((key, _coerce_policy_value(raw.strip())))
        return cls(name=name, params=tuple(params))


#: The spec every config carries unless a run pins another policy: the
#: deployed Choudhury-Hahne dynamic threshold, exactly as before policy
#: was a config axis.
DEFAULT_POLICY_SPEC = PolicySpec()


#: Valid values of :attr:`FleetConfig.kernel`.  Lives here (rather than
#: in :mod:`repro.fleet.kernels`) so config validation never imports the
#: fleet package.
KERNEL_CHOICES = ("auto", "numpy", "native")


@dataclass(frozen=True)
class FleetConfig:
    """Scale of the synthetic region-day dataset (Section 5).

    The paper samples 1000 racks per region hourly for a day.  The
    defaults here are laptop-scale; experiments scale them up or down
    explicitly.  ``runs_per_rack`` corresponds to the ~10 runs each rack
    contributes across the day.

    Zero racks or zero runs per rack are valid degenerate scales: they
    describe an *empty* region-day, and every generation path (serial,
    parallel, sharded) returns the same empty dataset for them.
    """

    racks_per_region: int = 200
    runs_per_rack: int = 10
    hours: int = 24
    seed: int = 20221025  # IMC '22 started October 25, 2022.
    #: Worker processes for dataset generation: 1 = serial, 0 = every
    #: available core.  Execution-only — never changes the generated
    #: data (per-(rack, run) seed streams make any fan-out identical),
    #: and is therefore excluded from the dataset cache key.
    jobs: int = 1
    #: Rack runs per batched fluid-model pass (see
    #: :meth:`repro.fleet.buffermodel.FluidBufferModel.run_batch`).
    #: Execution-only like ``jobs``: any batch size produces
    #: bit-identical data, larger batches amortize the per-bucket time
    #: loop over more runs at the cost of holding that many raw runs in
    #: memory at once (~20 MB per run at paper scale).  16 is the
    #: measured knee: roughly 2x end-to-end region generation vs the
    #: serial kernel, with diminishing returns (and growing footprint)
    #: beyond it.
    fluid_batch: int = 16
    #: Return parallel workers' results through a preallocated
    #: ``multiprocessing.shared_memory`` segment (columnar float64
    #: slots, see :mod:`repro.fleet.shm`) instead of pickling the
    #: summaries over the executor's result pipe.  Execution-only like
    #: ``jobs``: the decoded dataset is bit-identical to the pickled
    #: transport (asserted by the determinism suite), so the flag never
    #: feeds the dataset cache key.  The pickled path (False, the
    #: default) remains the bit-exactness oracle.
    shm_transfer: bool = False
    #: Buffer-sharing policy every synthesized rack runs under.  A
    #: dataset axis like ``seed``: two configs differing only in policy
    #: describe *different* region-days, so the spec feeds the dataset
    #: cache key and the shard-store manifest (see
    #: :mod:`repro.fleet.cache`; the default DT spec is keyed as the
    #: pre-policy-axis payload so existing caches stay valid).
    policy: PolicySpec = field(default_factory=PolicySpec)
    #: Fluid-model kernel implementation: ``auto`` picks the native
    #: (numba-jitted) kernel when numba imports and the policy has a
    #: native limit rule, falling back to numpy otherwise; ``numpy``
    #: and ``native`` pin the choice (``native`` warns and falls back
    #: when numba is unavailable).  Execution-only like ``jobs``: both
    #: kernels are bit-identical (the numpy path is the oracle, pinned
    #: by the kernel-parity suites), so the axis never feeds the
    #: dataset cache key.
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.racks_per_region < 0:
            raise ConfigError("region rack count cannot be negative")
        if self.runs_per_rack < 0:
            raise ConfigError("runs per rack cannot be negative")
        if not 1 <= self.hours <= 24:
            raise ConfigError("hours must be within a day")
        if self.jobs < 0:
            raise ConfigError("jobs cannot be negative (0 means all cores)")
        if self.fluid_batch < 1:
            raise ConfigError("fluid batch must contain at least one run")
        if not isinstance(self.policy, PolicySpec):
            raise ConfigError("policy must be a PolicySpec")
        if self.kernel not in KERNEL_CHOICES:
            raise ConfigError(
                f"kernel must be one of {KERNEL_CHOICES}, got {self.kernel!r}"
            )


#: The configuration used throughout the paper's analysis.
PAPER_RACK = RackConfig()
PAPER_SAMPLER = SamplerConfig()
