"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or combination."""


class SamplerError(ReproError):
    """Millisampler lifecycle misuse (e.g. enabling an unattached filter)."""


class SimulationError(ReproError):
    """Discrete-event simulator invariant violation."""


class AnalysisError(ReproError):
    """Analysis-pipeline input did not satisfy preconditions."""


class StorageError(ReproError):
    """Host-local run storage failure (corrupt record, missing run)."""


class ManifestError(ReproError):
    """A run manifest does not conform to the documented schema."""
