"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or combination."""


class SamplerError(ReproError):
    """Millisampler lifecycle misuse (e.g. enabling an unattached filter)."""


class SimulationError(ReproError):
    """Discrete-event simulator invariant violation."""


class InvariantViolation(SimulationError):
    """A conservation law the simulator must uphold was broken.

    Raised by :class:`repro.simnet.audit.InvariantAuditor` with the
    structured context needed to localize the miscounted counter:
    which component, which law, what was observed vs expected, and the
    simulated time of the violating event.
    """

    def __init__(
        self,
        component: str,
        law: str,
        observed: object,
        expected: object,
        sim_time: float | None = None,
        detail: str = "",
    ) -> None:
        self.component = component
        self.law = law
        self.observed = observed
        self.expected = expected
        self.sim_time = sim_time
        self.detail = detail
        message = f"[{law}] {component}: observed {observed!r}, expected {expected!r}"
        if sim_time is not None:
            message += f" at t={sim_time:.9f}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class AnalysisError(ReproError):
    """Analysis-pipeline input did not satisfy preconditions."""


class StorageError(ReproError):
    """Host-local run storage failure (corrupt record, missing run)."""


class ManifestError(ReproError):
    """A run manifest does not conform to the documented schema."""
