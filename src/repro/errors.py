"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration value or combination."""


class SamplerError(ReproError):
    """Millisampler lifecycle misuse (e.g. enabling an unattached filter)."""


class SimulationError(ReproError):
    """Discrete-event simulator invariant violation."""


class InvariantViolation(SimulationError):
    """A conservation law the simulator must uphold was broken.

    Raised by :class:`repro.simnet.audit.InvariantAuditor` with the
    structured context needed to localize the miscounted counter:
    which component, which law, what was observed vs expected, and the
    simulated time of the violating event.
    """

    def __init__(
        self,
        component: str,
        law: str,
        observed: object,
        expected: object,
        sim_time: float | None = None,
        detail: str = "",
    ) -> None:
        self.component = component
        self.law = law
        self.observed = observed
        self.expected = expected
        self.sim_time = sim_time
        self.detail = detail
        message = f"[{law}] {component}: observed {observed!r}, expected {expected!r}"
        if sim_time is not None:
            message += f" at t={sim_time:.9f}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class ParallelExecutionError(ReproError):
    """Base class for failures of the process-pool fan-out substrate.

    ``label`` names the unit of work involved (e.g. ``"rack 3 (RegA-
    rack0003)"`` or ``"shard r0000-0064-h00-12"``) so callers — the CLI,
    the query service, tests — can report *which* piece of the region
    failed without parsing the message.
    """

    def __init__(self, label: str, message: str) -> None:
        self.label = label
        super().__init__(message)


class WorkerTaskError(ParallelExecutionError):
    """A worker task raised; the pool was cancelled fail-fast.

    The original exception is chained as ``__cause__``.  Raised on the
    *first* failure: pending work is cancelled immediately instead of
    draining the whole queue, so a crash at rack 3 of 1000 surfaces in
    O(window), not O(racks).
    """

    def __init__(self, label: str, cause: BaseException) -> None:
        super().__init__(
            label,
            f"worker task failed at {label}: {type(cause).__name__}: {cause}",
        )


class WorkerCrashError(ParallelExecutionError):
    """A worker process died abruptly (``BrokenProcessPool``).

    A crashed worker takes the whole ``ProcessPoolExecutor`` with it
    and every in-flight future reports the same breakage, so the exact
    victim is unknowable; ``suspects`` lists the labels of the work
    that was in flight when the pool broke (the first entry is the
    future that reported the break).
    """

    def __init__(self, suspects: list[str], detail: str = "") -> None:
        self.suspects = list(suspects)
        label = self.suspects[0] if self.suspects else "<idle pool>"
        message = (
            f"worker process crashed while running {label}"
            + (f" (also in flight: {', '.join(self.suspects[1:])})" if len(self.suspects) > 1 else "")
        )
        if detail:
            message += f": {detail}"
        super().__init__(label, message)


class WorkerCancelled(ReproError):
    """A pooled generation was drained on request (e.g. SIGTERM).

    In-flight work was allowed to finish; queued work was never
    started.  ``completed`` counts the units that finished before the
    drain."""

    def __init__(self, completed: int, total: int) -> None:
        self.completed = completed
        self.total = total
        super().__init__(
            f"generation cancelled after {completed}/{total} units; "
            f"queued work was not started"
        )


class AnalysisError(ReproError):
    """Analysis-pipeline input did not satisfy preconditions."""


class StorageError(ReproError):
    """Host-local run storage failure (corrupt record, missing run)."""


class ManifestError(ReproError):
    """A run manifest does not conform to the documented schema."""
