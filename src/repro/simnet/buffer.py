"""Shared-memory switch buffer with dynamic-threshold sharing.

Section 2.1: the buffer is shared across all interfaces; each queue's
instantaneous limit follows Choudhury-Hahne dynamic thresholds:

    T(t) = alpha * (B - Q(t))

where ``B`` is the shared buffer size and ``Q(t)`` the current total
shared occupancy.  With ``S`` queues simultaneously at their limit, the
fixed point is ``T = alpha*B / (1 + alpha*S)`` — Figure 1.

This class models **one quadrant** of the ToR buffer (Section 3: the
16 MB buffer is divided into four 4 MB quadrants; an egress queue maps
to a single quadrant).  Each queue additionally has a small dedicated
allocation it consumes before touching the shared pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BufferConfig
from ..errors import SimulationError
from .audit import active_tap


@dataclass(frozen=True)
class BufferAdmission:
    """Outcome of offering a packet to the buffer."""

    accepted: bool
    #: Bytes charged against the queue's dedicated allocation.
    dedicated_bytes: int = 0
    #: Bytes charged against the shared pool.
    shared_bytes: int = 0
    #: Human-readable reason when rejected.
    reason: str = ""


@dataclass
class _QueueState:
    dedicated_used: int = 0
    shared_used: int = 0
    discarded_packets: int = 0
    discarded_bytes: int = 0
    admitted_bytes: int = 0

    @property
    def occupancy(self) -> int:
        return self.dedicated_used + self.shared_used


class SharedBuffer:
    """One dynamically shared buffer pool (a ToR quadrant)."""

    def __init__(self, config: BufferConfig | None = None) -> None:
        self.config = config or BufferConfig()
        self._queues: dict[str, _QueueState] = {}
        self._shared_occupancy = 0
        self._audit = active_tap()

    # -- registration -------------------------------------------------------

    def register_queue(self, queue_id: str) -> None:
        if queue_id in self._queues:
            raise SimulationError(f"queue {queue_id!r} already registered")
        self._queues[queue_id] = _QueueState()

    def _state(self, queue_id: str) -> _QueueState:
        try:
            return self._queues[queue_id]
        except KeyError:
            raise SimulationError(f"unknown queue {queue_id!r}") from None

    # -- dynamic threshold ---------------------------------------------------

    @property
    def shared_occupancy(self) -> int:
        """Q(t): bytes currently drawn from the shared pool."""
        return self._shared_occupancy

    def threshold(self) -> float:
        """T(t) = alpha * (B - Q(t)): the instantaneous per-queue limit on
        shared-pool usage."""
        free = self.config.shared_bytes - self._shared_occupancy
        return self.config.alpha * max(free, 0.0)

    def active_queues(self) -> int:
        """Queues currently holding any buffered bytes."""
        return sum(1 for state in self._queues.values() if state.occupancy > 0)

    def queue_occupancy(self, queue_id: str) -> int:
        return self._state(queue_id).occupancy

    # -- admission / release --------------------------------------------------

    def admit(self, queue_id: str, size: int) -> BufferAdmission:
        """Offer a packet of ``size`` bytes to ``queue_id``.

        Admission is atomic: dedicated space is consumed first; the
        remainder must fit under the queue's dynamic threshold *and* in
        the remaining shared pool, else the whole packet is discarded.
        """
        if size <= 0:
            raise SimulationError("packet size must be positive")
        state = self._state(queue_id)

        dedicated_free = int(self.config.dedicated_bytes_per_queue) - state.dedicated_used
        from_dedicated = min(size, max(dedicated_free, 0))
        from_shared = size - from_dedicated

        if from_shared > 0:
            threshold = self.threshold()
            pool_free = self.config.shared_bytes - self._shared_occupancy
            if state.shared_used + from_shared > threshold:
                state.discarded_packets += 1
                state.discarded_bytes += size
                admission = BufferAdmission(
                    False, reason=f"over dynamic threshold ({threshold:.0f}B)"
                )
                self._audit.on_admit(self, queue_id, size, admission)
                return admission
            if from_shared > pool_free:
                state.discarded_packets += 1
                state.discarded_bytes += size
                admission = BufferAdmission(False, reason="shared pool exhausted")
                self._audit.on_admit(self, queue_id, size, admission)
                return admission

        state.dedicated_used += from_dedicated
        state.shared_used += from_shared
        state.admitted_bytes += size
        self._shared_occupancy += from_shared
        admission = BufferAdmission(
            True, dedicated_bytes=from_dedicated, shared_bytes=from_shared
        )
        self._audit.on_admit(self, queue_id, size, admission)
        return admission

    def release(self, queue_id: str, admission: BufferAdmission) -> None:
        """Return a previously admitted packet's bytes to the buffer."""
        if not admission.accepted:
            raise SimulationError("cannot release a rejected admission")
        state = self._state(queue_id)
        if (
            state.dedicated_used < admission.dedicated_bytes
            or state.shared_used < admission.shared_bytes
        ):
            raise SimulationError(f"double release on queue {queue_id!r}")
        state.dedicated_used -= admission.dedicated_bytes
        state.shared_used -= admission.shared_bytes
        self._shared_occupancy -= admission.shared_bytes
        self._audit.on_release(self, queue_id, admission)

    # -- accounting -----------------------------------------------------------

    def discards(self, queue_id: str) -> tuple[int, int]:
        """(packets, bytes) discarded on ``queue_id`` so far."""
        state = self._state(queue_id)
        return state.discarded_packets, state.discarded_bytes

    def total_discard_bytes(self) -> int:
        return sum(state.discarded_bytes for state in self._queues.values())

    def total_admitted_bytes(self) -> int:
        return sum(state.admitted_bytes for state in self._queues.values())

    def reset_counters(self) -> None:
        """Zero discard/admission counters (per-minute counter rollover)."""
        for state in self._queues.values():
            state.discarded_packets = 0
            state.discarded_bytes = 0
            state.admitted_bytes = 0
        self._audit.on_reset_counters(self)
