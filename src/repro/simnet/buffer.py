"""Shared-memory switch buffer with policy-governed sharing.

Section 2.1: the buffer is shared across all interfaces; by default each
queue's instantaneous limit follows Choudhury-Hahne dynamic thresholds:

    T(t) = alpha * (B - Q(t))

where ``B`` is the shared buffer size and ``Q(t)`` the current total
shared occupancy.  With ``S`` queues simultaneously at their limit, the
fixed point is ``T = alpha*B / (1 + alpha*S)`` — Figure 1.

The admission rule is *delegated*: any
:class:`repro.fleet.policies.SharingPolicy` — the same objects the
fluid model ablates — can govern this buffer, so packet-level and fluid
experiments share one policy zoo.  The default remains DT at the
config's alpha, bit-identical to the pre-policy-axis behaviour.

This class models **one quadrant** of the ToR buffer (Section 3: the
16 MB buffer is divided into four 4 MB quadrants; an egress queue maps
to a single quadrant).  Each queue additionally has a small dedicated
allocation it consumes before touching the shared pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import BufferConfig
from ..errors import SimulationError
from ..fleet.policies import DynamicThresholdPolicy, SharingPolicy
from .audit import active_tap


@dataclass(frozen=True)
class BufferAdmission:
    """Outcome of offering a packet to the buffer."""

    accepted: bool
    #: Bytes charged against the queue's dedicated allocation.
    dedicated_bytes: int = 0
    #: Bytes charged against the shared pool.
    shared_bytes: int = 0
    #: Human-readable reason when rejected.
    reason: str = ""


@dataclass
class _QueueState:
    dedicated_used: int = 0
    shared_used: int = 0
    discarded_packets: int = 0
    discarded_bytes: int = 0
    admitted_bytes: int = 0
    #: Consecutive :meth:`SharedBuffer.tick` steps this queue has held
    #: bytes — the activity clock flow-aware policies key on.
    active_steps: int = 0

    @property
    def occupancy(self) -> int:
        return self.dedicated_used + self.shared_used


class SharedBuffer:
    """One shared buffer pool (a ToR quadrant) under a sharing policy."""

    def __init__(
        self,
        config: BufferConfig | None = None,
        policy: SharingPolicy | None = None,
    ) -> None:
        self.config = config or BufferConfig()
        #: Admission rule for the shared pool.  ``None`` keeps the
        #: deployed Choudhury-Hahne dynamic threshold at the config's
        #: alpha — the exact behaviour this class hard-coded before the
        #: policy became pluggable.
        self.policy = (
            policy
            if policy is not None
            else DynamicThresholdPolicy(alpha=self.config.alpha)
        )
        self._queues: dict[str, _QueueState] = {}
        self._shared_occupancy = 0
        self._audit = active_tap()

    # -- registration -------------------------------------------------------

    def register_queue(self, queue_id: str) -> None:
        if queue_id in self._queues:
            raise SimulationError(f"queue {queue_id!r} already registered")
        self._queues[queue_id] = _QueueState()

    def _state(self, queue_id: str) -> _QueueState:
        try:
            return self._queues[queue_id]
        except KeyError:
            raise SimulationError(f"unknown queue {queue_id!r}") from None

    # -- sharing policy ------------------------------------------------------

    @property
    def shared_occupancy(self) -> int:
        """Q(t): bytes currently drawn from the shared pool."""
        return self._shared_occupancy

    def threshold(self) -> float:
        """T(t) = alpha * (B - Q(t)): the classic dynamic threshold.

        Kept as the Figure-1 reference formula; admission itself asks
        :meth:`policy_limit`, which equals this number under the default
        DT policy.
        """
        free = self.config.shared_bytes - self._shared_occupancy
        return self.config.alpha * max(free, 0.0)

    def policy_limit(self, queue_id: str) -> float:
        """The active policy's shared-occupancy limit for ``queue_id``.

        Evaluates the fluid-model policy interface on this quadrant's
        state: one quadrant whose pool holds ``Q(t)``, the queue's own
        shared charge, and its activity clock.  Every built-in policy
        derives a queue's limit from exactly these quantities, so the
        single-queue evaluation is exact (and O(1) per admission).
        """
        state = self._state(queue_id)
        limit = self.policy.limits(
            float(self.config.shared_bytes),
            np.array([float(self._shared_occupancy)]),
            np.array([0]),
            np.array([float(state.shared_used)]),
            np.array([float(state.active_steps)]),
        )
        return float(limit[0])

    def tick(self) -> None:
        """Advance the policy's activity clock by one step.

        Queues holding bytes extend their consecutive-active streak;
        idle queues reset to zero — the same rule the fluid model
        applies per bucket.  Drivers that model time (the packet switch,
        parity harnesses) call this once per step; purely event-driven
        users may never call it, in which case every queue stays in the
        "fresh burst" class.
        """
        for state in self._queues.values():
            state.active_steps = state.active_steps + 1 if state.occupancy > 0 else 0

    def active_queues(self) -> int:
        """Queues currently holding any buffered bytes."""
        return sum(1 for state in self._queues.values() if state.occupancy > 0)

    def queue_occupancy(self, queue_id: str) -> int:
        return self._state(queue_id).occupancy

    def queue_active_steps(self, queue_id: str) -> int:
        """Consecutive ticks ``queue_id`` has held bytes."""
        return self._state(queue_id).active_steps

    # -- admission / release --------------------------------------------------

    def admit(self, queue_id: str, size: int) -> BufferAdmission:
        """Offer a packet of ``size`` bytes to ``queue_id``.

        Admission is atomic: dedicated space is consumed first; the
        remainder must fit under the queue's policy limit *and* in
        the remaining shared pool, else the whole packet is discarded.
        """
        if size <= 0:
            raise SimulationError("packet size must be positive")
        state = self._state(queue_id)

        dedicated_free = int(self.config.dedicated_bytes_per_queue) - state.dedicated_used
        from_dedicated = min(size, max(dedicated_free, 0))
        from_shared = size - from_dedicated

        if from_shared > 0:
            limit = self.policy_limit(queue_id)
            pool_free = self.config.shared_bytes - self._shared_occupancy
            if state.shared_used + from_shared > limit:
                state.discarded_packets += 1
                state.discarded_bytes += size
                admission = BufferAdmission(
                    False,
                    reason=f"over {self.policy.name} limit ({limit:.0f}B)",
                )
                self._audit.on_admit(self, queue_id, size, admission)
                return admission
            if from_shared > pool_free:
                state.discarded_packets += 1
                state.discarded_bytes += size
                admission = BufferAdmission(False, reason="shared pool exhausted")
                self._audit.on_admit(self, queue_id, size, admission)
                return admission

        state.dedicated_used += from_dedicated
        state.shared_used += from_shared
        state.admitted_bytes += size
        self._shared_occupancy += from_shared
        admission = BufferAdmission(
            True, dedicated_bytes=from_dedicated, shared_bytes=from_shared
        )
        self._audit.on_admit(self, queue_id, size, admission)
        return admission

    def release(self, queue_id: str, admission: BufferAdmission) -> None:
        """Return a previously admitted packet's bytes to the buffer."""
        if not admission.accepted:
            raise SimulationError("cannot release a rejected admission")
        state = self._state(queue_id)
        if (
            state.dedicated_used < admission.dedicated_bytes
            or state.shared_used < admission.shared_bytes
        ):
            raise SimulationError(f"double release on queue {queue_id!r}")
        state.dedicated_used -= admission.dedicated_bytes
        state.shared_used -= admission.shared_bytes
        self._shared_occupancy -= admission.shared_bytes
        self._audit.on_release(self, queue_id, admission)

    # -- accounting -----------------------------------------------------------

    def discards(self, queue_id: str) -> tuple[int, int]:
        """(packets, bytes) discarded on ``queue_id`` so far."""
        state = self._state(queue_id)
        return state.discarded_packets, state.discarded_bytes

    def total_discard_bytes(self) -> int:
        return sum(state.discarded_bytes for state in self._queues.values())

    def total_admitted_bytes(self) -> int:
        return sum(state.admitted_bytes for state in self._queues.values())

    def reset_counters(self) -> None:
        """Zero discard/admission counters (per-minute counter rollover)."""
        for state in self._queues.values():
            state.discarded_packets = 0
            state.discarded_bytes = 0
            state.admitted_bytes = 0
        self._audit.on_reset_counters(self)
