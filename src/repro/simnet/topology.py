"""Rack topology builder: hosts, ToR, clocks, and sampling stacks.

Assembles the pieces into the unit every packet-level experiment uses:
a rack of servers behind one shared-buffer ToR, each host carrying a
Millisampler in its tap chain and an NTP-disciplined clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RackConfig, SamplerConfig
from ..core.millisampler import Millisampler
from ..core.run import RunMetadata
from ..core.scheduler import RunScheduler
from ..core.storage import HostRunStore
from ..core.syncsampler import SampledHost
from ..errors import SimulationError
from .clock import NtpDiscipline
from .engine import Engine
from .host import Host
from .switch import ToRSwitch
from .tap import MillisamplerTap


@dataclass
class Rack:
    """A fully wired rack: engine, ToR, hosts, and per-host sampling."""

    name: str
    engine: Engine
    switch: ToRSwitch
    hosts: list[Host]
    sampled_hosts: list[SampledHost] = field(default_factory=list)

    def host_by_name(self, name: str) -> Host:
        for host in self.hosts:
            if host.name == name:
                return host
        raise SimulationError(f"no host {name!r} in rack {self.name}")

    def sampled_host_by_name(self, name: str) -> SampledHost:
        for sampled in self.sampled_hosts:
            if sampled.name == name:
                return sampled
        raise SimulationError(f"no sampled host {name!r} in rack {self.name}")

    def poll_samplers(self) -> None:
        """Tick every host's user-space sampler agent at the current time."""
        now = self.engine.now
        for sampled in self.sampled_hosts:
            sampled.poll(now)


def build_rack(
    name: str = "rack0",
    servers: int = 8,
    rack_config: RackConfig | None = None,
    sampler_config: SamplerConfig | None = None,
    engine: Engine | None = None,
    clock_discipline: NtpDiscipline | None = None,
    sampler_period: float = 60.0,
    region: str = "RegA",
    rng: np.random.Generator | None = None,
) -> Rack:
    """Build a rack of ``servers`` hosts behind one shared-buffer ToR.

    Every host gets an NTP-disciplined clock (sub-millisecond offsets),
    a Millisampler attached to its tap chain, a periodic run scheduler,
    and a host-local run store — the full Section 4 stack.
    """
    if servers <= 0:
        raise SimulationError("rack needs at least one server")
    rack_config = rack_config or RackConfig()
    sampler_config = sampler_config or SamplerConfig()
    engine = engine or Engine()
    rng = rng or np.random.default_rng(0)
    discipline = clock_discipline or NtpDiscipline(rng=rng)

    switch = ToRSwitch(engine, buffer_config=rack_config.buffer)
    hosts: list[Host] = []
    sampled_hosts: list[SampledHost] = []

    for index in range(servers):
        host_name = f"{name}-s{index}"
        clock = discipline.make_clock()
        host = Host(
            engine,
            host_name,
            clock=clock,
            link_rate=rack_config.server_link_rate,
        )
        switch.connect_server(
            host_name, host.deliver, rate=rack_config.server_link_rate
        )
        host.connect(switch.forward)

        meta = RunMetadata(
            host=host_name,
            rack=name,
            region=region,
            line_rate=rack_config.server_link_rate,
        )
        sampler = Millisampler(
            meta,
            sampling_interval=sampler_config.sampling_interval,
            buckets=sampler_config.buckets,
            cpus=sampler_config.cpus,
            count_flows=sampler_config.count_flows,
        )
        host.taps.attach(MillisamplerTap(sampler, clock))
        scheduler = RunScheduler(
            period=sampler_period,
            run_duration=sampler.duration,
            first_start=rng.uniform(0, sampler_period),
        )
        store = HostRunStore(host_name)
        sampled = SampledHost(sampler=sampler, scheduler=scheduler, store=store)

        hosts.append(host)
        sampled_hosts.append(sampled)

    return Rack(
        name=name,
        engine=engine,
        switch=switch,
        hosts=hosts,
        sampled_hosts=sampled_hosts,
    )
