"""Packet-level discrete-event network simulator.

This is the substrate the paper's tooling runs against in this
reproduction: simulated hosts with a tc-like tap chain (where
Millisampler attaches), a shared-memory ToR switch with the
Choudhury-Hahne dynamic-threshold buffer, static-threshold ECN marking,
multicast replication, and DCTCP/Cubic TCP endpoints.
"""

from .audit import AuditTap, InvariantAuditor, active_tap, audited, install, uninstall
from ..errors import InvariantViolation
from .engine import Engine
from .clock import HostClock, NtpDiscipline
from .packet import Packet, FlowKey
from .link import Link
from .nic import Nic
from .buffer import SharedBuffer, BufferAdmission
from .queues import EgressQueue
from .switch import ToRSwitch
from .host import Host
from .tap import PacketTap, TapChain, MillisamplerTap
from .topology import Rack, build_rack
from .fabric import FabricSwitch, Pod, build_pod

__all__ = [
    "AuditTap",
    "InvariantAuditor",
    "InvariantViolation",
    "active_tap",
    "audited",
    "install",
    "uninstall",
    "Engine",
    "HostClock",
    "NtpDiscipline",
    "Packet",
    "FlowKey",
    "Link",
    "Nic",
    "SharedBuffer",
    "BufferAdmission",
    "EgressQueue",
    "ToRSwitch",
    "Host",
    "PacketTap",
    "TapChain",
    "MillisamplerTap",
    "Rack",
    "build_rack",
    "FabricSwitch",
    "Pod",
    "build_pod",
]
