"""Host NIC model with GSO/GRO segmentation behaviour.

Section 4.6: the tc layer sees socket buffers *before* the sending
NIC's segmentation offload and *after* the receiver's offloaded
reassembly — so the sampler may observe 64 KB super-segments while the
wire carries MTU-sized packets.  The NIC therefore exposes two views:
``segment`` (wire packets for the network) and the original
super-segment (for the tap chain).
"""

from __future__ import annotations

import itertools
from dataclasses import replace

from .. import units
from ..errors import SimulationError
from .audit import active_tap
from .packet import Packet

#: TCP/IP header bytes carried by each wire packet.
HEADER_BYTES = 40

_segment_ids = itertools.count(10_000_000)


class Nic:
    """Segmentation/reassembly helper for a host NIC."""

    def __init__(self, mtu: int = units.MTU_BYTES, gso_max: int = units.GSO_MAX_BYTES) -> None:
        if mtu <= HEADER_BYTES:
            raise SimulationError("MTU must exceed the header size")
        if gso_max < mtu:
            raise SimulationError("GSO maximum cannot be below the MTU")
        self.mtu = mtu
        self.gso_max = gso_max
        self._audit = active_tap()

    def segment(self, packet: Packet) -> list[Packet]:
        """Split a super-segment into MTU-sized wire packets (TSO).

        Sequence numbers advance across the pieces; header flags (ECN
        codepoints, the retransmit label) are copied onto every piece,
        as the real offload replicates headers.
        """
        if packet.size > self.gso_max:
            raise SimulationError(
                f"segment of {packet.size}B exceeds GSO maximum {self.gso_max}B"
            )
        if packet.size <= self.mtu or packet.payload == 0:
            self._audit.on_segment(self, packet, [packet])
            return [packet]

        max_payload = self.mtu - HEADER_BYTES
        pieces: list[Packet] = []
        remaining = packet.payload
        seq = packet.seq
        while remaining > 0:
            payload = min(remaining, max_payload)
            pieces.append(
                replace(
                    packet,
                    size=payload + HEADER_BYTES,
                    payload=payload,
                    seq=seq,
                    packet_id=next(_segment_ids),
                )
            )
            seq += payload
            remaining -= payload
        self._audit.on_segment(self, packet, pieces)
        return pieces

    def coalesce(self, packets: list[Packet]) -> list[Packet]:
        """GRO: merge in-order same-flow wire packets into super-segments
        up to ``gso_max`` (what the receive-side tc hook observes).

        Packets with differing CE marks or retransmit labels are not
        merged — the kernel keeps those boundaries so per-packet signals
        survive reassembly.
        """
        if not packets:
            return []
        merged: list[Packet] = []
        current: Packet | None = None
        for packet in packets:
            can_merge = (
                current is not None
                and not packet.is_ack
                and not current.is_ack
                and packet.flow == current.flow
                and packet.seq == current.end_seq
                and current.size + packet.payload <= self.gso_max
                and packet.ecn_ce == current.ecn_ce
                and packet.retransmit == current.retransmit
            )
            if can_merge:
                assert current is not None
                current = replace(
                    current,
                    size=current.size + packet.payload,
                    payload=current.payload + packet.payload,
                )
            else:
                if current is not None:
                    merged.append(current)
                current = packet
        if current is not None:
            merged.append(current)
        self._audit.on_coalesce(self, packets, merged)
        return merged
