"""Host clock model with NTP-style discipline (Section 4.5).

SyncMillisampler depends on host clocks being synchronized to within the
sampling interval.  Meta hosts "synchronize via one level of NTP servers
to dedicated appliances with stable clocks, using interleaved NTP to
achieve sub-millisecond precision".  We model a host clock as true time
plus a bounded offset and a small frequency error; an
:class:`NtpDiscipline` draws per-host offsets from a sub-millisecond
distribution.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


class HostClock:
    """A host's view of time: ``read(true_time) = true_time + offset +
    drift_ppm * 1e-6 * (true_time - epoch)``."""

    def __init__(self, offset: float = 0.0, drift_ppm: float = 0.0, epoch: float = 0.0) -> None:
        self.offset = offset
        self.drift_ppm = drift_ppm
        self.epoch = epoch

    def read(self, true_time: float) -> float:
        """Host-perceived time for a given true (simulator) time."""
        return true_time + self.offset + self.drift_ppm * 1e-6 * (true_time - self.epoch)

    def invert(self, host_time: float) -> float:
        """True time at which this host's clock reads ``host_time``."""
        scale = 1.0 + self.drift_ppm * 1e-6
        if scale <= 0:
            raise SimulationError("clock drift cannot reverse time")
        return (host_time - self.offset + self.drift_ppm * 1e-6 * self.epoch) / scale

    def error_at(self, true_time: float) -> float:
        """Absolute clock error at ``true_time``."""
        return self.read(true_time) - true_time


class NtpDiscipline:
    """Generates host clocks consistent with interleaved-NTP discipline.

    ``offset_std`` defaults to 100 microseconds — comfortably
    sub-millisecond, as the paper's validation requires; drift is a few
    ppm, typical of disciplined oscillators between adjustments.
    """

    def __init__(
        self,
        offset_std: float = 100e-6,
        max_offset: float = 500e-6,
        drift_ppm_std: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if offset_std < 0 or max_offset <= 0:
            raise SimulationError("offset parameters must be non-negative/positive")
        self.offset_std = offset_std
        self.max_offset = max_offset
        self.drift_ppm_std = drift_ppm_std
        self.rng = rng or np.random.default_rng(0)

    def make_clock(self, epoch: float = 0.0) -> HostClock:
        """A fresh host clock with a bounded random offset and drift."""
        offset = float(np.clip(self.rng.normal(0.0, self.offset_std), -self.max_offset, self.max_offset))
        drift = float(self.rng.normal(0.0, self.drift_ppm_std))
        return HostClock(offset=offset, drift_ppm=drift, epoch=epoch)

    def make_clocks(self, count: int, epoch: float = 0.0) -> list[HostClock]:
        return [self.make_clock(epoch) for _ in range(count)]


def max_pairwise_skew(clocks: list[HostClock], true_time: float) -> float:
    """Largest clock disagreement between any two hosts at ``true_time``.

    The validation criterion: this must stay below the sampling interval
    (1 ms) for rack-synchronous packets to land in the same bucket.
    """
    if not clocks:
        return 0.0
    readings = [clock.read(true_time) for clock in clocks]
    return max(readings) - min(readings)
