"""Runtime invariant auditor for the packet-level simulator.

The paper's headline results (the RegA-Typical vs RegA-High loss
inversion, Figures 16-19) hinge on byte-accurate loss and occupancy
accounting in the shared-buffer model: one miscounted counter silently
skews every downstream figure.  This module automates the counter hunt
that earlier PRs did by hand, the way production buffer-model test rigs
validate Choudhury-Hahne threshold behaviour with invariant checks
rather than example-based tests alone.

Every auditable component (:class:`~repro.simnet.engine.Engine`,
:class:`~repro.simnet.buffer.SharedBuffer`,
:class:`~repro.simnet.queues.EgressQueue`,
:class:`~repro.simnet.switch.ToRSwitch`,
:class:`~repro.simnet.fabric.FabricSwitch`,
:class:`~repro.simnet.host.Host`, :class:`~repro.simnet.nic.Nic`)
carries an :class:`AuditTap` whose hooks it calls at each accounting
event.  The default tap is a shared no-op singleton, so auditing has
zero overhead unless an :class:`InvariantAuditor` is installed (via
:func:`audited` or :func:`install`) *before* the components are built —
components capture the active tap at construction time.

Laws continuously checked while enabled:

* **engine.monotonic-time / engine.no-past-scheduling** — simulated
  time never moves backwards; no event is scheduled before the
  auditor's high-water mark of time.
* **buffer.admission-split** — an accepted admission's dedicated and
  shared charges sum to the packet size.
* **buffer.policy-limit** — every admission decision is consistent with
  an independent re-evaluation of the buffer's sharing policy (any
  registered :class:`~repro.fleet.policies.SharingPolicy`, not just the
  dynamic threshold): accepted shared charges fit under the recomputed
  limit, limit rejections truly exceed it, and the rejection reason
  names the active policy.
* **buffer.shared-occupancy-sync** — the pool's reported
  ``shared_occupancy`` equals the sum of outstanding shared charges
  (``Q(t) = Σ per-queue shared_used``) and never goes negative.
* **buffer.queue-occupancy-sync / buffer.nonnegative** — each queue's
  reported occupancy equals its outstanding charges; no shadow counter
  is ever negative.
* **buffer.dedicated-cap** — no queue's dedicated usage exceeds
  ``dedicated_bytes_per_queue``.
* **buffer.admitted-accounting / buffer.discard-accounting** — the
  buffer's cumulative admitted/discarded byte counters match the bytes
  the auditor saw admitted/discarded (reset together with
  ``reset_counters``).
* **buffer.release-once** — every accepted :class:`BufferAdmission` is
  released exactly once, on the queue that admitted it.
* **queue.occupancy-match** — an egress queue's buffered packet bytes
  equal the buffer charge for that queue after every enqueue/dequeue.
* **switch.ingress/forward/discard/ecn-accounting** — the ToR counters
  advance exactly with the packets the switch processed; in particular
  ``ecn_marked_bytes`` only counts marked packets that were actually
  enqueued (a marked-then-discarded packet must not count).
* **switch.byte-conservation** (on :meth:`InvariantAuditor.verify`) —
  ingress bytes = locally enqueued + routed up + multicast-processed;
  forwarded + discarded = bytes offered to local queues; outstanding
  admission bytes = current buffer occupancy (the in-flight term).
* **nic.segmentation-conservation / nic.gro-conservation** — TSO
  splitting and GRO coalescing preserve payload bytes and respect
  MTU/GSO limits.
* **host.sent/received-accounting, host.delivery-routing** — host byte
  counters advance with traffic and delivered packets are addressed to
  the receiving host.

Violations raise a structured
:class:`~repro.errors.InvariantViolation` and are counted on the
attached :class:`~repro.obs.metrics.Metrics` registry
(``audit.violations``; ``audit.events`` / ``audit.checks`` totals are
flushed on :meth:`InvariantAuditor.verify`), so orchestrated runs with
``--manifest`` record audit totals machine-readably.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..obs.metrics import Metrics
    from .buffer import BufferAdmission, SharedBuffer
    from .engine import Engine
    from .fabric import FabricSwitch
    from .host import Host
    from .nic import Nic
    from .packet import Packet
    from .queues import EgressQueue
    from .switch import ToRSwitch

#: Slack for float time comparisons (engine uses the same epsilon).
_TIME_EPS = 1e-15


class AuditTap:
    """No-op audit hooks; the base class is the disabled fast path.

    Components call these unconditionally; with the shared
    :data:`NOOP_TAP` each call is a single empty method dispatch, so the
    simulator pays nothing measurable when auditing is off.
    """

    __slots__ = ()

    # -- engine ---------------------------------------------------------------

    def on_schedule(self, engine: "Engine", time: float) -> None:
        pass

    def on_advance(self, engine: "Engine", time: float) -> None:
        pass

    # -- shared buffer --------------------------------------------------------

    def on_admit(
        self, buffer: "SharedBuffer", queue_id: str, size: int, admission: "BufferAdmission"
    ) -> None:
        pass

    def on_release(
        self, buffer: "SharedBuffer", queue_id: str, admission: "BufferAdmission"
    ) -> None:
        pass

    def on_reset_counters(self, buffer: "SharedBuffer") -> None:
        pass

    # -- egress queue ---------------------------------------------------------

    def on_enqueue(self, queue: "EgressQueue", packet: "Packet") -> None:
        pass

    def on_dequeue(self, queue: "EgressQueue", packet: "Packet") -> None:
        pass

    # -- ToR switch -----------------------------------------------------------

    def on_switch_ingress(self, switch: "ToRSwitch", packet: "Packet", kind: str) -> None:
        pass

    def on_switch_enqueue(
        self, switch: "ToRSwitch", server: str, packet: "Packet", admitted: bool, marked: bool
    ) -> None:
        pass

    def on_multicast_rate_drop(self, switch: "ToRSwitch", packet: "Packet") -> None:
        pass

    # -- fabric ---------------------------------------------------------------

    def on_fabric_enqueue(
        self, fabric: "FabricSwitch", rack_name: str, packet: "Packet", admitted: bool
    ) -> None:
        pass

    # -- host / NIC -----------------------------------------------------------

    def on_host_send(self, host: "Host", packet: "Packet") -> None:
        pass

    def on_host_deliver(self, host: "Host", packet: "Packet") -> None:
        pass

    def on_segment(self, nic: "Nic", packet: "Packet", pieces: list) -> None:
        pass

    def on_coalesce(self, nic: "Nic", packets: list, merged: list) -> None:
        pass


#: The shared disabled tap every component defaults to.
NOOP_TAP = AuditTap()

_active: list["InvariantAuditor"] = []
_active_lock = threading.Lock()


def active_tap() -> AuditTap:
    """The tap newly constructed components should carry."""
    with _active_lock:
        return _active[-1] if _active else NOOP_TAP


def install(auditor: "InvariantAuditor") -> None:
    """Make ``auditor`` the active tap for components built from now on."""
    with _active_lock:
        _active.append(auditor)


def uninstall(auditor: "InvariantAuditor") -> None:
    """Remove one installation of ``auditor`` (components keep their tap)."""
    with _active_lock:
        for index in range(len(_active) - 1, -1, -1):
            if _active[index] is auditor:
                del _active[index]
                return
    raise InvariantViolation(
        component="audit",
        law="audit.install-balance",
        observed="uninstall of an auditor that is not installed",
        expected="install/uninstall calls paired",
    )


@contextmanager
def audited(auditor: "InvariantAuditor | None" = None) -> Iterator["InvariantAuditor"]:
    """Scope in which newly built simnet components are audited.

    On clean exit the auditor's :meth:`~InvariantAuditor.verify` runs,
    so end-of-run conservation (occupancy vs outstanding admissions,
    switch byte balance) is checked without an explicit call.  If the
    body raises, verification is skipped so the original error surfaces.
    """
    auditor = auditor if auditor is not None else InvariantAuditor()
    install(auditor)
    try:
        yield auditor
    finally:
        uninstall(auditor)
    auditor.verify()


# -- shadow state ---------------------------------------------------------


@dataclass
class _EngineShadow:
    high_water_time: float = float("-inf")


@dataclass
class _BufferShadow:
    #: Outstanding shared/dedicated charges per queue (admit - release).
    shared: dict[str, int] = field(default_factory=dict)
    dedicated: dict[str, int] = field(default_factory=dict)
    shared_total: int = 0
    #: Cumulative counter shadows (zeroed by reset_counters).
    admitted_total: int = 0
    discarded_total: int = 0
    #: id(admission) -> (queue_id, admission); the strong reference keeps
    #: an outstanding admission alive so its id cannot be reused.
    outstanding: dict[int, tuple[str, "BufferAdmission"]] = field(default_factory=dict)


@dataclass
class _QueueShadow:
    fifo_bytes: int = 0
    fifo_packets: int = 0


@dataclass
class _SwitchShadow:
    ingress: int = 0
    local_bytes: int = 0
    routed_up_bytes: int = 0
    multicast_in_bytes: int = 0
    enqueue_attempt_bytes: int = 0
    forwarded: int = 0
    discarded: int = 0
    discarded_packets: int = 0
    ecn_marked: int = 0
    rate_drops: int = 0


@dataclass
class _FabricShadow:
    forwarded: int = 0
    discarded: int = 0


@dataclass
class _HostShadow:
    sent: int = 0
    received: int = 0


class InvariantAuditor(AuditTap):
    """Checks conservation laws on every accounting event it observes.

    Thread-safe: one auditor may watch components built on several
    threads (the orchestrator's ``--exp-jobs`` pool).  Violations are
    recorded on :attr:`violations`, counted on the metrics registry,
    and raised as :class:`~repro.errors.InvariantViolation` unless
    ``raise_on_violation`` is False.
    """

    def __init__(self, metrics: "Metrics | None" = None, raise_on_violation: bool = True) -> None:
        self.metrics = metrics
        self.raise_on_violation = raise_on_violation
        self.violations: list[InvariantViolation] = []
        self.events = 0
        self.checks = 0
        self._flushed_events = 0
        self._flushed_checks = 0
        self._lock = threading.RLock()
        self._engines: dict["Engine", _EngineShadow] = {}
        self._buffers: dict["SharedBuffer", _BufferShadow] = {}
        self._queues: dict["EgressQueue", _QueueShadow] = {}
        self._switches: dict["ToRSwitch", _SwitchShadow] = {}
        self._fabrics: dict["FabricSwitch", _FabricShadow] = {}
        self._hosts: dict["Host", _HostShadow] = {}

    # -- violation plumbing -------------------------------------------------

    def _violate(
        self,
        component: str,
        law: str,
        observed: object,
        expected: object,
        sim_time: float | None = None,
        detail: str = "",
    ) -> None:
        violation = InvariantViolation(
            component=component,
            law=law,
            observed=observed,
            expected=expected,
            sim_time=sim_time,
            detail=detail,
        )
        self.violations.append(violation)
        if self.metrics is not None:
            self.metrics.incr("audit.violations")
        if self.raise_on_violation:
            raise violation

    def _check(
        self,
        condition: bool,
        component: str,
        law: str,
        observed: object,
        expected: object,
        sim_time: float | None = None,
        detail: str = "",
    ) -> None:
        self.checks += 1
        if not condition:
            self._violate(component, law, observed, expected, sim_time, detail)

    # -- engine -------------------------------------------------------------

    def _engine_shadow(self, engine: "Engine") -> _EngineShadow:
        shadow = self._engines.get(engine)
        if shadow is None:
            shadow = self._engines[engine] = _EngineShadow()
        return shadow

    def on_schedule(self, engine: "Engine", time: float) -> None:
        with self._lock:
            self.events += 1
            shadow = self._engine_shadow(engine)
            shadow.high_water_time = max(shadow.high_water_time, engine.now)
            self._check(
                time >= shadow.high_water_time - _TIME_EPS,
                component="engine",
                law="engine.no-past-scheduling",
                observed=time,
                expected=f">= {shadow.high_water_time}",
                sim_time=engine.now,
                detail="event scheduled before the audited time high-water mark",
            )

    def on_advance(self, engine: "Engine", time: float) -> None:
        with self._lock:
            self.events += 1
            shadow = self._engine_shadow(engine)
            self._check(
                time >= shadow.high_water_time - _TIME_EPS,
                component="engine",
                law="engine.monotonic-time",
                observed=time,
                expected=f">= {shadow.high_water_time}",
                sim_time=engine.now,
                detail="simulated time moved backwards",
            )
            shadow.high_water_time = max(shadow.high_water_time, time)

    # -- shared buffer ------------------------------------------------------

    def _buffer_shadow(self, buffer: "SharedBuffer") -> _BufferShadow:
        shadow = self._buffers.get(buffer)
        if shadow is None:
            shadow = self._buffers[buffer] = _BufferShadow()
        return shadow

    def _check_buffer_sync(
        self, buffer: "SharedBuffer", shadow: _BufferShadow, queue_id: str
    ) -> None:
        """Per-event O(1) consistency between shadow and reported state."""
        dedicated = shadow.dedicated.get(queue_id, 0)
        shared = shadow.shared.get(queue_id, 0)
        self._check(
            dedicated >= 0 and shared >= 0 and shadow.shared_total >= 0,
            component=f"buffer[{queue_id}]",
            law="buffer.nonnegative",
            observed=(dedicated, shared, shadow.shared_total),
            expected="all charges >= 0",
        )
        self._check(
            buffer.shared_occupancy == shadow.shared_total,
            component="buffer",
            law="buffer.shared-occupancy-sync",
            observed=buffer.shared_occupancy,
            expected=shadow.shared_total,
            detail="reported Q(t) drifted from the sum of outstanding shared charges",
        )
        self._check(
            buffer.queue_occupancy(queue_id) == dedicated + shared,
            component=f"buffer[{queue_id}]",
            law="buffer.queue-occupancy-sync",
            observed=buffer.queue_occupancy(queue_id),
            expected=dedicated + shared,
        )
        cap = int(buffer.config.dedicated_bytes_per_queue)
        self._check(
            dedicated <= cap,
            component=f"buffer[{queue_id}]",
            law="buffer.dedicated-cap",
            observed=dedicated,
            expected=f"<= {cap}",
        )
        self._check(
            buffer.total_admitted_bytes() == shadow.admitted_total,
            component="buffer",
            law="buffer.admitted-accounting",
            observed=buffer.total_admitted_bytes(),
            expected=shadow.admitted_total,
        )
        self._check(
            buffer.total_discard_bytes() == shadow.discarded_total,
            component="buffer",
            law="buffer.discard-accounting",
            observed=buffer.total_discard_bytes(),
            expected=shadow.discarded_total,
        )

    def _buffer_policy_limit(
        self, buffer: "SharedBuffer", pool_used: int, queue_shared: int, queue_id: str
    ) -> float:
        """Re-evaluate the buffer's sharing policy from shadow state.

        Uses the auditor's own (pre-decision) occupancy shadows rather
        than the buffer's reported state, so a buffer that corrupted its
        accounting *and* its threshold together still trips the law.
        """
        limit = buffer.policy.limits(
            float(buffer.config.shared_bytes),
            np.array([float(pool_used)]),
            np.array([0]),
            np.array([float(queue_shared)]),
            np.array([float(buffer.queue_active_steps(queue_id))]),
        )
        return float(limit[0])

    def on_admit(
        self, buffer: "SharedBuffer", queue_id: str, size: int, admission: "BufferAdmission"
    ) -> None:
        with self._lock:
            self.events += 1
            shadow = self._buffer_shadow(buffer)
            if admission.accepted:
                self._check(
                    admission.dedicated_bytes + admission.shared_bytes == size,
                    component=f"buffer[{queue_id}]",
                    law="buffer.admission-split",
                    observed=admission.dedicated_bytes + admission.shared_bytes,
                    expected=size,
                    detail="dedicated + shared charges must equal the packet size",
                )
                if admission.shared_bytes > 0:
                    pre_queue = shadow.shared.get(queue_id, 0)
                    limit = self._buffer_policy_limit(
                        buffer, shadow.shared_total, pre_queue, queue_id
                    )
                    self._check(
                        pre_queue + admission.shared_bytes <= limit,
                        component=f"buffer[{queue_id}]",
                        law="buffer.policy-limit",
                        observed=pre_queue + admission.shared_bytes,
                        expected=f"<= {limit:.0f} under {buffer.policy.name}",
                        detail="accepted shared charge exceeds the policy's limit",
                    )
                shadow.dedicated[queue_id] = (
                    shadow.dedicated.get(queue_id, 0) + admission.dedicated_bytes
                )
                shadow.shared[queue_id] = shadow.shared.get(queue_id, 0) + admission.shared_bytes
                shadow.shared_total += admission.shared_bytes
                shadow.admitted_total += size
                shadow.outstanding[id(admission)] = (queue_id, admission)
            else:
                self._check(
                    admission.dedicated_bytes == 0 and admission.shared_bytes == 0,
                    component=f"buffer[{queue_id}]",
                    law="buffer.admission-split",
                    observed=(admission.dedicated_bytes, admission.shared_bytes),
                    expected=(0, 0),
                    detail="a rejected admission must charge nothing",
                )
                if admission.reason.startswith("over "):
                    self._check(
                        buffer.policy.name in admission.reason,
                        component=f"buffer[{queue_id}]",
                        law="buffer.policy-limit",
                        observed=admission.reason,
                        expected=f"reason naming policy {buffer.policy.name!r}",
                        detail="limit rejection must name the active policy",
                    )
                    cap = int(buffer.config.dedicated_bytes_per_queue)
                    dedicated_free = max(cap - shadow.dedicated.get(queue_id, 0), 0)
                    from_shared = size - min(size, dedicated_free)
                    pre_queue = shadow.shared.get(queue_id, 0)
                    limit = self._buffer_policy_limit(
                        buffer, shadow.shared_total, pre_queue, queue_id
                    )
                    self._check(
                        from_shared > 0 and pre_queue + from_shared > limit,
                        component=f"buffer[{queue_id}]",
                        law="buffer.policy-limit",
                        observed=pre_queue + from_shared,
                        expected=f"> {limit:.0f} under {buffer.policy.name}",
                        detail=(
                            "policy-limit rejection, but the shared charge fits "
                            "under the recomputed limit"
                        ),
                    )
                shadow.discarded_total += size
            self._check_buffer_sync(buffer, shadow, queue_id)

    def on_release(
        self, buffer: "SharedBuffer", queue_id: str, admission: "BufferAdmission"
    ) -> None:
        with self._lock:
            self.events += 1
            shadow = self._buffer_shadow(buffer)
            entry = shadow.outstanding.pop(id(admission), None)
            if entry is None:
                self._violate(
                    component=f"buffer[{queue_id}]",
                    law="buffer.release-once",
                    observed="release of an admission that is not outstanding",
                    expected="every admission released exactly once",
                    detail="double release, or release of an admission this auditor never saw",
                )
                return
            admitted_queue, _kept = entry
            self._check(
                admitted_queue == queue_id,
                component=f"buffer[{queue_id}]",
                law="buffer.release-once",
                observed=queue_id,
                expected=admitted_queue,
                detail="admission released on a different queue than admitted it",
            )
            shadow.dedicated[admitted_queue] = (
                shadow.dedicated.get(admitted_queue, 0) - admission.dedicated_bytes
            )
            shadow.shared[admitted_queue] = (
                shadow.shared.get(admitted_queue, 0) - admission.shared_bytes
            )
            shadow.shared_total -= admission.shared_bytes
            self._check_buffer_sync(buffer, shadow, queue_id)

    def on_reset_counters(self, buffer: "SharedBuffer") -> None:
        with self._lock:
            self.events += 1
            shadow = self._buffer_shadow(buffer)
            shadow.admitted_total = 0
            shadow.discarded_total = 0
            self._check(
                buffer.total_admitted_bytes() == 0 and buffer.total_discard_bytes() == 0,
                component="buffer",
                law="buffer.admitted-accounting",
                observed=(buffer.total_admitted_bytes(), buffer.total_discard_bytes()),
                expected=(0, 0),
                detail="reset_counters must zero the cumulative counters",
            )

    # -- egress queue -------------------------------------------------------

    def _queue_shadow(self, queue: "EgressQueue") -> _QueueShadow:
        shadow = self._queues.get(queue)
        if shadow is None:
            shadow = self._queues[queue] = _QueueShadow()
        return shadow

    def _check_queue_sync(self, queue: "EgressQueue", shadow: _QueueShadow) -> None:
        self._check(
            shadow.fifo_bytes == queue.buffer.queue_occupancy(queue.queue_id),
            component=f"queue[{queue.queue_id}]",
            law="queue.occupancy-match",
            observed=queue.buffer.queue_occupancy(queue.queue_id),
            expected=shadow.fifo_bytes,
            sim_time=queue.engine.now,
            detail="buffered packet bytes drifted from the buffer charge",
        )
        self._check(
            shadow.fifo_packets == len(queue),
            component=f"queue[{queue.queue_id}]",
            law="queue.occupancy-match",
            observed=len(queue),
            expected=shadow.fifo_packets,
            sim_time=queue.engine.now,
        )

    def on_enqueue(self, queue: "EgressQueue", packet: "Packet") -> None:
        with self._lock:
            self.events += 1
            shadow = self._queue_shadow(queue)
            shadow.fifo_bytes += packet.size
            shadow.fifo_packets += 1
            self._check_queue_sync(queue, shadow)

    def on_dequeue(self, queue: "EgressQueue", packet: "Packet") -> None:
        with self._lock:
            self.events += 1
            shadow = self._queue_shadow(queue)
            shadow.fifo_bytes -= packet.size
            shadow.fifo_packets -= 1
            self._check_queue_sync(queue, shadow)

    # -- ToR switch ---------------------------------------------------------

    def _switch_shadow(self, switch: "ToRSwitch") -> _SwitchShadow:
        shadow = self._switches.get(switch)
        if shadow is None:
            shadow = self._switches[switch] = _SwitchShadow()
        return shadow

    def on_switch_ingress(self, switch: "ToRSwitch", packet: "Packet", kind: str) -> None:
        with self._lock:
            self.events += 1
            shadow = self._switch_shadow(switch)
            shadow.ingress += packet.size
            if kind == "local":
                shadow.local_bytes += packet.size
            elif kind == "uplink":
                shadow.routed_up_bytes += packet.size
            else:
                shadow.multicast_in_bytes += packet.size
            self._check(
                switch.counters.ingress_bytes == shadow.ingress,
                component="switch",
                law="switch.ingress-accounting",
                observed=switch.counters.ingress_bytes,
                expected=shadow.ingress,
                sim_time=switch.engine.now,
            )

    def on_switch_enqueue(
        self, switch: "ToRSwitch", server: str, packet: "Packet", admitted: bool, marked: bool
    ) -> None:
        with self._lock:
            self.events += 1
            shadow = self._switch_shadow(switch)
            shadow.enqueue_attempt_bytes += packet.size
            if admitted:
                shadow.forwarded += packet.size
                if marked:
                    shadow.ecn_marked += packet.size
            else:
                shadow.discarded += packet.size
                shadow.discarded_packets += 1
            counters = switch.counters
            now = switch.engine.now
            self._check(
                counters.forwarded_bytes == shadow.forwarded,
                component=f"switch[{server}]",
                law="switch.forward-accounting",
                observed=counters.forwarded_bytes,
                expected=shadow.forwarded,
                sim_time=now,
            )
            self._check(
                counters.discard_bytes == shadow.discarded
                and counters.discard_packets == shadow.discarded_packets,
                component=f"switch[{server}]",
                law="switch.discard-accounting",
                observed=(counters.discard_bytes, counters.discard_packets),
                expected=(shadow.discarded, shadow.discarded_packets),
                sim_time=now,
            )
            self._check(
                counters.ecn_marked_bytes == shadow.ecn_marked,
                component=f"switch[{server}]",
                law="switch.ecn-accounting",
                observed=counters.ecn_marked_bytes,
                expected=shadow.ecn_marked,
                sim_time=now,
                detail="ecn_marked_bytes must count only marked packets that "
                "were actually enqueued",
            )

    def on_multicast_rate_drop(self, switch: "ToRSwitch", packet: "Packet") -> None:
        with self._lock:
            self.events += 1
            shadow = self._switch_shadow(switch)
            shadow.rate_drops += 1
            self._check(
                switch.counters.multicast_rate_drops == shadow.rate_drops,
                component="switch",
                law="switch.multicast-accounting",
                observed=switch.counters.multicast_rate_drops,
                expected=shadow.rate_drops,
                sim_time=switch.engine.now,
            )

    # -- fabric -------------------------------------------------------------

    def on_fabric_enqueue(
        self, fabric: "FabricSwitch", rack_name: str, packet: "Packet", admitted: bool
    ) -> None:
        with self._lock:
            self.events += 1
            shadow = self._fabrics.get(fabric)
            if shadow is None:
                shadow = self._fabrics[fabric] = _FabricShadow()
            if admitted:
                shadow.forwarded += packet.size
            else:
                shadow.discarded += packet.size
            self._check(
                fabric.forwarded_bytes == shadow.forwarded
                and fabric.discard_bytes == shadow.discarded,
                component=f"fabric[{rack_name}]",
                law="fabric.byte-conservation",
                observed=(fabric.forwarded_bytes, fabric.discard_bytes),
                expected=(shadow.forwarded, shadow.discarded),
                sim_time=fabric.engine.now,
            )

    # -- host / NIC ---------------------------------------------------------

    def on_host_send(self, host: "Host", packet: "Packet") -> None:
        with self._lock:
            self.events += 1
            shadow = self._hosts.get(host)
            if shadow is None:
                shadow = self._hosts[host] = _HostShadow()
            shadow.sent += packet.size
            self._check(
                host.sent_bytes == shadow.sent,
                component=f"host[{host.name}]",
                law="host.sent-accounting",
                observed=host.sent_bytes,
                expected=shadow.sent,
                sim_time=host.engine.now,
            )

    def on_host_deliver(self, host: "Host", packet: "Packet") -> None:
        with self._lock:
            self.events += 1
            shadow = self._hosts.get(host)
            if shadow is None:
                shadow = self._hosts[host] = _HostShadow()
            shadow.received += packet.size
            self._check(
                packet.dst == host.name,
                component=f"host[{host.name}]",
                law="host.delivery-routing",
                observed=packet.dst,
                expected=host.name,
                sim_time=host.engine.now,
                detail="packet delivered to a host it is not addressed to",
            )
            self._check(
                host.received_bytes == shadow.received,
                component=f"host[{host.name}]",
                law="host.received-accounting",
                observed=host.received_bytes,
                expected=shadow.received,
                sim_time=host.engine.now,
            )

    def on_segment(self, nic: "Nic", packet: "Packet", pieces: list) -> None:
        with self._lock:
            self.events += 1
            self._check(
                sum(piece.payload for piece in pieces) == packet.payload,
                component="nic",
                law="nic.segmentation-conservation",
                observed=sum(piece.payload for piece in pieces),
                expected=packet.payload,
                detail="TSO must preserve payload bytes",
            )
            self._check(
                all(piece.size <= nic.mtu for piece in pieces) or len(pieces) == 1,
                component="nic",
                law="nic.segmentation-conservation",
                observed=max(piece.size for piece in pieces),
                expected=f"<= MTU {nic.mtu}",
            )

    def on_coalesce(self, nic: "Nic", packets: list, merged: list) -> None:
        with self._lock:
            self.events += 1
            self._check(
                sum(p.payload for p in merged) == sum(p.payload for p in packets),
                component="nic",
                law="nic.gro-conservation",
                observed=sum(p.payload for p in merged),
                expected=sum(p.payload for p in packets),
                detail="GRO must preserve payload bytes",
            )
            self._check(
                all(p.size <= nic.gso_max for p in merged),
                component="nic",
                law="nic.gro-conservation",
                observed=max((p.size for p in merged), default=0),
                expected=f"<= GSO max {nic.gso_max}",
            )

    # -- end-of-run verification --------------------------------------------

    def verify(self) -> None:
        """Full-state conservation checks plus a metrics flush.

        Safe to call repeatedly (the orchestrator calls it after every
        audited experiment); per-event shadows are cumulative, so each
        call re-verifies the current global state.
        """
        with self._lock:
            for buffer, shadow in self._buffers.items():
                outstanding_by_queue: dict[str, int] = {}
                outstanding_shared = 0
                for queue_id, admission in shadow.outstanding.values():
                    outstanding_by_queue[queue_id] = (
                        outstanding_by_queue.get(queue_id, 0)
                        + admission.dedicated_bytes
                        + admission.shared_bytes
                    )
                    outstanding_shared += admission.shared_bytes
                self._check(
                    buffer.shared_occupancy == outstanding_shared,
                    component="buffer",
                    law="buffer.shared-occupancy-sync",
                    observed=buffer.shared_occupancy,
                    expected=outstanding_shared,
                    detail="Q(t) must equal the shared bytes of outstanding admissions",
                )
                for queue_id, in_flight in outstanding_by_queue.items():
                    self._check(
                        buffer.queue_occupancy(queue_id) == in_flight,
                        component=f"buffer[{queue_id}]",
                        law="buffer.queue-occupancy-sync",
                        observed=buffer.queue_occupancy(queue_id),
                        expected=in_flight,
                        detail="occupancy must equal in-flight admission bytes",
                    )
            for switch, sw in self._switches.items():
                self._check(
                    sw.ingress == sw.local_bytes + sw.routed_up_bytes + sw.multicast_in_bytes,
                    component="switch",
                    law="switch.byte-conservation",
                    observed=sw.ingress,
                    expected=sw.local_bytes + sw.routed_up_bytes + sw.multicast_in_bytes,
                    detail="every ingress byte must be locally enqueued, routed up, "
                    "or multicast-processed",
                )
                self._check(
                    sw.forwarded + sw.discarded == sw.enqueue_attempt_bytes,
                    component="switch",
                    law="switch.byte-conservation",
                    observed=sw.forwarded + sw.discarded,
                    expected=sw.enqueue_attempt_bytes,
                    detail="bytes offered to local queues must be forwarded or discarded",
                )
            self._flush_metrics()

    def _flush_metrics(self) -> None:
        if self.metrics is None:
            return
        if self.events > self._flushed_events:
            self.metrics.incr("audit.events", self.events - self._flushed_events)
            self._flushed_events = self.events
        if self.checks > self._flushed_checks:
            self.metrics.incr("audit.checks", self.checks - self._flushed_checks)
            self._flushed_checks = self.checks
