"""Top-of-rack switch with shared-memory buffering, ECN, and multicast.

Models the ToR of Section 3: per-server egress queues mapped onto four
buffer quadrants, Choudhury-Hahne dynamic thresholds inside each
quadrant, a static per-queue ECN marking threshold (120 KB), and
rack-local multicast replication (used by the Section 4.5 validation;
multicast is rate limited, which is why validation bursts do not reach
line rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .. import units
from ..config import BufferConfig
from ..errors import SimulationError
from .audit import active_tap
from .buffer import SharedBuffer
from .engine import Engine
from .packet import Packet
from .queues import EgressQueue


@dataclass
class SwitchCounters:
    """Cumulative counters the production switch exports per minute
    (Figure 14/17 consume per-minute ingress volume and congestion
    discards)."""

    ingress_bytes: int = 0
    forwarded_bytes: int = 0
    discard_bytes: int = 0
    discard_packets: int = 0
    ecn_marked_bytes: int = 0
    multicast_replicas: int = 0
    multicast_rate_drops: int = 0


class _TokenBucket:
    """Byte token bucket used to rate-limit multicast replication."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def allow(self, size: int, now: float) -> bool:
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if size <= self._tokens:
            self._tokens -= size
            return True
        return False


class ToRSwitch:
    """Shared-buffer ToR switch for one rack."""

    def __init__(
        self,
        engine: Engine,
        buffer_config: BufferConfig | None = None,
        num_quadrants: int = units.NUM_QUADRANTS,
        multicast_rate: float = units.gbps(2.0),
    ) -> None:
        if num_quadrants <= 0:
            raise SimulationError("switch needs at least one quadrant")
        self.engine = engine
        self.buffer_config = buffer_config or BufferConfig()
        self._audit = active_tap()
        self.quadrants = [SharedBuffer(self.buffer_config) for _ in range(num_quadrants)]
        self.counters = SwitchCounters()
        self._queues: dict[str, EgressQueue] = {}
        self._quadrant_of: dict[str, int] = {}
        self._multicast_groups: dict[str, list[str]] = {}
        self._multicast_bucket = _TokenBucket(multicast_rate, burst=multicast_rate * 0.01)
        #: Per-queue drop callbacks (TCP does not see these — loss is
        #: inferred end-to-end — but tests and loss accounting do).
        self.on_drop: Callable[[Packet, str], None] | None = None
        #: Where packets for non-local destinations go (the uplink into
        #: the fabric).  None means this ToR is standalone and unknown
        #: destinations are an error.
        self.default_route: Callable[[Packet], None] | None = None

    # -- wiring ---------------------------------------------------------------

    def connect_server(
        self,
        name: str,
        deliver: Callable[[Packet], None],
        rate: float = units.SERVER_LINK_RATE,
        propagation_delay: float = 1e-6,
        quadrant: int | None = None,
    ) -> EgressQueue:
        """Attach a server: creates its egress queue in a quadrant.

        The real mapping is "a function of the input and output port";
        we default to striping servers across quadrants round-robin,
        which preserves the property that ~1/4 of a rack's queues share
        each pool.
        """
        if name in self._queues:
            raise SimulationError(f"server {name!r} already connected")
        index = quadrant if quadrant is not None else len(self._queues) % len(self.quadrants)
        if not 0 <= index < len(self.quadrants):
            raise SimulationError(f"quadrant {index} out of range")
        queue = EgressQueue(
            engine=self.engine,
            buffer=self.quadrants[index],
            queue_id=name,
            rate=rate,
            on_dequeue=deliver,
            propagation_delay=propagation_delay,
        )
        self._queues[name] = queue
        self._quadrant_of[name] = index
        return queue

    def queue_for(self, server: str) -> EgressQueue:
        try:
            return self._queues[server]
        except KeyError:
            raise SimulationError(f"no queue for server {server!r}") from None

    def quadrant_for(self, server: str) -> SharedBuffer:
        return self.quadrants[self._quadrant_of[server]]

    @property
    def servers(self) -> list[str]:
        return list(self._queues)

    # -- multicast ------------------------------------------------------------

    def join_multicast(self, group: str, server: str) -> None:
        if server not in self._queues:
            raise SimulationError(f"server {server!r} not connected")
        members = self._multicast_groups.setdefault(group, [])
        if server not in members:
            members.append(server)

    def leave_multicast(self, group: str, server: str) -> None:
        members = self._multicast_groups.get(group, [])
        if server in members:
            members.remove(server)

    def multicast_members(self, group: str) -> list[str]:
        return list(self._multicast_groups.get(group, []))

    # -- forwarding ------------------------------------------------------------

    def forward(self, packet: Packet) -> None:
        """Ingress from an uplink or a rack server: route to the egress
        queue(s), applying ECN marking and buffer admission; non-local
        unicast destinations go up the default route (the fabric)."""
        self.counters.ingress_bytes += packet.size
        if packet.multicast_group is not None:
            self._audit.on_switch_ingress(self, packet, "multicast")
            self._forward_multicast(packet)
        elif packet.dst not in self._queues and self.default_route is not None:
            self._audit.on_switch_ingress(self, packet, "uplink")
            self.default_route(packet)
        else:
            self._audit.on_switch_ingress(self, packet, "local")
            self._enqueue(packet.dst, packet)

    def _forward_multicast(self, packet: Packet) -> None:
        group = packet.multicast_group
        assert group is not None
        members = self._multicast_groups.get(group, [])
        for member in members:
            if member == packet.src:
                continue
            if not self._multicast_bucket.allow(packet.size, self.engine.now):
                self.counters.multicast_rate_drops += 1
                self._audit.on_multicast_rate_drop(self, packet)
                continue
            self.counters.multicast_replicas += 1
            self._enqueue(member, packet.copy_for(member))

    def _enqueue(self, server: str, packet: Packet) -> None:
        queue = self.queue_for(server)
        # Static-threshold ECN marking at enqueue time (Section 3:
        # "a 120 KB static ECN threshold for all our ToRs").
        marked = False
        if (
            packet.ecn_capable
            and not packet.is_ack
            and queue.occupancy > self.buffer_config.ecn_threshold_bytes
        ):
            packet = packet.marked()
            marked = True
        admitted = queue.enqueue(packet)
        if admitted:
            self.counters.forwarded_bytes += packet.size
            # Marked bytes count only when the packet is actually
            # buffered: a marked-then-discarded packet never carries its
            # CE codepoint anywhere, and counting it would inflate the
            # ECN/discard correlation (Figure 17).
            if marked:
                self.counters.ecn_marked_bytes += packet.size
        else:
            self.counters.discard_bytes += packet.size
            self.counters.discard_packets += 1
        self._audit.on_switch_enqueue(self, server, packet, admitted, marked)
        if not admitted and self.on_drop is not None:
            self.on_drop(packet, server)

    # -- telemetry --------------------------------------------------------------

    def total_buffer_occupancy(self) -> int:
        return sum(quadrant.shared_occupancy for quadrant in self.quadrants)

    def queue_occupancy(self, server: str) -> int:
        return self.queue_for(server).occupancy

    def snapshot_counters(self) -> SwitchCounters:
        """A copy of the cumulative counters (callers diff snapshots to
        get per-minute figures, as the production pipeline does)."""
        return SwitchCounters(**vars(self.counters))
