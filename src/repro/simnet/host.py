"""Simulated host: NIC, tap chain, packet demux, and an uplink to the ToR.

The host is where Millisampler lives.  Every delivered packet (already
GRO-coalesced, per Section 4.6) runs through the ingress tap chain;
every transmitted segment runs through the egress tap chain before
segmentation offload.
"""

from __future__ import annotations

from typing import Callable

from .. import units
from ..core.millisampler import Direction
from ..errors import SimulationError
from .audit import active_tap
from .clock import HostClock
from .engine import Engine
from .link import Link
from .nic import Nic
from .packet import FlowKey, Packet
from .tap import TapChain


class Host:
    """One rack server."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        clock: HostClock | None = None,
        link_rate: float = units.SERVER_LINK_RATE,
        propagation_delay: float = 1e-6,
    ) -> None:
        self.engine = engine
        self.name = name
        self.clock = clock or HostClock()
        self.nic = Nic()
        self.taps = TapChain()
        self.uplink = Link(engine, link_rate, propagation_delay, name=f"{name}->tor")
        self._forward: Callable[[Packet], None] | None = None
        #: Flow-directed handlers (TCP endpoints register here).
        self._flow_handlers: dict[tuple, Callable[[Packet], None]] = {}
        #: Fallback application handler for unclaimed packets.
        self.default_handler: Callable[[Packet], None] | None = None
        self.received_bytes = 0
        self.sent_bytes = 0
        self._audit = active_tap()

    # -- wiring ---------------------------------------------------------------

    def connect(self, forward: Callable[[Packet], None]) -> None:
        """Point the uplink at the ToR's forwarding entry point."""
        self._forward = forward

    def register_flow(self, flow: FlowKey, handler: Callable[[Packet], None]) -> None:
        key = flow.as_tuple()
        if key in self._flow_handlers:
            raise SimulationError(f"flow {key} already registered on {self.name}")
        self._flow_handlers[key] = handler

    def unregister_flow(self, flow: FlowKey) -> None:
        self._flow_handlers.pop(flow.as_tuple(), None)

    # -- data path --------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit a segment: egress taps (pre-TSO view), then the uplink."""
        if self._forward is None:
            raise SimulationError(f"host {self.name} is not connected to a switch")
        if packet.src != self.name:
            raise SimulationError(f"host {self.name} cannot send packet from {packet.src}")
        self.taps.dispatch(packet, Direction.EGRESS, self.engine.now)
        self.sent_bytes += packet.size
        self._audit.on_host_send(self, packet)
        self.uplink.transmit(packet, self._forward)

    def deliver(self, packet: Packet) -> None:
        """Receive a packet from the ToR: ingress taps, then demux."""
        self.taps.dispatch(packet, Direction.INGRESS, self.engine.now)
        self.received_bytes += packet.size
        self._audit.on_host_deliver(self, packet)
        handler = self._flow_handlers.get(packet.flow.as_tuple())
        if handler is not None:
            handler(packet)
        elif self.default_handler is not None:
            self.default_handler(packet)

    # -- convenience --------------------------------------------------------------

    def host_time(self) -> float:
        """This host's (possibly skewed) clock reading."""
        return self.clock.read(self.engine.now)
