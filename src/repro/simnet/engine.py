"""Discrete-event simulation engine.

A classic event-heap design: callbacks scheduled at absolute simulated
times, executed in time order (FIFO among equal times).  All network
components share one engine; simulated time never runs backwards.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError
from .audit import active_tap


class Engine:
    """Event loop with absolute simulated time in seconds."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._events_run = 0
        self._audit = active_tap()

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        return len(self._heap)

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < now {self._now})"
            )
        self._audit.on_schedule(self, time)
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError("delay cannot be negative")
        self.at(self._now + delay, callback)

    def step(self) -> bool:
        """Run the next event; returns False when no events remain."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._audit.on_advance(self, time)
        self._now = time
        self._events_run += 1
        callback()
        return True

    def run_until(self, end_time: float, max_events: int | None = None) -> None:
        """Run events with time <= ``end_time``; advances ``now`` to
        ``end_time`` even if the heap empties earlier."""
        budget = max_events if max_events is not None else float("inf")
        while self._heap and self._heap[0][0] <= end_time:
            if budget <= 0:
                raise SimulationError(f"event budget exhausted at t={self._now}")
            self.step()
            budget -= 1
        if end_time > self._now:
            self._now = end_time

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event heap is empty."""
        budget = max_events
        while self.step():
            budget -= 1
            if budget <= 0 and self._heap:
                raise SimulationError("event budget exhausted; likely a scheduling loop")
