"""The tc-like tap chain on simulated hosts.

A tap is "among the first programmable steps on the receipt of a packet
and near the last step on transmission" (Section 4.1).  Hosts run every
ingress packet (post-GRO) and egress packet (pre-TSO) through their tap
chain; Millisampler attaches here via :class:`MillisamplerTap`.
"""

from __future__ import annotations

from typing import Protocol

from ..core.millisampler import Direction, Millisampler, PacketObservation
from .clock import HostClock
from .packet import FlowKey, Packet


class PacketTap(Protocol):
    """Anything attachable to a host's tap chain."""

    def on_packet(self, packet: Packet, direction: Direction, now: float) -> None:
        """Observe one packet; ``now`` is true simulator time."""
        ...  # pragma: no cover


class TapChain:
    """Ordered list of taps a host runs per packet."""

    def __init__(self) -> None:
        self._taps: list[PacketTap] = []

    def attach(self, tap: PacketTap) -> None:
        if tap in self._taps:
            raise ValueError("tap already attached")
        self._taps.append(tap)

    def detach(self, tap: PacketTap) -> None:
        self._taps.remove(tap)

    def __len__(self) -> int:
        return len(self._taps)

    def dispatch(self, packet: Packet, direction: Direction, now: float) -> None:
        for tap in self._taps:
            tap.on_packet(packet, direction, now)


def rss_cpu(packet: Packet, cpus: int) -> int:
    """Receive-side-scaling CPU choice: flows hash to a consistent core,
    matching how soft-irq processing lands on many CPUs."""
    return hash(packet.flow.as_tuple()) % cpus


class MillisamplerTap:
    """Adapter feeding simulator packets into a :class:`Millisampler`.

    Timestamps come from the *host clock*, not true time — clock offsets
    are exactly what the Section 4.5 validation is about.

    A trace's packets come from a small working set of flows, so the
    per-flow values — the 5-tuple key and its RSS CPU — are memoized
    per :class:`~repro.simnet.packet.FlowKey` (hashable, frozen); the
    steady-state per-packet cost is one dict probe instead of a tuple
    build plus hash.  This pairs with the bounded memo inside
    :func:`repro.core.sketch.hash_flow_key`, which caches the sketch
    bit for the same tuples.
    """

    #: Flows cached per tap before the memo resets; a host converses
    #: with far fewer peers than this, so eviction is a non-event.
    _FLOW_CACHE_LIMIT = 1 << 16

    def __init__(self, sampler: Millisampler, clock: HostClock | None = None) -> None:
        self.sampler = sampler
        self.clock = clock or HostClock()
        self._flow_cache: dict[FlowKey, tuple[tuple, int]] = {}

    def on_packet(self, packet: Packet, direction: Direction, now: float) -> None:
        if self.sampler.state.value == "detached":
            return
        cached = self._flow_cache.get(packet.flow)
        if cached is None:
            if len(self._flow_cache) >= self._FLOW_CACHE_LIMIT:
                self._flow_cache.clear()
            cached = (packet.flow.as_tuple(), rss_cpu(packet, self.sampler.cpus))
            self._flow_cache[packet.flow] = cached
        flow_key, cpu = cached
        observation = PacketObservation(
            time=self.clock.read(now),
            direction=direction,
            size=packet.size,
            flow_key=flow_key,
            cpu=cpu,
            ecn_marked=packet.ecn_ce,
            retransmit=packet.retransmit,
        )
        self.sampler.observe(observation)
