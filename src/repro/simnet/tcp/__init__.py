"""TCP endpoints for the simulator.

In-region Meta traffic runs DCTCP; the smaller inter-region share runs
Cubic (Section 3).  Both are provided, built on a common reliable
transport (:mod:`repro.simnet.tcp.base`) with cumulative ACKs, fast
retransmit, retransmission timeouts, and the Meta retransmit-label bit
that Millisampler counts.
"""

from .base import CongestionControl, RenoControl, TcpReceiver, TcpSender, open_connection
from .cubic import CubicControl
from .dctcp import DctcpControl

__all__ = [
    "CongestionControl",
    "RenoControl",
    "TcpReceiver",
    "TcpSender",
    "open_connection",
    "CubicControl",
    "DctcpControl",
]
