"""Reliable transport core: sender, receiver, and the congestion-control
strategy interface.

Design notes:

* **Byte-based windows.**  ``cwnd`` is in bytes; senders emit segments
  of up to ``segment_bytes`` payload (the tc layer sees these pre-TSO
  super-segments, Section 4.6).
* **Loss detection.**  Three duplicate cumulative ACKs trigger fast
  retransmit; an RTO with no progress triggers a timeout-based
  retransmission with the window collapsed.  Both kinds set the
  retransmit-label bit on the retransmitted segment — the unused header
  bit Meta's TCP tooling sets "when TCP processes a timeout or fast
  retransmission (not a tail loss probe)" (Section 4.2) — so
  Millisampler's retx counters see exactly what the paper's do.
* **ECN.**  Data segments are ECN-capable; receivers echo the CE state
  of each arriving segment on its ACK (DCTCP-style accurate echo), and
  the congestion-control strategy decides what to do with the echoes.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ...errors import SimulationError
from ..engine import Engine
from ..host import Host
from ..packet import FlowKey, Packet

#: ACK wire size (header-only packet).
ACK_BYTES = 64
#: TCP/IP header bytes on data segments.
HEADER_BYTES = 40

_port_allocator = itertools.count(40_000)


class CongestionControl:
    """Strategy interface; implementations own the cwnd in bytes."""

    def __init__(self, mss: int, initial_cwnd_segments: int = 10) -> None:
        if mss <= 0:
            raise SimulationError("MSS must be positive")
        self.mss = mss
        self.cwnd = float(initial_cwnd_segments * mss)
        self.ssthresh = float("inf")

    def on_ack(self, acked_bytes: int, ecn_echo: bool, now: float, rtt: float) -> None:
        """New data acknowledged."""
        raise NotImplementedError

    def on_fast_retransmit(self, now: float) -> None:
        """Triple-dupack loss."""
        raise NotImplementedError

    def on_timeout(self, now: float) -> None:
        """RTO fired: collapse to one segment (all variants)."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    def _floor(self) -> None:
        self.cwnd = max(self.cwnd, float(self.mss))


class RenoControl(CongestionControl):
    """Classic slow start + AIMD; the neutral baseline."""

    def on_ack(self, acked_bytes: int, ecn_echo: bool, now: float, rtt: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += acked_bytes  # slow start: +1 MSS per MSS acked
        else:
            self.cwnd += self.mss * acked_bytes / self.cwnd  # congestion avoidance

    def on_fast_retransmit(self, now: float) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        self._floor()


class TcpReceiver:
    """Receive side: cumulative ACKs with per-segment ECN echo."""

    def __init__(self, host: Host, flow: FlowKey, on_data: Callable[[int], None] | None = None) -> None:
        self.host = host
        self.flow = flow  # sender -> receiver direction
        self.on_data = on_data
        self.rcv_nxt = 0
        self._out_of_order: dict[int, int] = {}  # seq -> end_seq
        self.received_payload = 0
        self.duplicate_segments = 0
        host.register_flow(flow, self._on_segment)

    def _on_segment(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        if packet.end_seq <= self.rcv_nxt:
            self.duplicate_segments += 1
        else:
            self._out_of_order[packet.seq] = max(
                self._out_of_order.get(packet.seq, 0), packet.end_seq
            )
            advanced = self._advance()
            if advanced and self.on_data is not None:
                self.on_data(advanced)
        self._send_ack(ecn_echo=packet.ecn_ce)

    def _advance(self) -> int:
        """Consume in-order data from the reassembly map."""
        before = self.rcv_nxt
        progressed = True
        while progressed:
            progressed = False
            for seq in sorted(self._out_of_order):
                end = self._out_of_order[seq]
                if seq <= self.rcv_nxt < end:
                    self.rcv_nxt = end
                    del self._out_of_order[seq]
                    progressed = True
                    break
                if end <= self.rcv_nxt:
                    del self._out_of_order[seq]
                    progressed = True
                    break
        gained = self.rcv_nxt - before
        self.received_payload += gained
        return gained

    def _send_ack(self, ecn_echo: bool) -> None:
        ack = Packet(
            src=self.host.name,
            dst=self.flow.src,
            size=ACK_BYTES,
            flow=self.flow.reversed(),
            is_ack=True,
            ack=self.rcv_nxt,
            ecn_capable=False,
            ecn_echo=ecn_echo,
        )
        self.host.send(ack)

    def close(self) -> None:
        self.host.unregister_flow(self.flow)


class TcpSender:
    """Send side of one connection."""

    #: Minimum retransmission timeout (production data centers use
    #: single-digit milliseconds).
    MIN_RTO = 5e-3
    DUPACK_THRESHOLD = 3

    def __init__(
        self,
        host: Host,
        flow: FlowKey,
        control: CongestionControl,
        segment_bytes: int = 16 * 1024,
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        if segment_bytes <= 0:
            raise SimulationError("segment size must be positive")
        self.host = host
        self.engine: Engine = host.engine
        self.flow = flow
        self.control = control
        self.segment_bytes = segment_bytes
        self.on_complete = on_complete

        self.snd_una = 0
        self.snd_nxt = 0
        self.app_limit = 0  # total bytes the app has asked to send
        self._dupacks = 0
        self._recover = 0  # highest seq outstanding when loss was detected
        self._in_recovery = False
        self._rto_pending = False
        self._last_progress = 0.0
        self.srtt: float | None = None
        self._send_times: dict[int, float] = {}  # seq -> send time (RTT samples)

        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.delivered_bytes = 0
        self._backoff = 0  # consecutive RTOs without progress

        host.register_flow(flow.reversed(), self._on_ack)

    # -- app interface -----------------------------------------------------------

    def send(self, nbytes: int) -> None:
        """Ask the connection to deliver ``nbytes`` more payload bytes."""
        if nbytes <= 0:
            raise SimulationError("send size must be positive")
        self.app_limit += nbytes
        self._pump()

    @property
    def done(self) -> bool:
        return self.snd_una >= self.app_limit

    @property
    def flight(self) -> int:
        return self.snd_nxt - self.snd_una

    #: Cap on exponential RTO backoff doublings.
    MAX_BACKOFF = 6

    @property
    def rto(self) -> float:
        base = self.MIN_RTO * 4 if self.srtt is None else max(self.MIN_RTO, 2.0 * self.srtt)
        return base * (2 ** min(self._backoff, self.MAX_BACKOFF))

    # -- transmission -----------------------------------------------------------

    def _pump(self) -> None:
        """Send as much new data as cwnd and the app backlog allow."""
        while (
            self.snd_nxt < self.app_limit
            and self.flight + 1 <= int(self.control.cwnd)
        ):
            remaining_window = int(self.control.cwnd) - self.flight
            payload = min(self.segment_bytes, self.app_limit - self.snd_nxt, remaining_window)
            if payload <= 0:
                break
            self._transmit(self.snd_nxt, payload, retransmit=False)
            self.snd_nxt += payload
        self._arm_rto()

    def _transmit(self, seq: int, payload: int, retransmit: bool) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self.flow.dst,
            size=payload + HEADER_BYTES,
            flow=self.flow,
            seq=seq,
            payload=payload,
            ecn_capable=True,
            retransmit=retransmit,
        )
        if not retransmit:
            self._send_times[seq] = self.engine.now
        self.host.send(packet)

    # -- ACK processing -----------------------------------------------------------

    def _on_ack(self, packet: Packet) -> None:
        if not packet.is_ack:
            return
        now = self.engine.now
        if packet.ack > self.snd_una:
            acked = packet.ack - self.snd_una
            self.snd_una = packet.ack
            self.delivered_bytes += acked
            self._dupacks = 0
            self._backoff = 0  # progress resets exponential backoff
            self._last_progress = now
            self._sample_rtt(packet.ack, now)
            if self._in_recovery and self.snd_una >= self._recover:
                self._in_recovery = False
            if not self._in_recovery:
                self.control.on_ack(acked, packet.ecn_echo, now, self.srtt or self.MIN_RTO)
            if self.done:
                self._rto_pending = False
                if self.on_complete is not None:
                    callback, self.on_complete = self.on_complete, None
                    callback()
                return
        elif packet.ack == self.snd_una and self.flight > 0:
            self._dupacks += 1
            if self._dupacks == self.DUPACK_THRESHOLD and not self._in_recovery:
                self._fast_retransmit(now)
        self._pump()

    def _sample_rtt(self, acked_seq: int, now: float) -> None:
        """Karn's algorithm: only segments sent exactly once give samples."""
        expired = [seq for seq in self._send_times if seq < acked_seq]
        sample = None
        for seq in expired:
            sent_at = self._send_times.pop(seq)
            sample = now - sent_at
        if sample is not None:
            self.srtt = sample if self.srtt is None else 0.875 * self.srtt + 0.125 * sample

    # -- loss handling -----------------------------------------------------------

    def _fast_retransmit(self, now: float) -> None:
        self._in_recovery = True
        self._recover = self.snd_nxt
        self.fast_retransmits += 1
        self.retransmissions += 1
        self.control.on_fast_retransmit(now)
        payload = min(self.segment_bytes, self.app_limit - self.snd_una)
        self._send_times.pop(self.snd_una, None)  # Karn: no sample from retx
        self._transmit(self.snd_una, payload, retransmit=True)

    def _arm_rto(self) -> None:
        if self._rto_pending or self.flight == 0:
            return
        self._rto_pending = True
        armed_at = self.engine.now
        deadline = armed_at + self.rto

        def check() -> None:
            self._rto_pending = False
            if self.done or self.flight == 0:
                return
            if self._last_progress >= armed_at:
                self._arm_rto()  # progress since arming: re-arm
                return
            self._timeout()

        self.engine.at(deadline, check)

    def _timeout(self) -> None:
        """RTO: collapse the window, go back to snd_una, back off."""
        self.timeouts += 1
        self.retransmissions += 1
        self._backoff += 1
        self._in_recovery = False
        self._dupacks = 0
        self.control.on_timeout(self.engine.now)
        self.snd_nxt = self.snd_una  # go-back-N
        self._send_times.clear()
        payload = min(self.segment_bytes, self.app_limit - self.snd_una)
        if payload > 0:
            self._transmit(self.snd_una, payload, retransmit=True)
            self.snd_nxt = self.snd_una + payload
        self._arm_rto()

    def close(self) -> None:
        self.host.unregister_flow(self.flow.reversed())


def open_connection(
    sender_host: Host,
    receiver_host: Host,
    control: CongestionControl,
    segment_bytes: int = 16 * 1024,
    on_complete: Callable[[], None] | None = None,
    sport: int | None = None,
    dport: int = 443,
) -> tuple[TcpSender, TcpReceiver]:
    """Wire up one unidirectional TCP connection between two hosts."""
    flow = FlowKey(
        src=sender_host.name,
        dst=receiver_host.name,
        sport=sport if sport is not None else next(_port_allocator),
        dport=dport,
    )
    receiver = TcpReceiver(receiver_host, flow)
    sender = TcpSender(
        sender_host, flow, control, segment_bytes=segment_bytes, on_complete=on_complete
    )
    return sender, receiver
