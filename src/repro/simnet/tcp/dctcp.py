"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

In-region Meta traffic runs DCTCP (Section 3).  The sender maintains an
EWMA of the fraction of ECN-marked bytes per window::

    alpha <- (1 - g) * alpha + g * F

and, once per window that contained marks, scales the window by
``cwnd * (1 - alpha / 2)``.  Because marks arrive only once queues pass
the 120 KB static threshold, DCTCP "struggles to react to short bursts
that span less than a few RTTs" — the mechanism behind the paper's
loss-vs-burst-length findings (Section 8.2).
"""

from __future__ import annotations

from .base import CongestionControl


class DctcpControl(CongestionControl):
    """DCTCP window management."""

    def __init__(
        self,
        mss: int,
        initial_cwnd_segments: int = 10,
        gain: float = 1.0 / 16.0,
    ) -> None:
        super().__init__(mss, initial_cwnd_segments)
        if not 0 < gain <= 1:
            raise ValueError("DCTCP gain must be in (0, 1]")
        self.gain = gain
        self.alpha = 0.0
        self._window_acked = 0
        self._window_marked = 0
        self._window_end_bytes = self.cwnd  # bytes of ACKs closing this window

    def on_ack(self, acked_bytes: int, ecn_echo: bool, now: float, rtt: float) -> None:
        self._window_acked += acked_bytes
        if ecn_echo:
            self._window_marked += acked_bytes

        if self._window_acked >= self._window_end_bytes:
            self._end_window()
        elif self.cwnd < self.ssthresh and not ecn_echo:
            self.cwnd += acked_bytes  # slow start
        elif not ecn_echo:
            self.cwnd += self.mss * acked_bytes / self.cwnd  # additive increase

    def _end_window(self) -> None:
        fraction = (
            self._window_marked / self._window_acked if self._window_acked > 0 else 0.0
        )
        self.alpha = (1.0 - self.gain) * self.alpha + self.gain * fraction
        if self._window_marked > 0:
            # Proportional decrease, once per marked window.
            self.cwnd *= 1.0 - self.alpha / 2.0
            self.ssthresh = self.cwnd
            self._floor()
        else:
            # Unmarked window: normal growth continues.
            if self.cwnd < self.ssthresh:
                self.cwnd += self._window_acked
            else:
                self.cwnd += self.mss
        self._window_acked = 0
        self._window_marked = 0
        self._window_end_bytes = max(self.cwnd, float(self.mss))

    def on_fast_retransmit(self, now: float) -> None:
        # DCTCP falls back to standard halving on actual loss.
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = self.ssthresh
        self._floor()
