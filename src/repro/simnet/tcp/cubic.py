"""CUBIC congestion control (Ha, Rhee, Xu 2008).

The smaller inter-region share of Meta traffic runs Cubic (Section 3).
Window growth follows the cubic function of time since the last loss::

    W(t) = C * (t - K)^3 + W_max,   K = cbrt(W_max * beta_decrement / C)

with multiplicative decrease to ``beta * W_max`` on loss.  Cubic
ignores ECN echoes (it predates DCTCP-style marking), which is why
inter-region traffic cannot benefit from the ToR ECN deployment.
"""

from __future__ import annotations

from .base import CongestionControl

#: Standard CUBIC constants.
CUBIC_C = 0.4  # in (segments/sec^3); we scale by MSS for byte windows
CUBIC_BETA = 0.7


class CubicControl(CongestionControl):
    """CUBIC window management (byte-based)."""

    def __init__(self, mss: int, initial_cwnd_segments: int = 10) -> None:
        super().__init__(mss, initial_cwnd_segments)
        self._w_max = self.cwnd
        self._epoch_start: float | None = None
        self._k = 0.0

    def _cubic_window(self, elapsed: float) -> float:
        segments = CUBIC_C * (elapsed - self._k) ** 3 + self._w_max / self.mss
        return segments * self.mss

    def on_ack(self, acked_bytes: int, ecn_echo: bool, now: float, rtt: float) -> None:
        # Cubic does not react to ECN echoes.
        if self.cwnd < self.ssthresh:
            self.cwnd += acked_bytes
            return
        if self._epoch_start is None:
            self._epoch_start = now
            w_max_segments = self._w_max / self.mss
            cwnd_segments = self.cwnd / self.mss
            delta = max(w_max_segments - cwnd_segments, 0.0) / CUBIC_C
            self._k = delta ** (1.0 / 3.0)
        target = self._cubic_window(now - self._epoch_start + rtt)
        if target > self.cwnd:
            # Approach the cubic target over one RTT.
            self.cwnd += (target - self.cwnd) * acked_bytes / max(self.cwnd, self.mss)
        else:
            self.cwnd += 0.01 * acked_bytes  # TCP-friendly minimal growth

    def on_fast_retransmit(self, now: float) -> None:
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * CUBIC_BETA, float(self.mss))
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_timeout(self, now: float) -> None:
        self._w_max = self.cwnd
        super().on_timeout(now)
        self._epoch_start = None
