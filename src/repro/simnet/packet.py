"""Packet representation for the simulator.

A :class:`Packet` models what moves between hosts and the ToR — either
an MTU-sized wire packet or, at the tc layer, a GSO/GRO super-segment
up to 64 KB (Section 4.6).  TCP control state (sequence ranges, ACK
numbers, ECN bits, the Meta retransmit-label bit) travels in the packet
so switch and sampler behaviour can depend on it the way the real
network's does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from ..errors import SimulationError

_packet_ids = itertools.count()


@dataclass(frozen=True)
class FlowKey:
    """A bidirectional-flow identity (we keep it one-directional: the
    reverse direction is a distinct key, matching how the sketch counts
    incoming and outgoing connections)."""

    src: str
    dst: str
    sport: int = 0
    dport: int = 0
    proto: str = "tcp"

    def reversed(self) -> "FlowKey":
        return FlowKey(self.dst, self.src, self.dport, self.sport, self.proto)

    def as_tuple(self) -> tuple:
        return (self.src, self.dst, self.sport, self.dport, self.proto)


@dataclass
class Packet:
    """One simulated packet/segment."""

    src: str
    dst: str
    size: int  # bytes on the wire, headers included
    flow: FlowKey
    seq: int = 0  # first payload byte
    payload: int = 0  # payload bytes (size >= payload)
    is_ack: bool = False
    ack: int = 0  # cumulative ACK number
    ecn_capable: bool = True  # ECT set (DCTCP traffic is ECN-capable)
    ecn_ce: bool = False  # CE mark applied by a switch
    ecn_echo: bool = False  # receiver echoing CE to sender
    retransmit: bool = False  # the Meta retransmit-label bit (Section 4.2)
    multicast_group: str | None = None
    enqueued_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError("packet size must be positive")
        if self.payload < 0 or self.payload > self.size:
            raise SimulationError("payload must fit inside the packet")

    def marked(self) -> "Packet":
        """A copy with the CE codepoint set (switch ECN marking)."""
        return replace(self, ecn_ce=True)

    def copy_for(self, dst: str) -> "Packet":
        """A multicast replica destined for ``dst`` (fresh packet id)."""
        return replace(self, dst=dst, packet_id=next(_packet_ids))

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload
