"""Fabric layer: multi-rack topologies behind an aggregation tier.

Section 3: racks connect upstream with 4 or 8 uplinks of 40/100 Gbps;
"most of the congestion in our network happens in the server-link
connecting the ToR to the servers", and the fabric's ASICs have larger
buffers and faster links, so "similar contention levels could result
in less loss, and also result in somewhat smoother bursts arriving
downstream at the racks" (Section 8.1's explanation for RegA-High's
fabric discards).

The model collapses the pod's aggregation/spine layers into one
logical :class:`FabricSwitch`: per-attached-rack downlink queues over
a large shared buffer (bigger per-queue share and faster drain than
the ToR — the two properties the paper's argument needs), with the
same dynamic-threshold sharing.  ToR uplinks are modeled as the
aggregate uplink capacity, since uplink congestion is rare by the
paper's account.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import units
from ..config import BufferConfig, RackConfig, SamplerConfig
from ..errors import SimulationError
from .audit import active_tap
from .engine import Engine
from .link import Link
from .packet import Packet
from .queues import EgressQueue
from .buffer import SharedBuffer
from .topology import Rack, build_rack

#: Fabric-tier buffer: larger than a ToR quadrant, higher ECN headroom
#: (the fabric ECN deployment "is currently largely operational only on
#: the ToR", Section 3 — so marking there is effectively off).
FABRIC_BUFFER = BufferConfig(
    shared_bytes=units.mb(48),
    dedicated_bytes_per_queue=units.mb(1),
    alpha=2.0,
    ecn_threshold_bytes=1e12,
)


class FabricSwitch:
    """One logical aggregation layer interconnecting racks."""

    def __init__(
        self,
        engine: Engine,
        buffer_config: BufferConfig = FABRIC_BUFFER,
        downlink_rate: float = units.gbps(400),
        downlink_delay: float = 4e-6,
    ) -> None:
        self.engine = engine
        self.buffer = SharedBuffer(buffer_config)
        self.downlink_rate = downlink_rate
        self.downlink_delay = downlink_delay
        self._downlinks: dict[str, EgressQueue] = {}
        self._rack_of_host: dict[str, str] = {}
        self.forwarded_bytes = 0
        self.discard_bytes = 0
        self._audit = active_tap()

    def attach_rack(self, rack: Rack, uplink_rate: float = units.gbps(400)) -> None:
        """Wire a rack under the fabric.

        The rack's ToR gets a default route up (an aggregate-capacity
        uplink), and the fabric gets a downlink queue toward the rack.
        """
        if rack.name in self._downlinks:
            raise SimulationError(f"rack {rack.name!r} already attached")
        downlink = EgressQueue(
            engine=self.engine,
            buffer=self.buffer,
            queue_id=f"fabric->{rack.name}",
            rate=self.downlink_rate,
            on_dequeue=rack.switch.forward,
            propagation_delay=self.downlink_delay,
        )
        self._downlinks[rack.name] = downlink
        for host in rack.hosts:
            self._rack_of_host[host.name] = rack.name

        uplink = Link(
            self.engine, uplink_rate, propagation_delay=self.downlink_delay,
            name=f"{rack.name}->fabric",
        )
        rack.switch.default_route = lambda packet: uplink.transmit(
            packet, self.forward
        )

    def forward(self, packet: Packet) -> None:
        """Route a packet to its destination rack's downlink queue."""
        rack_name = self._rack_of_host.get(packet.dst)
        if rack_name is None:
            raise SimulationError(f"fabric has no route to {packet.dst!r}")
        queue = self._downlinks[rack_name]
        admitted = queue.enqueue(packet)
        if admitted:
            self.forwarded_bytes += packet.size
        else:
            self.discard_bytes += packet.size
        self._audit.on_fabric_enqueue(self, rack_name, packet, admitted)

    @property
    def racks(self) -> list[str]:
        return list(self._downlinks)

    def downlink_occupancy(self, rack_name: str) -> int:
        try:
            return self._downlinks[rack_name].occupancy
        except KeyError:
            raise SimulationError(f"no downlink for rack {rack_name!r}") from None


@dataclass
class Pod:
    """A multi-rack topology: racks under one fabric."""

    engine: Engine
    fabric: FabricSwitch
    racks: list[Rack]
    _host_index: dict[str, tuple[int, int]] = field(default_factory=dict)

    def host(self, name: str):
        """Find a host anywhere in the pod."""
        try:
            rack_index, host_index = self._host_index[name]
        except KeyError:
            raise SimulationError(f"no host {name!r} in pod") from None
        return self.racks[rack_index].hosts[host_index]

    def poll_samplers(self) -> None:
        for rack in self.racks:
            rack.poll_samplers()


def build_pod(
    racks: int = 2,
    servers_per_rack: int = 8,
    rack_config: RackConfig | None = None,
    sampler_config: SamplerConfig | None = None,
    fabric_buffer: BufferConfig = FABRIC_BUFFER,
    rng: np.random.Generator | None = None,
    region: str = "RegA",
) -> Pod:
    """Build ``racks`` racks interconnected by one fabric switch.

    Hosts are named ``rack<i>-s<j>``; traffic between hosts in
    different racks flows server -> ToR -> fabric -> ToR -> server.
    """
    if racks <= 0:
        raise SimulationError("pod needs at least one rack")
    engine = Engine()
    rng = rng or np.random.default_rng(0)
    fabric = FabricSwitch(engine, buffer_config=fabric_buffer)
    built: list[Rack] = []
    host_index: dict[str, tuple[int, int]] = {}
    for rack_number in range(racks):
        rack = build_rack(
            name=f"rack{rack_number}",
            servers=servers_per_rack,
            rack_config=rack_config,
            sampler_config=sampler_config,
            engine=engine,
            region=region,
            rng=rng,
        )
        fabric.attach_rack(rack)
        for host_number, host in enumerate(rack.hosts):
            host_index[host.name] = (rack_number, host_number)
        built.append(rack)
    return Pod(engine=engine, fabric=fabric, racks=built, _host_index=host_index)
