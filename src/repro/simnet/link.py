"""Point-to-point link with serialization and propagation delay.

Used on the host-to-ToR direction (server egress), where the NIC rate
limits transmission; the ToR-to-host direction is rate-limited by the
egress queue drain instead.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from .engine import Engine
from .packet import Packet


class Link:
    """A simplex link: packets serialize at ``rate`` then propagate."""

    def __init__(
        self,
        engine: Engine,
        rate: float,
        propagation_delay: float = 1e-6,
        name: str = "",
    ) -> None:
        if rate <= 0:
            raise SimulationError("link rate must be positive")
        if propagation_delay < 0:
            raise SimulationError("propagation delay cannot be negative")
        self.engine = engine
        self.rate = rate
        self.propagation_delay = propagation_delay
        self.name = name
        self._busy_until = 0.0
        self.transmitted_bytes = 0
        self.transmitted_packets = 0

    def transmit(self, packet: Packet, deliver: Callable[[Packet], None]) -> float:
        """Queue the packet on the wire; returns its delivery time.

        Serialization starts when the link frees up (FIFO), so the link
        naturally models head-of-line queueing at the sender.
        """
        start = max(self.engine.now, self._busy_until)
        serialization = packet.size / self.rate
        self._busy_until = start + serialization
        delivery_time = self._busy_until + self.propagation_delay
        self.transmitted_bytes += packet.size
        self.transmitted_packets += 1
        self.engine.at(delivery_time, lambda: deliver(packet))
        return delivery_time

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def queueing_delay(self) -> float:
        """How long a packet offered now would wait before serializing."""
        return max(0.0, self._busy_until - self.engine.now)
