"""Trace tap: record packet observations for debugging and validation.

A lightweight ``tcpdump``-style companion to Millisampler for the
simulator: attach a :class:`TraceTap` to a host's tap chain and every
packet observation is recorded in full — the ground truth against
which sampler output can be validated (and what the paper's cost
comparison says is too expensive to run fleet-wide).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.millisampler import Direction
from ..errors import SimulationError
from .packet import Packet


@dataclass(frozen=True)
class TraceEntry:
    """One observed packet."""

    time: float
    direction: Direction
    size: int
    flow: tuple
    ecn_ce: bool
    retransmit: bool


@dataclass
class TraceTap:
    """Records every packet the host's tap chain dispatches."""

    #: Stop recording past this many entries (guards runaway memory).
    max_entries: int = 1_000_000
    entries: list[TraceEntry] = field(default_factory=list)
    truncated: bool = False

    def on_packet(self, packet: Packet, direction: Direction, now: float) -> None:
        if len(self.entries) >= self.max_entries:
            self.truncated = True
            return
        self.entries.append(
            TraceEntry(
                time=now,
                direction=direction,
                size=packet.size,
                flow=packet.flow.as_tuple(),
                ecn_ce=packet.ecn_ce,
                retransmit=packet.retransmit,
            )
        )

    # -- summaries -----------------------------------------------------------

    def total_bytes(self, direction: Direction | None = None) -> int:
        return sum(
            entry.size
            for entry in self.entries
            if direction is None or entry.direction is direction
        )

    def bucketize(
        self,
        interval: float,
        direction: Direction = Direction.INGRESS,
        start: float | None = None,
        buckets: int | None = None,
    ) -> np.ndarray:
        """Ground-truth per-bucket byte series, for cross-checking a
        Millisampler run byte-for-byte."""
        if interval <= 0:
            raise SimulationError("interval must be positive")
        relevant = [e for e in self.entries if e.direction is direction]
        if not relevant:
            return np.zeros(buckets or 0)
        t0 = start if start is not None else relevant[0].time
        end = max(e.time for e in relevant)
        count = buckets if buckets is not None else int((end - t0) / interval) + 1
        series = np.zeros(count)
        for entry in relevant:
            index = int((entry.time - t0) / interval)
            if 0 <= index < count:
                series[index] += entry.size
        return series

    def flows(self) -> set[tuple]:
        return {entry.flow for entry in self.entries}

    def clear(self) -> None:
        self.entries.clear()
        self.truncated = False
