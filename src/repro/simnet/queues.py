"""Egress queue: FIFO drain of buffered packets onto a server link.

Each server behind the ToR maps to one egress queue (Section 2.1.2);
the queue holds admitted packets (their buffer bytes stay charged until
dequeue) and drains at the server link rate.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..errors import SimulationError
from .audit import active_tap
from .buffer import BufferAdmission, SharedBuffer
from .engine import Engine
from .packet import Packet


class EgressQueue:
    """One ToR egress queue draining to a server at ``rate`` bytes/s."""

    def __init__(
        self,
        engine: Engine,
        buffer: SharedBuffer,
        queue_id: str,
        rate: float,
        on_dequeue: Callable[[Packet], None],
        propagation_delay: float = 1e-6,
    ) -> None:
        if rate <= 0:
            raise SimulationError("drain rate must be positive")
        self.engine = engine
        self.buffer = buffer
        self.queue_id = queue_id
        self.rate = rate
        self.on_dequeue = on_dequeue
        self.propagation_delay = propagation_delay
        self.buffer.register_queue(queue_id)
        self._fifo: deque[tuple[Packet, BufferAdmission]] = deque()
        self._draining = False
        self.dequeued_bytes = 0
        self.dequeued_packets = 0
        self._audit = active_tap()

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def occupancy(self) -> int:
        """Buffered bytes currently charged to this queue."""
        return self.buffer.queue_occupancy(self.queue_id)

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet; returns False (and counts a discard) when the
        buffer refuses it."""
        admission = self.buffer.admit(self.queue_id, packet.size)
        if not admission.accepted:
            return False
        packet.enqueued_at = self.engine.now
        self._fifo.append((packet, admission))
        self._audit.on_enqueue(self, packet)
        if not self._draining:
            self._draining = True
            self._drain_next()
        return True

    def _drain_next(self) -> None:
        if not self._fifo:
            self._draining = False
            return
        packet, admission = self._fifo[0]
        serialization = packet.size / self.rate
        self.engine.after(serialization, lambda: self._finish_dequeue(packet, admission))

    def _finish_dequeue(self, packet: Packet, admission: BufferAdmission) -> None:
        head, head_admission = self._fifo.popleft()
        if head is not packet or head_admission is not admission:
            raise SimulationError("egress queue drained out of order")
        self.buffer.release(self.queue_id, admission)
        self.dequeued_bytes += packet.size
        self.dequeued_packets += 1
        self._audit.on_dequeue(self, packet)
        # Deliver after propagation; keep draining immediately.
        self.engine.after(self.propagation_delay, lambda: self.on_dequeue(packet))
        self._drain_next()
