"""Units and conversions used throughout the reproduction.

The simulator keeps time in **seconds** (float) and data in **bytes**
(int or float, depending on whether the model is packet-level or fluid).
Rates are **bytes per second**. These helpers make call sites read like
the paper: ``gbps(12.5)``, ``mb(1.8)``, ``ms(3)``.

The constants mirror Section 3 of the paper (the Meta rack profile the
study focuses on) and Section 4/5 (Millisampler parameters).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

#: One microsecond, in seconds.
USEC = 1e-6
#: One millisecond, in seconds.
MSEC = 1e-3
#: One second.
SEC = 1.0
#: One minute, in seconds.
MINUTE = 60.0
#: One hour, in seconds.
HOUR = 3600.0
#: One day, in seconds.
DAY = 24 * HOUR


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * USEC


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MSEC


def seconds_to_ms(value: float) -> float:
    """Seconds to milliseconds."""
    return value / MSEC


# ---------------------------------------------------------------------------
# Data volumes
# ---------------------------------------------------------------------------

#: Bytes in a kilobyte (binary, as buffer specs use).
KB = 1024
#: Bytes in a megabyte (binary).
MB = 1024 * 1024


def kb(value: float) -> float:
    """Kilobytes to bytes."""
    return value * KB


def mb(value: float) -> float:
    """Megabytes to bytes."""
    return value * MB


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def gbps(value: float) -> float:
    """Gigabits per second to bytes per second (decimal gigabits, as
    link speeds are quoted)."""
    return value * 1e9 / 8


def mbps(value: float) -> float:
    """Megabits per second to bytes per second."""
    return value * 1e6 / 8


def bytes_per_ms(rate_bps: float) -> float:
    """Bytes transferable in one millisecond at ``rate_bps`` bytes/s."""
    return rate_bps * MSEC


def utilization(byte_count: float, interval_s: float, line_rate_bps: float) -> float:
    """Fraction of line rate used by ``byte_count`` bytes over ``interval_s``."""
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    if line_rate_bps <= 0:
        raise ValueError("line rate must be positive")
    return byte_count / (interval_s * line_rate_bps)


# ---------------------------------------------------------------------------
# Paper constants (Section 3, 4, 5)
# ---------------------------------------------------------------------------

#: Per-server link rate: a 50 Gbps NIC shared by 4 servers (12.5 Gbps each).
SERVER_LINK_RATE = gbps(12.5)

#: ToR shared-memory buffer: 16 MB total.
TOR_BUFFER_BYTES = mb(16)

#: The 16 MB buffer is divided into four quadrants of 4 MB each.
QUADRANT_BYTES = mb(4)
NUM_QUADRANTS = 4

#: Of each 4 MB quadrant, ~3.6 MB is dynamically shared; the rest is
#: dedicated per-queue headroom.
SHARED_QUADRANT_BYTES = mb(3.6)

#: Dynamic-threshold alpha deployed fleet-wide.
DEFAULT_ALPHA = 1.0

#: Static ECN marking threshold deployed on all ToRs.
ECN_THRESHOLD_BYTES = kb(120)

#: Millisampler default: number of time buckets per run.
MILLISAMPLER_BUCKETS = 2000

#: Millisampler sampling intervals scheduled in production.
SAMPLING_INTERVALS = (ms(10), ms(1), us(100))

#: The sampling interval all analysis in the paper uses.
ANALYSIS_INTERVAL = ms(1)

#: Burst definition: samples exceeding this fraction of line rate.
BURST_UTILIZATION_THRESHOLD = 0.5

#: Typical servers per rack in the studied regions (Section 5).
SERVERS_PER_RACK = 92

#: Data-center RTT scale used for DCTCP feedback modelling.
TYPICAL_RTT = us(100)

#: MTU-sized packet on the wire.
MTU_BYTES = 1500

#: Maximum GSO/GRO super-segment the tc layer may observe (Section 4.6).
GSO_MAX_BYTES = 64 * KB
