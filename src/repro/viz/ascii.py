"""ASCII plotting primitives."""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError

#: Unicode block characters for sparklines, lowest to highest.
_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray | list) -> str:
    """One-line rendering of a series."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return ""
    lo, hi = float(np.nanmin(array)), float(np.nanmax(array))
    span = hi - lo
    chars = []
    for value in array:
        if np.isnan(value):
            chars.append(" ")
            continue
        level = 0 if span == 0 else int((value - lo) / span * (len(_SPARK_CHARS) - 1))
        chars.append(_SPARK_CHARS[level])
    return "".join(chars)


def ascii_plot(
    x: np.ndarray | list,
    ys: dict[str, np.ndarray | list],
    width: int = 72,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker letter; overlapping points show the
    later series' marker.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    if x_arr.size == 0:
        raise AnalysisError("nothing to plot")
    markers = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]

    finite_ys = [
        np.asarray(y, dtype=np.float64)[np.isfinite(np.asarray(y, dtype=np.float64))]
        for y in ys.values()
    ]
    all_y = np.concatenate([fy for fy in finite_ys if fy.size] or [np.array([0.0])])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x_arr.min()), float(x_arr.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    for index, (name, y) in enumerate(ys.items()):
        y_arr = np.asarray(y, dtype=np.float64)
        marker = markers[index % len(markers)]
        for xv, yv in zip(x_arr, y_arr):
            if not np.isfinite(yv):
                continue
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_hi:10.3g} |"
        elif row_index == height - 1:
            label = f"{y_lo:10.3g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:<10.4g}{x_label:^{max(width - 20, 1)}}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(ys)
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)


def ascii_cdf(
    series: dict[str, np.ndarray | list],
    width: int = 72,
    height: int = 18,
    x_label: str = "",
    title: str = "",
) -> str:
    """CDF plot: y is always 0-100%."""
    from ..analysis.stats import cdf

    xs: list[np.ndarray] = []
    plotted: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, values in series.items():
        ordered, percent = cdf(values)
        plotted[name] = (ordered, percent)
        xs.append(ordered)
    all_x = np.concatenate(xs)
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    # Resample every CDF onto a common grid so the plot x-axis is shared.
    grid_x = np.linspace(x_lo, x_hi, width)
    ys = {}
    for name, (ordered, percent) in plotted.items():
        stepped = np.interp(grid_x, ordered, percent, left=0.0, right=100.0)
        ys[name] = stepped
    return ascii_plot(
        grid_x, ys, width=width, height=height, x_label=x_label,
        y_label="% (CDF)", title=title,
    )


def ascii_box_row(
    low: float, q1: float, median: float, q3: float, high: float,
    lo_bound: float, hi_bound: float, width: int = 50,
) -> str:
    """One horizontal box-and-whiskers row on a shared scale."""
    span = hi_bound - lo_bound
    if span <= 0:
        return " " * width

    def col(value: float) -> int:
        return int(np.clip((value - lo_bound) / span * (width - 1), 0, width - 1))

    cells = [" "] * width
    for position in range(col(low), col(high) + 1):
        cells[position] = "-"
    for position in range(col(q1), col(q3) + 1):
        cells[position] = "="
    cells[col(low)] = "|"
    cells[col(high)] = "|"
    cells[col(median)] = "#"
    return "".join(cells)


def ascii_boxplot(
    groups: dict[str, "object"], width: int = 50, title: str = ""
) -> str:
    """Box plots for labelled :class:`~repro.analysis.stats.BoxStats`
    groups on one shared axis (Figure 13's hourly boxes)."""
    if not groups:
        raise AnalysisError("nothing to plot")
    lo = min(stats.low_whisker for stats in groups.values())
    hi = max(stats.high_whisker for stats in groups.values())
    label_width = max(len(str(name)) for name in groups)
    lines = [title] if title else []
    for name, stats in groups.items():
        row = ascii_box_row(
            stats.low_whisker, stats.q1, stats.median, stats.q3,
            stats.high_whisker, lo, hi, width,
        )
        lines.append(f"{str(name):>{label_width}} |{row}|")
    lines.append(
        " " * label_width + f"  {lo:<10.3g}{'':{max(width - 20, 1)}}{hi:>10.3g}"
    )
    return "\n".join(lines)


def ascii_histogram(
    values: np.ndarray | list, bins: int = 20, width: int = 50, title: str = ""
) -> str:
    """Horizontal-bar histogram."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise AnalysisError("nothing to histogram")
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(count / peak * width)
        lines.append(f"{lo:10.3g} - {hi:10.3g} | {bar} {count}")
    return "\n".join(lines)
