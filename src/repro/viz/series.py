"""CSV export of figure data series."""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass
class Series:
    """One named data series of a figure."""

    name: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape != self.y.shape:
            raise AnalysisError(f"series {self.name!r}: x and y must align")


def format_csv(series_list: list[Series], x_label: str = "x", y_label: str = "y") -> str:
    """Long-format CSV: series,x,y."""
    if not series_list:
        raise AnalysisError("no series to export")
    buffer = io.StringIO()
    buffer.write(f"series,{x_label},{y_label}\n")
    for series in series_list:
        for xv, yv in zip(series.x, series.y):
            buffer.write(f"{series.name},{xv:.10g},{yv:.10g}\n")
    return buffer.getvalue()


def write_csv(
    series_list: list[Series],
    path: str,
    x_label: str = "x",
    y_label: str = "y",
) -> None:
    """Write figure data to ``path`` (parent directories created)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_csv(series_list, x_label, y_label))
