"""Text-based visualization: ASCII plots, tables, CSV series.

The offline environment has no plotting stack, so every figure is
emitted twice: as a CSV data series (for external plotting) and as an
ASCII rendering (for immediate inspection).
"""

from .ascii import ascii_boxplot, ascii_cdf, ascii_histogram, ascii_plot, sparkline
from .table import render_table
from .series import Series, write_csv, format_csv

__all__ = [
    "ascii_plot",
    "ascii_boxplot",
    "ascii_cdf",
    "ascii_histogram",
    "sparkline",
    "render_table",
    "Series",
    "write_csv",
    "format_csv",
]
