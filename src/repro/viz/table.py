"""Plain-text table rendering."""

from __future__ import annotations

from ..errors import AnalysisError


def render_table(
    headers: list[str], rows: list[list], title: str = ""
) -> str:
    """Render an aligned text table.

    Cells are stringified; floats get compact formatting.
    """
    if not headers:
        raise AnalysisError("a table needs headers")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.2f}".rstrip("0").rstrip(".")
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
