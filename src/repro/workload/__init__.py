"""Workload modelling: services, task placement, traffic generation.

Encodes the service-level structure the paper ties its findings to:
each server runs a single task; racks run a diverse set of tasks under
*spread* placement, except where placement constraints co-locate one
workload densely (the machine-learning tasks behind RegA-High's
bimodal contention, Section 7.1).
"""

from .services import ServiceSpec, SERVICE_CATALOG, service_by_name
from .placement import (
    RackPlacement,
    ColocatedPlacementPolicy,
    SpreadPlacementPolicy,
    dominant_task_share,
)
from .diurnal import DiurnalProfile, FLAT_PROFILE, MORNING_PEAK_PROFILE, EVENING_PEAK_PROFILE
from .flows import (
    BackgroundTrickle,
    BurstGeneratorClient,
    BurstServer,
    IncastApp,
    MulticastBurster,
)
from .region import RegionSpec, RackWorkload, REGION_A, REGION_B, build_region_workloads

__all__ = [
    "ServiceSpec",
    "SERVICE_CATALOG",
    "service_by_name",
    "RackPlacement",
    "ColocatedPlacementPolicy",
    "SpreadPlacementPolicy",
    "dominant_task_share",
    "DiurnalProfile",
    "FLAT_PROFILE",
    "MORNING_PEAK_PROFILE",
    "EVENING_PEAK_PROFILE",
    "BackgroundTrickle",
    "BurstGeneratorClient",
    "BurstServer",
    "MulticastBurster",
    "IncastApp",
    "RegionSpec",
    "RackWorkload",
    "REGION_A",
    "REGION_B",
    "build_region_workloads",
]
