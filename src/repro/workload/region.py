"""Region composition: how racks, placement, and diurnal load combine.

Section 7.1's finding is a *regional* property: RegA mixes spread
placement (80% of racks) with densely co-located ML racks (20%),
producing bimodal contention; RegB uses spread placement over a
somewhat hotter service mix, producing a uniform spread with higher
median contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RackConfig
from ..errors import ConfigError
from .diurnal import DiurnalProfile, MORNING_PEAK_PROFILE, EVENING_PEAK_PROFILE
from .placement import ColocatedPlacementPolicy, RackPlacement, SpreadPlacementPolicy


@dataclass(frozen=True)
class RegionSpec:
    """Everything that distinguishes one region's workload."""

    name: str
    #: Fraction of racks receiving dense co-located placement.
    colocated_fraction: float
    #: Placement policy for the spread majority.
    spread_policy: SpreadPlacementPolicy
    #: Placement policy for the co-located minority.
    colocated_policy: ColocatedPlacementPolicy
    #: Regional diurnal profile (tasks blend toward it by sensitivity).
    diurnal: DiurnalProfile
    #: Region-wide load scaling (RegB runs hotter than RegA).
    load_scale: float = 1.0
    rack_config: RackConfig = field(default_factory=RackConfig)

    def __post_init__(self) -> None:
        if not 0 <= self.colocated_fraction <= 1:
            raise ConfigError("colocated fraction must be in [0, 1]")
        if self.load_scale <= 0:
            raise ConfigError("load scale must be positive")


@dataclass(frozen=True)
class RackWorkload:
    """One rack's realized workload: placement plus regional context."""

    rack: str
    region: str
    placement: RackPlacement
    diurnal: DiurnalProfile
    load_scale: float
    colocated: bool
    rack_config: RackConfig


#: RegA: 20% of racks carry densely co-located ML training
#: (Section 7.1), the rest spread placement; morning-peak diurnal.
REGION_A = RegionSpec(
    name="RegA",
    colocated_fraction=0.20,
    spread_policy=SpreadPlacementPolicy(
        mean_distinct_tasks=14.0,
        # ML training lives almost entirely in the co-located racks
        # (Section 7.1: placement "favored co-locating machine learning
        # workloads densely in a single data center").
        service_weights={"ml_trainer": 0.15},
    ),
    colocated_policy=ColocatedPlacementPolicy(),
    diurnal=MORNING_PEAK_PROFILE,
    load_scale=1.4,
)

#: RegB: spread placement throughout, but a hotter mix (higher overall
#: contention, Figure 9) with more incast-heavy services.
REGION_B = RegionSpec(
    name="RegB",
    colocated_fraction=0.0,
    spread_policy=SpreadPlacementPolicy(
        mean_distinct_tasks=15.0,
        service_weights={
            "cache": 1.0,
            "pubsub": 1.0,
            "search": 0.9,
            "api": 0.8,
            "ml_trainer": 0.9,
            "storage": 2.4,
            "analytics": 2.0,
            "batch": 1.4,
        },
        skew=1.6,
    ),
    colocated_policy=ColocatedPlacementPolicy(),
    diurnal=EVENING_PEAK_PROFILE,
    load_scale=2.0,
)


def build_region_workloads(
    spec: RegionSpec,
    racks: int,
    rng: np.random.Generator,
    servers_per_rack: int | None = None,
) -> list[RackWorkload]:
    """Place tasks on every rack of a region.

    Co-located racks are chosen up-front (placement is a property of the
    rack, persistent across the day — which is what makes Figure 12's
    persistence finding possible).
    """
    if racks < 0:
        raise ConfigError("rack count cannot be negative")
    servers = servers_per_rack or spec.rack_config.servers
    colocated_count = int(round(spec.colocated_fraction * racks))
    colocated_ids = set(rng.choice(racks, size=colocated_count, replace=False).tolist())

    workloads: list[RackWorkload] = []
    for index in range(racks):
        rack_name = f"{spec.name}-rack{index:04d}"
        colocated = index in colocated_ids
        policy = spec.colocated_policy if colocated else spec.spread_policy
        placement = policy.place(rack_name, servers, rng)
        workloads.append(
            RackWorkload(
                rack=rack_name,
                region=spec.name,
                placement=placement,
                diurnal=spec.diurnal,
                load_scale=spec.load_scale,
                colocated=colocated,
                rack_config=spec.rack_config,
            )
        )
    return workloads
