"""Diurnal load profiles.

Section 7.2: RegA-High contention rises ~27.6% between hours 4 and 10
local time; "diurnal patterns in data center traffic depend on several
factors such as background service tasks, user activity and where
users are physically located".  A :class:`DiurnalProfile` maps
hour-of-day to a load multiplier applied to burst rates and volumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class DiurnalProfile:
    """24 hourly load multipliers (1.0 = reference load)."""

    name: str
    multipliers: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.multipliers) != 24:
            raise ConfigError("a diurnal profile needs 24 hourly multipliers")
        if any(m <= 0 for m in self.multipliers):
            raise ConfigError("load multipliers must be positive")

    def at_hour(self, hour: int) -> float:
        """Load multiplier at hour-of-day ``hour``."""
        return self.multipliers[hour % 24]

    def scaled(self, sensitivity: float) -> "DiurnalProfile":
        """Blend toward flat according to a task's diurnal sensitivity:
        0 gives a flat profile, 1 the full swing."""
        blended = tuple(1.0 + sensitivity * (m - 1.0) for m in self.multipliers)
        return DiurnalProfile(f"{self.name}*{sensitivity:g}", blended)

    def busiest_hour(self) -> int:
        return max(range(24), key=lambda hour: self.multipliers[hour])


def _sinusoid(peak_hour: int, amplitude: float, width: float = 6.0) -> tuple[float, ...]:
    """A smooth single-peak daily curve centred on ``peak_hour``."""
    values = []
    for hour in range(24):
        distance = min((hour - peak_hour) % 24, (peak_hour - hour) % 24)
        values.append(1.0 + amplitude * math.exp(-0.5 * (distance / width) ** 2))
    return tuple(values)


#: No diurnal variation (batch/storage-dominated workloads).
FLAT_PROFILE = DiurnalProfile("flat", tuple([1.0] * 24))

#: Peak between hours 4 and 10 local time — the RegA pattern
#: (Figure 13 top: contention up ~27.6% in that window).
MORNING_PEAK_PROFILE = DiurnalProfile("morning-peak", _sinusoid(peak_hour=7, amplitude=0.55))

#: Peak in the local evening — a region serving local user traffic.
EVENING_PEAK_PROFILE = DiurnalProfile("evening-peak", _sinusoid(peak_hour=19, amplitude=0.35))
