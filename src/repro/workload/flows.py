"""Packet-level traffic applications for the simulator.

Implements the paper's validation tooling (Section 4.5) and the traffic
patterns the analysis cares about:

* :class:`MulticastBurster` — "a tool that sends periodic bursts to a
  rack-local multicast address" (the Figure 3 validation).
* :class:`BurstServer` / :class:`BurstGeneratorClient` — "a client
  periodically requesting a server to transmit a burst of a specified
  volume" (the Figure 4 validation: 1.8 MB bursts, ~3 ms at link rate).
* :class:`IncastApp` — synchronized many-to-one transfers over DCTCP,
  the "heavy incast" pattern Section 3 calls out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from .. import units
from ..errors import SimulationError
from ..simnet.engine import Engine
from ..simnet.host import Host
from ..simnet.packet import FlowKey, Packet
from ..simnet.tcp import DctcpControl, TcpReceiver, TcpSender, open_connection

_flow_ports = itertools.count(50_000)


class MulticastBurster:
    """Sends a fixed-size burst to a multicast group every period."""

    def __init__(
        self,
        host: Host,
        group: str,
        burst_bytes: int = 256 * 1024,
        period: float = 100e-3,
        packet_bytes: int = 8 * 1024,
        send_rate: float | None = None,
    ) -> None:
        if burst_bytes <= 0 or packet_bytes <= 0:
            raise SimulationError("burst and packet sizes must be positive")
        self.host = host
        self.group = group
        self.burst_bytes = burst_bytes
        self.period = period
        self.packet_bytes = packet_bytes
        #: Pacing rate of the burst on the sender's link (defaults to
        #: the host link rate).
        self.send_rate = send_rate or host.uplink.rate
        self.bursts_sent = 0
        self._flow = FlowKey(host.name, group, next(_flow_ports), 5001, proto="udp")
        self._running = False

    def start(self) -> None:
        if self._running:
            raise SimulationError("burster already running")
        self._running = True
        self.host.engine.after(0.0, self._send_burst)

    def stop(self) -> None:
        self._running = False

    def _send_burst(self) -> None:
        if not self._running:
            return
        remaining = self.burst_bytes
        delay = 0.0
        while remaining > 0:
            size = min(self.packet_bytes, remaining)
            packet = Packet(
                src=self.host.name,
                dst=self.group,
                size=size,
                flow=self._flow,
                ecn_capable=False,
                multicast_group=self.group,
            )
            self.host.engine.after(delay, lambda p=packet: self.host.send(p))
            delay += size / self.send_rate
            remaining -= size
        self.bursts_sent += 1
        self.host.engine.after(self.period, self._send_burst)


class BurstServer:
    """Responds to burst requests by transmitting raw paced packets.

    Raw (non-TCP) pacing keeps the validation deterministic: the burst
    occupies exactly ``volume / rate`` seconds on the wire, giving the
    ~3 ms bursts of Figure 4 for 1.8 MB at 12.5 Gbps... as long as the
    rack buffer admits them.
    """

    def __init__(self, host: Host, packet_bytes: int = 16 * 1024) -> None:
        self.host = host
        self.packet_bytes = packet_bytes
        self.bursts_served = 0

    def transmit_burst(self, client: str, volume: int, rate: float | None = None) -> None:
        """Send ``volume`` bytes to ``client`` paced at ``rate``."""
        if volume <= 0:
            raise SimulationError("burst volume must be positive")
        rate = rate or self.host.uplink.rate
        flow = FlowKey(self.host.name, client, next(_flow_ports), 5002, proto="udp")
        remaining = volume
        delay = 0.0
        seq = 0
        while remaining > 0:
            size = min(self.packet_bytes, remaining)
            packet = Packet(
                src=self.host.name,
                dst=client,
                size=size,
                flow=flow,
                seq=seq,
                payload=size,
                ecn_capable=False,
            )
            self.host.engine.after(delay, lambda p=packet: self.host.send(p))
            delay += size / rate
            seq += size
            remaining -= size
        self.bursts_served += 1


class BurstGeneratorClient:
    """Periodically requests bursts from a server, on its own local clock.

    Section 4.5: "Each request is sent at the specified frequency based
    on client's local clock."  Request propagation is modelled as a
    small fixed control delay rather than a full RPC.
    """

    def __init__(
        self,
        client: Host,
        server: BurstServer,
        burst_bytes: int = int(1.8 * units.MB),
        period: float = 200e-3,
        burst_rate: float | None = None,
        request_delay: float = 50e-6,
    ) -> None:
        self.client = client
        self.server = server
        self.burst_bytes = burst_bytes
        self.period = period
        self.burst_rate = burst_rate
        self.request_delay = request_delay
        self.requests_sent = 0
        self._running = False

    def start(self, first_request: float = 0.0) -> None:
        if self._running:
            raise SimulationError("client already running")
        self._running = True
        # Fire when the *client clock* reads first_request (+ k*period):
        # convert each desired local time to true time via the clock.
        true_start = self.client.clock.invert(
            self.client.clock.read(self.client.engine.now) + first_request
        )
        self.client.engine.at(max(true_start, self.client.engine.now), self._request)

    def stop(self) -> None:
        self._running = False

    def _request(self) -> None:
        if not self._running:
            return
        self.requests_sent += 1
        self.client.engine.after(
            self.request_delay,
            lambda: self.server.transmit_burst(
                self.client.name, self.burst_bytes, self.burst_rate
            ),
        )
        self.client.engine.after(self.period, self._request)


class BackgroundTrickle:
    """Light periodic traffic between rack neighbours.

    Production hosts always carry some traffic, so Millisampler runs
    start promptly when enabled (the run clock starts on the first
    packet).  Idle simulated hosts would instead start late and shrink
    every SyncMillisampler common window; a trickle restores the
    realistic always-some-traffic baseline.
    """

    def __init__(self, hosts: list[Host], period: float = 5e-3, size: int = 2000) -> None:
        if not hosts:
            raise SimulationError("trickle needs hosts")
        if period <= 0 or size <= 0:
            raise SimulationError("period and size must be positive")
        self.hosts = hosts
        self.period = period
        self.size = size
        self._running = False
        self.packets_sent = 0

    def start(self) -> None:
        if self._running:
            raise SimulationError("trickle already running")
        self._running = True
        for index in range(len(self.hosts)):
            self.hosts[index].engine.after(index * 1e-5, lambda i=index: self._tick(i))

    def stop(self) -> None:
        self._running = False

    def _tick(self, index: int) -> None:
        if not self._running:
            return
        source = self.hosts[index]
        target = self.hosts[(index + 1) % len(self.hosts)]
        packet = Packet(
            src=source.name,
            dst=target.name,
            size=self.size,
            flow=FlowKey(source.name, target.name, 9000 + index, 9000, proto="udp"),
            ecn_capable=False,
        )
        source.send(packet)
        self.packets_sent += 1
        source.engine.after(self.period, lambda: self._tick(index))


@dataclass
class IncastResult:
    """Outcome of one incast round."""

    senders: int
    bytes_per_sender: int
    completed: int = 0
    total_retransmissions: int = 0
    total_timeouts: int = 0
    finish_time: float | None = None


class IncastApp:
    """Synchronized many-to-one transfer over DCTCP.

    ``fanin`` senders each push ``bytes_per_sender`` to one receiver at
    the same instant — the pattern where "even a small congestion
    window per sender can result in packet loss due to the large number
    of senders overflowing the buffer" (Section 3).
    """

    def __init__(
        self,
        senders: list[Host],
        receiver: Host,
        bytes_per_sender: int = 64 * 1024,
        mss: int = 1448,
        segment_bytes: int = 16 * 1024,
        initial_cwnd_segments: int = 10,
        on_complete: Callable[[IncastResult], None] | None = None,
    ) -> None:
        if not senders:
            raise SimulationError("incast needs at least one sender")
        self.senders = senders
        self.receiver = receiver
        self.bytes_per_sender = bytes_per_sender
        self.mss = mss
        self.segment_bytes = segment_bytes
        self.initial_cwnd_segments = initial_cwnd_segments
        self.on_complete = on_complete
        self.result = IncastResult(len(senders), bytes_per_sender)
        self._connections: list[tuple[TcpSender, TcpReceiver]] = []

    def start(self, at_time: float | None = None) -> None:
        engine: Engine = self.receiver.engine
        start = at_time if at_time is not None else engine.now

        def launch() -> None:
            for host in self.senders:
                sender, receiver = open_connection(
                    host,
                    self.receiver,
                    DctcpControl(
                        mss=self.mss,
                        initial_cwnd_segments=self.initial_cwnd_segments,
                    ),
                    segment_bytes=self.segment_bytes,
                    on_complete=self._one_done,
                )
                self._connections.append((sender, receiver))
                sender.send(self.bytes_per_sender)

        engine.at(max(start, engine.now), launch)

    def _one_done(self) -> None:
        self.result.completed += 1
        if self.result.completed == len(self.senders):
            self.result.finish_time = self.receiver.engine.now
            self.result.total_retransmissions = sum(
                sender.retransmissions for sender, _ in self._connections
            )
            self.result.total_timeouts = sum(
                sender.timeouts for sender, _ in self._connections
            )
            if self.on_complete is not None:
                self.on_complete(self.result)

    @property
    def connections(self) -> list[tuple[TcpSender, TcpReceiver]]:
        return list(self._connections)
