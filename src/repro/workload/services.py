"""Service catalog: the traffic personality of each task type.

Each server runs a single task (Section 7.1).  A :class:`ServiceSpec`
captures the millisecond-scale traffic behaviour of one task type —
the knobs the fluid model turns into per-server arrival processes:
burst frequency, burst volume/rate, baseline (smooth) utilization, and
connection counts inside/outside bursts (incast degree).

Values are chosen so the synthesized fleet lands near the paper's
aggregate statistics (Section 6: median 7.5 bursts/s, median burst
length 2 ms, median burst volume 1.8 MB, median in-burst utilization
65.5%, ~5.5% outside bursts, 2.7x more connections inside bursts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ServiceSpec:
    """Traffic model of one task type."""

    name: str
    #: Mean bursts per second per server (Poisson arrivals), at unit load.
    burst_rate: float
    #: Lognormal parameters of burst volume in bytes: exp(mu) is the median.
    burst_volume_log_mu: float
    burst_volume_log_sigma: float
    #: During a burst the flows offer this fraction of line rate
    #: (mean of a clipped normal).
    burst_intensity_mean: float
    burst_intensity_std: float
    #: Smooth background utilization (fraction of line rate).
    baseline_utilization: float
    #: Active connections per sample outside bursts.
    base_connections: float
    #: Active connections per sample inside bursts (incast degree).
    burst_connections: float
    #: How strongly the task follows the diurnal profile (0 = flat).
    diurnal_sensitivity: float = 1.0
    #: Time constant (seconds) over which the senders feeding this task
    #: forget their congestion state.  Long-lived connection pools (ML
    #: all-to-all) stay adapted between bursts; request/response tiers
    #: open fresh connections whose windows restart from slow start.
    #: This is the mechanism behind Section 8.1's loss inversion:
    #: persistent contention with persistent senders loses *less*.
    sender_persistence: float = 0.05
    #: Probability that a server running this task is in an *active
    #: episode* during any given 2 s run.  Server runs are strongly
    #: bimodal (Section 5: only 34% of server runs have bursty ingress,
    #: yet Figure 6's bursty runs see a median 7.5 bursts/s): a server
    #: is either exchanging traffic heavily or nearly idle.
    active_probability: float = 0.22

    def __post_init__(self) -> None:
        if self.burst_rate < 0:
            raise ConfigError("burst rate cannot be negative")
        if not 0 <= self.baseline_utilization < 1:
            raise ConfigError("baseline utilization must be in [0, 1)")
        if self.burst_intensity_mean <= 0:
            raise ConfigError("burst intensity must be positive")
        if self.base_connections < 0 or self.burst_connections < 0:
            raise ConfigError("connection counts cannot be negative")


import math as _math


def _volume_params(median_mb: float, sigma: float) -> tuple[float, float]:
    """Lognormal (mu, sigma) for a burst-volume median in megabytes."""
    return _math.log(median_mb * 1024 * 1024), sigma


# The catalog spans the service families a Meta-like fleet runs.  The
# distinguishing axes: ML trainers burst long, hard, and constantly
# (all-to-all gradient exchange); caches see high-fanin incast of small
# responses; storage moves large sequential volumes; web/api tiers are
# mostly smooth with occasional fan-out bursts.

SERVICE_CATALOG: tuple[ServiceSpec, ...] = (
    ServiceSpec(
        name="web",
        burst_rate=7.8,
        burst_volume_log_mu=_volume_params(0.55, 0.8)[0],
        burst_volume_log_sigma=0.8,
        burst_intensity_mean=0.62,
        burst_intensity_std=0.15,
        baseline_utilization=0.015,
        base_connections=12.0,
        burst_connections=30.0,
        diurnal_sensitivity=1.2,
    ),
    ServiceSpec(
        name="cache",
        burst_rate=17.9,
        burst_volume_log_mu=_volume_params(0.85, 0.7)[0],
        burst_volume_log_sigma=0.7,
        burst_intensity_mean=0.64,
        burst_intensity_std=0.12,
        baseline_utilization=0.022,
        base_connections=25.0,
        burst_connections=80.0,
        diurnal_sensitivity=1.0,
    ),
    ServiceSpec(
        name="db",
        burst_rate=10.0,
        burst_volume_log_mu=_volume_params(1.1, 0.75)[0],
        burst_volume_log_sigma=0.75,
        burst_intensity_mean=0.67,
        burst_intensity_std=0.15,
        baseline_utilization=0.018,
        base_connections=15.0,
        burst_connections=45.0,
        diurnal_sensitivity=0.8,
    ),
    ServiceSpec(
        name="storage",
        burst_rate=11.9,
        burst_volume_log_mu=_volume_params(1.7, 0.9)[0],
        burst_volume_log_sigma=0.9,
        burst_intensity_mean=0.67,
        burst_intensity_std=0.12,
        baseline_utilization=0.028,
        base_connections=8.0,
        burst_connections=20.0,
        diurnal_sensitivity=0.5,
        sender_persistence=5.0,
    ),
    ServiceSpec(
        name="ml_trainer",
        burst_rate=25.0,
        burst_volume_log_mu=_volume_params(1.8, 0.5)[0],
        burst_volume_log_sigma=0.5,
        burst_intensity_mean=0.88,
        burst_intensity_std=0.06,
        baseline_utilization=0.04,
        base_connections=10.0,
        burst_connections=24.0,
        diurnal_sensitivity=0.9,
        sender_persistence=30.0,
        active_probability=0.90,
    ),
    ServiceSpec(
        name="batch",
        burst_rate=6.0,
        burst_volume_log_mu=_volume_params(1.5, 1.0)[0],
        burst_volume_log_sigma=1.0,
        burst_intensity_mean=0.60,
        burst_intensity_std=0.18,
        baseline_utilization=0.024,
        base_connections=6.0,
        burst_connections=14.0,
        diurnal_sensitivity=0.3,
        sender_persistence=2.0,
    ),
    ServiceSpec(
        name="api",
        burst_rate=12.9,
        burst_volume_log_mu=_volume_params(0.65, 0.8)[0],
        burst_volume_log_sigma=0.8,
        burst_intensity_mean=0.64,
        burst_intensity_std=0.15,
        baseline_utilization=0.018,
        base_connections=18.0,
        burst_connections=55.0,
        diurnal_sensitivity=1.3,
    ),
    ServiceSpec(
        name="pubsub",
        burst_rate=21.4,
        burst_volume_log_mu=_volume_params(0.95, 0.7)[0],
        burst_volume_log_sigma=0.7,
        burst_intensity_mean=0.70,
        burst_intensity_std=0.14,
        baseline_utilization=0.022,
        base_connections=20.0,
        burst_connections=60.0,
        diurnal_sensitivity=1.0,
    ),
    ServiceSpec(
        name="analytics",
        burst_rate=9.0,
        burst_volume_log_mu=_volume_params(1.6, 0.9)[0],
        burst_volume_log_sigma=0.9,
        burst_intensity_mean=0.62,
        burst_intensity_std=0.16,
        baseline_utilization=0.022,
        base_connections=9.0,
        burst_connections=22.0,
        diurnal_sensitivity=0.4,
        sender_persistence=3.0,
    ),
    ServiceSpec(
        name="search",
        burst_rate=15.5,
        burst_volume_log_mu=_volume_params(0.75, 0.75)[0],
        burst_volume_log_sigma=0.75,
        burst_intensity_mean=0.68,
        burst_intensity_std=0.14,
        baseline_utilization=0.018,
        base_connections=22.0,
        burst_connections=70.0,
        diurnal_sensitivity=1.1,
    ),
)

_BY_NAME = {spec.name: spec for spec in SERVICE_CATALOG}


def service_by_name(name: str) -> ServiceSpec:
    """Look up a catalog service; raises :class:`ConfigError` if unknown."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown service {name!r}; catalog has {sorted(_BY_NAME)}"
        ) from None
