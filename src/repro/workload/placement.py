"""Task-to-server placement policies.

Section 7.1 traces RegA's bimodal contention to placement: racks in
RegA-High run few distinct tasks with one dominant task on 60-100% of
servers (a machine-learning task co-located densely), while
RegA-Typical and RegB racks run 14-15 distinct tasks with the dominant
task on ~25% of servers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .services import SERVICE_CATALOG, ServiceSpec, service_by_name


@dataclass(frozen=True)
class RackPlacement:
    """The outcome of placing tasks on one rack: one task per server.

    ``tasks[i]`` is the task instance on server ``i``; multiple servers
    may run instances of the same task (same service), and a task name
    like ``cache/123`` identifies the task while the prefix identifies
    its service.
    """

    rack: str
    tasks: tuple[str, ...]
    services: tuple[ServiceSpec, ...]

    def __post_init__(self) -> None:
        if len(self.tasks) != len(self.services):
            raise ConfigError("tasks and services must align")
        if not self.tasks:
            raise ConfigError("a placement must cover at least one server")

    @property
    def servers(self) -> int:
        return len(self.tasks)

    def distinct_tasks(self) -> int:
        """Number of distinct tasks on the rack (Figure 10's metric)."""
        return len(set(self.tasks))

    def dominant_task(self) -> str:
        """The task running on the most servers."""
        return Counter(self.tasks).most_common(1)[0][0]

    def dominant_share(self) -> float:
        """Fraction of servers running the dominant task (Figure 11)."""
        count = Counter(self.tasks).most_common(1)[0][1]
        return count / self.servers


def dominant_task_share(placement: RackPlacement) -> float:
    """Convenience alias used by the Figure 11 experiment."""
    return placement.dominant_share()


class SpreadPlacementPolicy:
    """Production-default placement: tasks spread across racks.

    Each rack receives ``distinct_tasks`` distinct tasks (a clipped
    normal around the paper's median of 14-15), drawn from the service
    catalog with optional weights, and servers are dealt to tasks with
    a mild skew so a natural dominant task emerges (~25% share).
    """

    def __init__(
        self,
        mean_distinct_tasks: float = 14.5,
        distinct_tasks_std: float = 4.0,
        service_weights: dict[str, float] | None = None,
        skew: float = 1.6,
    ) -> None:
        if mean_distinct_tasks < 1:
            raise ConfigError("racks must run at least one task")
        if skew <= 0:
            raise ConfigError("skew must be positive")
        self.mean_distinct_tasks = mean_distinct_tasks
        self.distinct_tasks_std = distinct_tasks_std
        self.service_weights = service_weights
        self.skew = skew

    def place(self, rack: str, servers: int, rng: np.random.Generator) -> RackPlacement:
        count = int(
            np.clip(
                rng.normal(self.mean_distinct_tasks, self.distinct_tasks_std),
                2,
                min(servers, 30),
            )
        )
        names = [spec.name for spec in SERVICE_CATALOG]
        if self.service_weights is not None:
            weights = np.array([self.service_weights.get(name, 1.0) for name in names])
        else:
            weights = np.ones(len(names))
        weights = weights / weights.sum()
        chosen_services = rng.choice(names, size=count, p=weights)
        task_names = [
            f"{service}/{rng.integers(0, 10_000)}" for service in chosen_services
        ]

        # Zipf-ish server allotment so one task dominates mildly (~25%);
        # every chosen task gets at least one server so the realized
        # distinct-task count matches the draw (Figure 10 medians).
        count = min(count, servers)
        shares = rng.dirichlet(np.full(count, 1.0 / self.skew))
        spare = servers - count
        allocations = 1 + np.floor(shares * spare).astype(int)
        while allocations.sum() < servers:
            allocations[int(np.argmax(shares))] += 1
        while allocations.sum() > servers:
            candidates = np.flatnonzero(allocations > 1)
            allocations[candidates[-1]] -= 1

        tasks: list[str] = []
        services: list[ServiceSpec] = []
        for task_name, service_name, slots in zip(task_names, chosen_services, allocations):
            spec = service_by_name(str(service_name))
            tasks.extend([task_name] * int(slots))
            services.extend([spec] * int(slots))
        order = rng.permutation(servers)
        tasks_arr = np.array(tasks, dtype=object)[order]
        services_arr = np.array(services, dtype=object)[order]
        return RackPlacement(rack, tuple(tasks_arr), tuple(services_arr))


class ColocatedPlacementPolicy:
    """Dense co-location of one workload (the RegA-High pattern).

    A single dominant task (by default an ML trainer) occupies
    ``dominant_share`` of the rack's servers (uniform in 0.6-1.0, per
    Figure 11); the remainder is filled by a spread policy, leaving few
    distinct tasks overall (median 8 in the paper).
    """

    def __init__(
        self,
        dominant_service: str = "ml_trainer",
        dominant_share_low: float = 0.60,
        dominant_share_high: float = 1.0,
        filler: SpreadPlacementPolicy | None = None,
    ) -> None:
        if not 0 < dominant_share_low <= dominant_share_high <= 1:
            raise ConfigError("dominant share bounds must satisfy 0 < low <= high <= 1")
        self.dominant_service = service_by_name(dominant_service)
        self.dominant_share_low = dominant_share_low
        self.dominant_share_high = dominant_share_high
        self.filler = filler or SpreadPlacementPolicy(mean_distinct_tasks=9.0)

    def place(self, rack: str, servers: int, rng: np.random.Generator) -> RackPlacement:
        share = rng.uniform(self.dominant_share_low, self.dominant_share_high)
        dominant_count = max(1, int(round(share * servers)))
        dominant_count = min(dominant_count, servers)
        # All RegA-High racks run the *same* task (Section 7.1: "the top
        # task in each of the RegA-High racks was the same").
        dominant_task = f"{self.dominant_service.name}/0"

        tasks = [dominant_task] * dominant_count
        services: list[ServiceSpec] = [self.dominant_service] * dominant_count
        remainder = servers - dominant_count
        if remainder > 0:
            fill = self.filler.place(rack, remainder, rng)
            tasks.extend(fill.tasks)
            services.extend(fill.services)
        order = rng.permutation(servers)
        tasks_arr = np.array(tasks, dtype=object)[order]
        services_arr = np.array(services, dtype=object)[order]
        return RackPlacement(rack, tuple(tasks_arr), tuple(services_arr))
