"""Tests for the production multi-cadence run rotation."""

import pytest

from repro.core.scheduler import (
    CadenceSpec,
    MultiRateScheduler,
    PRODUCTION_CADENCES,
)
from repro.errors import SamplerError


class TestCadences:
    def test_production_rotation_matches_paper(self):
        """Section 4.1: 10 ms, 1 ms, 100 us sampling; 2000 buckets give
        observation periods of 20 s, 2 s, 200 ms."""
        by_name = {c.name: c for c in PRODUCTION_CADENCES}
        assert by_name["10ms"].run_duration == pytest.approx(20.0)
        assert by_name["1ms"].run_duration == pytest.approx(2.0)
        assert by_name["100us"].run_duration == pytest.approx(0.2)


class TestMultiRateScheduler:
    def test_runs_never_overlap(self):
        scheduler = MultiRateScheduler()
        time = 0.0
        last_end = float("-inf")
        for _ in range(20):
            result = scheduler.next_run(time)
            if result is not None:
                cadence, _ = result
                assert time >= last_end
                assert cadence is not None
                last_end = time + cadence.run_duration
            time += 5.0

    def test_all_cadences_eventually_run(self):
        scheduler = MultiRateScheduler()
        seen = set()
        time = 0.0
        while time < 2000.0 and len(seen) < 3:
            result = scheduler.next_run(time)
            if result is not None and result[0] is not None:
                seen.add(result[0].name)
            time += 1.0
        assert seen == {"10ms", "1ms", "100us"}

    def test_cadence_respects_period(self):
        cadence = CadenceSpec("1ms", 1e-3, period=100.0)
        scheduler = MultiRateScheduler(cadences=(cadence,))
        first = None
        second = None
        time = 0.0
        while second is None and time < 500:
            result = scheduler.next_run(time)
            if result is not None and result[0] is not None:
                if first is None:
                    first = time
                else:
                    second = time
            time += 1.0
        assert second - first >= 100.0

    def test_sync_preempts_periodic(self):
        cadence = CadenceSpec("1ms", 1e-3, period=10.0)
        scheduler = MultiRateScheduler(cadences=(cadence,), first_start=5.0)
        scheduler.request_sync_run(6.0, "s1", now=0.0)
        # At t=5 the periodic run would overlap the sync at 6: it yields.
        assert scheduler.next_run(5.0) is None
        result = scheduler.next_run(6.0)
        assert result is not None
        assert result[1] == "s1"

    def test_sync_validation(self):
        scheduler = MultiRateScheduler()
        with pytest.raises(SamplerError):
            scheduler.request_sync_run(0.0, "s", now=1.0)

    def test_duplicate_cadence_names_rejected(self):
        cadence = CadenceSpec("x", 1e-3, period=1.0)
        with pytest.raises(SamplerError):
            MultiRateScheduler(cadences=(cadence, cadence))

    def test_empty_cadences_rejected(self):
        with pytest.raises(SamplerError):
            MultiRateScheduler(cadences=())
