"""Tests for the 128-bit connection-counting sketch."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sketch import (
    SATURATION_ESTIMATE,
    SKETCH_BITS,
    FlowSketch,
    estimate_from_bitmap,
    expected_bits_set,
    hash_flow_key,
)
from repro.errors import SamplerError


class TestHashing:
    def test_hash_is_deterministic(self):
        assert hash_flow_key(("a", "b", 1, 2, "tcp")) == hash_flow_key(
            ("a", "b", 1, 2, "tcp")
        )

    def test_hash_in_range(self):
        for key in ["flow1", b"flow2", 12345, ("x", 1)]:
            assert 0 <= hash_flow_key(key) < SKETCH_BITS

    def test_distinct_keys_spread(self):
        bits = {hash_flow_key(f"flow-{i}") for i in range(500)}
        # 500 keys into 128 bits should touch most of the bitmap.
        assert len(bits) > 100

    def test_unhashable_type_rejected(self):
        with pytest.raises(SamplerError):
            hash_flow_key(3.14)


class TestFlowSketch:
    def test_empty_sketch_estimates_zero(self):
        assert FlowSketch().estimate() == 0.0

    def test_single_flow_estimates_near_one(self):
        sketch = FlowSketch()
        sketch.observe("only-flow")
        assert 0.9 < sketch.estimate() < 1.1

    def test_duplicate_observations_do_not_inflate(self):
        sketch = FlowSketch()
        for _ in range(1000):
            sketch.observe("same-flow")
        assert sketch.bits_set == 1
        assert sketch.estimate() < 1.1

    def test_precise_up_to_a_dozen_flows(self):
        """Section 4.2: 'precise up to a dozen connections'."""
        sketch = FlowSketch()
        for i in range(12):
            sketch.observe(f"flow-{i}")
        assert abs(sketch.estimate() - 12) < 3

    def test_saturates_around_500(self):
        """Section 4.2: 'saturates at around 500 connections'."""
        sketch = FlowSketch()
        for i in range(5000):
            sketch.observe(f"flow-{i}")
        assert sketch.estimate() == SATURATION_ESTIMATE
        assert 400 < SATURATION_ESTIMATE < 700

    def test_merge_is_union(self):
        a, b = FlowSketch(), FlowSketch()
        a.observe("f1")
        b.observe("f2")
        merged = a.merge(b)
        assert merged.bits_set >= max(a.bits_set, b.bits_set)
        assert merged.estimate() >= a.estimate()

    def test_merge_idempotent(self):
        a = FlowSketch()
        a.observe("f1")
        assert a.merge(a).bitmap == a.bitmap

    def test_stateless_across_reset(self):
        sketch = FlowSketch()
        sketch.observe("f1")
        sketch.reset()
        assert sketch.estimate() == 0.0

    def test_bitmap_roundtrip(self):
        sketch = FlowSketch()
        for i in range(40):
            sketch.observe(i)
        assert estimate_from_bitmap(sketch.bitmap) == sketch.estimate()

    def test_invalid_bitmap_rejected(self):
        with pytest.raises(SamplerError):
            FlowSketch(1 << SKETCH_BITS)
        with pytest.raises(SamplerError):
            FlowSketch(-1)

    def test_observe_bit_bounds(self):
        sketch = FlowSketch()
        sketch.observe_bit(0)
        sketch.observe_bit(SKETCH_BITS - 1)
        with pytest.raises(SamplerError):
            sketch.observe_bit(SKETCH_BITS)

    @given(st.sets(st.integers(0, 10_000), min_size=0, max_size=300))
    @settings(max_examples=50)
    def test_estimate_monotone_in_bits(self, flows):
        """More distinct flows never *decreases* the bit count, and the
        estimate grows with occupancy."""
        sketch = FlowSketch()
        previous_bits = 0
        for flow in sorted(flows):
            sketch.observe(flow)
            assert sketch.bits_set >= previous_bits
            previous_bits = sketch.bits_set

    @given(st.integers(1, 200))
    @settings(max_examples=30)
    def test_estimate_tracks_linear_counting_formula(self, n):
        """The estimate equals m*ln(m/z) for the realized zero count."""
        sketch = FlowSketch()
        for i in range(n):
            sketch.observe(f"flow-{i}")
        zeros = SKETCH_BITS - sketch.bits_set
        if zeros > 0:
            expected = SKETCH_BITS * math.log(SKETCH_BITS / zeros)
            assert sketch.estimate() == pytest.approx(expected)


class TestOccupancyModel:
    def test_expected_bits_set_bounds(self):
        assert expected_bits_set(0) == 0
        assert expected_bits_set(500) < SKETCH_BITS
        assert expected_bits_set(10_000) <= SKETCH_BITS

    def test_expected_bits_monotone(self):
        values = [expected_bits_set(n) for n in range(0, 300, 10)]
        assert values == sorted(values)

    def test_negative_flows_rejected(self):
        with pytest.raises(SamplerError):
            expected_bits_set(-1)

    def test_realized_occupancy_near_expectation(self):
        sketch = FlowSketch()
        n = 100
        for i in range(n):
            sketch.observe(f"flow-{i}")
        expected = expected_bits_set(n)
        assert abs(sketch.bits_set - expected) < 20
