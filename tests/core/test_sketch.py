"""Tests for the 128-bit connection-counting sketch."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sketch import (
    SATURATION_ESTIMATE,
    SKETCH_BITS,
    SKETCH_WORDS,
    FlowSketch,
    estimate_from_bitmap,
    expected_bits_set,
    hash_flow_key,
    hash_flow_keys,
    linear_counting_estimates,
)
from repro.errors import SamplerError


class TestHashing:
    def test_hash_is_deterministic(self):
        assert hash_flow_key(("a", "b", 1, 2, "tcp")) == hash_flow_key(
            ("a", "b", 1, 2, "tcp")
        )

    def test_hash_in_range(self):
        for key in ["flow1", b"flow2", 12345, ("x", 1)]:
            assert 0 <= hash_flow_key(key) < SKETCH_BITS

    def test_distinct_keys_spread(self):
        bits = {hash_flow_key(f"flow-{i}") for i in range(500)}
        # 500 keys into 128 bits should touch most of the bitmap.
        assert len(bits) > 100

    def test_unhashable_type_rejected(self):
        with pytest.raises(SamplerError):
            hash_flow_key(3.14)


class TestFlowSketch:
    def test_empty_sketch_estimates_zero(self):
        assert FlowSketch().estimate() == 0.0

    def test_single_flow_estimates_near_one(self):
        sketch = FlowSketch()
        sketch.observe("only-flow")
        assert 0.9 < sketch.estimate() < 1.1

    def test_duplicate_observations_do_not_inflate(self):
        sketch = FlowSketch()
        for _ in range(1000):
            sketch.observe("same-flow")
        assert sketch.bits_set == 1
        assert sketch.estimate() < 1.1

    def test_precise_up_to_a_dozen_flows(self):
        """Section 4.2: 'precise up to a dozen connections'."""
        sketch = FlowSketch()
        for i in range(12):
            sketch.observe(f"flow-{i}")
        assert abs(sketch.estimate() - 12) < 3

    def test_saturates_around_500(self):
        """Section 4.2: 'saturates at around 500 connections'."""
        sketch = FlowSketch()
        for i in range(5000):
            sketch.observe(f"flow-{i}")
        assert sketch.estimate() == SATURATION_ESTIMATE
        assert 400 < SATURATION_ESTIMATE < 700

    def test_merge_is_union(self):
        a, b = FlowSketch(), FlowSketch()
        a.observe("f1")
        b.observe("f2")
        merged = a.merge(b)
        assert merged.bits_set >= max(a.bits_set, b.bits_set)
        assert merged.estimate() >= a.estimate()

    def test_merge_idempotent(self):
        a = FlowSketch()
        a.observe("f1")
        assert a.merge(a).bitmap == a.bitmap

    def test_stateless_across_reset(self):
        sketch = FlowSketch()
        sketch.observe("f1")
        sketch.reset()
        assert sketch.estimate() == 0.0

    def test_bitmap_roundtrip(self):
        sketch = FlowSketch()
        for i in range(40):
            sketch.observe(i)
        assert estimate_from_bitmap(sketch.bitmap) == sketch.estimate()

    def test_invalid_bitmap_rejected(self):
        with pytest.raises(SamplerError):
            FlowSketch(1 << SKETCH_BITS)
        with pytest.raises(SamplerError):
            FlowSketch(-1)

    def test_observe_bit_bounds(self):
        sketch = FlowSketch()
        sketch.observe_bit(0)
        sketch.observe_bit(SKETCH_BITS - 1)
        with pytest.raises(SamplerError):
            sketch.observe_bit(SKETCH_BITS)

    @given(st.sets(st.integers(0, 10_000), min_size=0, max_size=300))
    @settings(max_examples=50)
    def test_estimate_monotone_in_bits(self, flows):
        """More distinct flows never *decreases* the bit count, and the
        estimate grows with occupancy."""
        sketch = FlowSketch()
        previous_bits = 0
        for flow in sorted(flows):
            sketch.observe(flow)
            assert sketch.bits_set >= previous_bits
            previous_bits = sketch.bits_set

    @given(st.integers(1, 200))
    @settings(max_examples=30)
    def test_estimate_tracks_linear_counting_formula(self, n):
        """The estimate equals m*ln(m/z) for the realized zero count."""
        sketch = FlowSketch()
        for i in range(n):
            sketch.observe(f"flow-{i}")
        zeros = SKETCH_BITS - sketch.bits_set
        if zeros > 0:
            expected = SKETCH_BITS * math.log(SKETCH_BITS / zeros)
            assert sketch.estimate() == pytest.approx(expected)


class TestOccupancyModel:
    def test_expected_bits_set_bounds(self):
        assert expected_bits_set(0) == 0
        assert expected_bits_set(500) < SKETCH_BITS
        assert expected_bits_set(10_000) <= SKETCH_BITS

    def test_expected_bits_monotone(self):
        values = [expected_bits_set(n) for n in range(0, 300, 10)]
        assert values == sorted(values)

    def test_negative_flows_rejected(self):
        with pytest.raises(SamplerError):
            expected_bits_set(-1)

    def test_realized_occupancy_near_expectation(self):
        sketch = FlowSketch()
        n = 100
        for i in range(n):
            sketch.observe(f"flow-{i}")
        expected = expected_bits_set(n)
        assert abs(sketch.bits_set - expected) < 20


class TestBatchHashing:
    """hash_flow_keys must agree with hash_flow_key bit for bit."""

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=200))
    @settings(max_examples=100)
    def test_batch_matches_scalar(self, keys):
        batch = hash_flow_keys(np.array(keys, dtype=np.uint64))
        assert batch.tolist() == [hash_flow_key(int(k)) for k in keys]

    def test_signed_dtype_accepted(self):
        keys = np.array([0, 1, 2**40], dtype=np.int64)
        assert hash_flow_keys(keys).tolist() == [hash_flow_key(int(k)) for k in keys]

    def test_results_in_range(self):
        bits = hash_flow_keys(np.arange(10_000, dtype=np.uint64))
        assert bits.min() >= 0 and bits.max() < SKETCH_BITS

    def test_negative_keys_rejected(self):
        with pytest.raises(SamplerError):
            hash_flow_keys(np.array([-1], dtype=np.int64))

    def test_non_integer_dtype_rejected(self):
        with pytest.raises(SamplerError):
            hash_flow_keys(np.array([1.5]))

    def test_memoized_scalar_path_stays_correct(self):
        """Repeated lookups (LRU hits) return the same bit as a cold
        hash, and unhashable-but-reprable keys still fall through."""
        key = ("10.0.0.1", "10.0.0.2", 443, 55000, "tcp")
        cold = hash_flow_key(key)
        assert all(hash_flow_key(key) == cold for _ in range(5))
        weird = (["not", "hashable"],)
        assert 0 <= hash_flow_key(weird) < SKETCH_BITS
        assert hash_flow_key(weird) == hash_flow_key((["not", "hashable"],))


class TestWordBacking:
    """FlowSketch <-> uint64-word conversions used by the array-backed
    sampler, and the OR-merge regression they replace."""

    @given(st.integers(min_value=0, max_value=(1 << SKETCH_BITS) - 1))
    @settings(max_examples=100)
    def test_words_roundtrip(self, bitmap):
        sketch = FlowSketch(bitmap)
        words = sketch.as_words()
        assert words.shape == (SKETCH_WORDS,)
        assert FlowSketch.from_words(words).bitmap == bitmap

    def test_bad_word_count_rejected(self):
        with pytest.raises(SamplerError):
            FlowSketch.from_words(np.zeros(3, dtype=np.uint64))

    def test_array_or_merge_equals_flowsketch_merge(self, rng):
        """OR-reducing the word arrays across CPUs is exactly
        FlowSketch.merge folded over the same sketches."""
        cpus = 6
        sketches = []
        words = np.zeros((cpus, SKETCH_WORDS), dtype=np.uint64)
        for cpu in range(cpus):
            sketch = FlowSketch()
            for key in rng.integers(0, 1000, size=40):
                sketch.observe(int(key))
            sketches.append(sketch)
            words[cpu] = sketch.as_words()
        folded = sketches[0]
        for other in sketches[1:]:
            folded = folded.merge(other)
        merged = FlowSketch.from_words(np.bitwise_or.reduce(words, axis=0))
        assert merged.bitmap == folded.bitmap
        assert merged.estimate() == folded.estimate()

    def test_vectorized_estimates_match_scalar(self):
        """linear_counting_estimates is the single estimator: the scalar
        FlowSketch.estimate must equal it for every possible zero count."""
        for bits_set in range(SKETCH_BITS + 1):
            bitmap = (1 << bits_set) - 1
            scalar = FlowSketch(bitmap).estimate()
            vector = float(linear_counting_estimates(SKETCH_BITS - bits_set))
            assert scalar == vector
