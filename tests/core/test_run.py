"""Tests for the run data model and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core.run import MillisamplerRun, RunMetadata, SyncRun
from repro.errors import AnalysisError, StorageError
from tests.conftest import BURSTY, FULL_BUCKET, QUIET, make_run, make_sync_run


class TestMillisamplerRun:
    def test_mismatched_series_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            MillisamplerRun(
                meta=RunMetadata(host="h"),
                in_bytes=np.zeros(5),
                out_bytes=np.zeros(5),
                in_retx_bytes=np.zeros(4),
                out_retx_bytes=np.zeros(5),
                in_ecn_bytes=np.zeros(5),
                conn_estimate=np.zeros(5),
            )

    def test_empty_factory(self):
        run = MillisamplerRun.empty(RunMetadata(host="h"), buckets=7)
        assert run.buckets == 7
        assert run.in_bytes.sum() == 0

    def test_duration_and_end_time(self):
        run = make_run([0] * 100, start_time=2.0)
        assert run.duration == pytest.approx(0.1)
        assert run.end_time == pytest.approx(2.1)

    def test_timestamps(self):
        run = make_run([0, 0, 0], start_time=1.0)
        assert run.timestamps().tolist() == pytest.approx([1.0, 1.001, 1.002])

    def test_utilization(self):
        run = make_run([FULL_BUCKET, FULL_BUCKET / 2, 0])
        assert run.ingress_utilization().tolist() == pytest.approx([1.0, 0.5, 0.0])

    def test_bursty_mask_uses_50pct_threshold(self):
        run = make_run([BURSTY, QUIET, 0.51 * FULL_BUCKET, 0.5 * FULL_BUCKET])
        assert run.bursty_mask().tolist() == [True, False, True, False]

    def test_slice(self):
        run = make_run([1, 2, 3, 4, 5], start_time=0.0)
        part = run.slice(1, 4)
        assert part.in_bytes.tolist() == [2, 3, 4]
        assert part.meta.start_time == pytest.approx(0.001)

    def test_slice_out_of_range(self):
        run = make_run([1, 2, 3])
        with pytest.raises(AnalysisError):
            run.slice(1, 4)
        with pytest.raises(AnalysisError):
            run.slice(-1, 2)

    def test_record_roundtrip(self):
        run = make_run([1.0, 2.5, 3.0], retx=[0, 1, 0], conns=[5, 6, 7])
        restored = MillisamplerRun.from_record(run.to_record())
        assert restored.meta == run.meta
        np.testing.assert_allclose(restored.in_bytes, run.in_bytes)
        np.testing.assert_allclose(restored.in_retx_bytes, run.in_retx_bytes)
        np.testing.assert_allclose(restored.conn_estimate, run.conn_estimate)

    def test_compressed_roundtrip(self):
        run = make_run(np.arange(2000, dtype=float))
        blob = run.to_compressed()
        restored = MillisamplerRun.from_compressed(blob)
        np.testing.assert_allclose(restored.in_bytes, run.in_bytes)

    def test_compression_actually_compresses(self):
        run = make_run(np.zeros(2000))
        assert len(run.to_compressed()) < 2000

    def test_corrupt_blob_rejected(self):
        with pytest.raises(StorageError):
            MillisamplerRun.from_compressed(b"not-zlib")

    def test_malformed_record_rejected(self):
        with pytest.raises(StorageError):
            MillisamplerRun.from_record({"meta": {}})

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=1, max_size=64
        )
    )
    @settings(max_examples=30)
    def test_roundtrip_preserves_volume(self, values):
        run = make_run(values)
        restored = MillisamplerRun.from_compressed(run.to_compressed())
        assert restored.in_bytes.sum() == pytest.approx(run.in_bytes.sum())


class TestSyncRun:
    def test_requires_runs(self):
        with pytest.raises(AnalysisError):
            SyncRun(rack="r", region="RegA", runs=[])

    def test_requires_equal_buckets(self):
        with pytest.raises(AnalysisError):
            make_sync_run([[1, 2, 3], [1, 2]])

    def test_requires_equal_intervals(self):
        a = make_run([1, 2])
        b = make_run([1, 2], sampling_interval=units.ms(10))
        with pytest.raises(AnalysisError):
            SyncRun(rack="r", region="RegA", runs=[a, b])

    def test_contention_series_counts_simultaneous_bursts(self):
        sync = make_sync_run(
            [
                [BURSTY, BURSTY, QUIET],
                [BURSTY, QUIET, QUIET],
                [QUIET, BURSTY, QUIET],
            ]
        )
        assert sync.contention_series().tolist() == [2, 2, 0]

    def test_bursty_matrix_shape(self):
        sync = make_sync_run([[BURSTY, QUIET]] * 4)
        assert sync.bursty_matrix().shape == (4, 2)

    def test_properties(self):
        sync = make_sync_run([[1, 2, 3], [4, 5, 6]])
        assert sync.servers == 2
        assert sync.buckets == 3
        assert sync.duration == pytest.approx(0.003)
