"""Tests for the Millisampler tc-filter state machine."""

from dataclasses import dataclass

import pytest

from repro.core.millisampler import (
    CostModel,
    Direction,
    Millisampler,
    PacketObservation,
    SamplerState,
)
from repro.core.run import RunMetadata
from repro.errors import SamplerError


def make_sampler(**kwargs) -> Millisampler:
    defaults = dict(
        meta=RunMetadata(host="h0", rack="r0", region="RegA"),
        sampling_interval=1e-3,
        buckets=10,
        cpus=2,
    )
    defaults.update(kwargs)
    return Millisampler(**defaults)


def obs(time, size=1000, direction=Direction.INGRESS, **kwargs) -> PacketObservation:
    return PacketObservation(
        time=time, direction=direction, size=size, flow_key=("f", 0), **kwargs
    )


class TestLifecycle:
    def test_initial_state_detached(self):
        assert make_sampler().state is SamplerState.DETACHED

    def test_attach_enable_cycle(self):
        sampler = make_sampler()
        sampler.attach()
        assert sampler.state is SamplerState.DISABLED
        sampler.enable()
        assert sampler.enabled

    def test_cannot_enable_detached(self):
        with pytest.raises(SamplerError):
            make_sampler().enable()

    def test_cannot_double_attach(self):
        sampler = make_sampler()
        sampler.attach()
        with pytest.raises(SamplerError):
            sampler.attach()

    def test_cannot_detach_mid_run(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        with pytest.raises(SamplerError):
            sampler.detach()

    def test_detached_filter_rejects_packets(self):
        with pytest.raises(SamplerError):
            make_sampler().observe(obs(0.0))

    def test_disabled_filter_fast_path(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.observe(obs(0.0))
        assert sampler.stats.packets_skipped_disabled == 1
        assert sampler.stats.packets_processed == 0


class TestRunRecording:
    def test_first_packet_sets_start_time(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        assert sampler.start_time is None
        sampler.observe(obs(5.0))
        assert sampler.start_time == 5.0

    def test_bucket_assignment(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(1.0, size=100))  # bucket 0
        sampler.observe(obs(1.0005, size=200))  # still bucket 0
        sampler.observe(obs(1.0031, size=300))  # bucket 3
        sampler.finish(now=1.1)
        run = sampler.read_run()
        assert run.in_bytes[0] == 300
        assert run.in_bytes[3] == 300

    def test_packet_past_window_clears_enabled_flag(self):
        sampler = make_sampler(buckets=5)
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0))
        sampler.observe(obs(0.0051))  # past bucket 4
        assert not sampler.enabled
        assert sampler.stats.runs_completed == 1

    def test_overflow_packet_not_counted(self):
        sampler = make_sampler(buckets=5)
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0, size=100))
        sampler.observe(obs(0.0060, size=999))
        run = sampler.read_run()
        assert run.in_bytes.sum() == 100

    def test_directions_and_flags(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0, size=100, direction=Direction.INGRESS))
        sampler.observe(obs(0.0, size=50, direction=Direction.INGRESS, ecn_marked=True))
        sampler.observe(obs(0.0, size=30, direction=Direction.INGRESS, retransmit=True))
        sampler.observe(obs(0.0, size=70, direction=Direction.EGRESS))
        sampler.observe(obs(0.0, size=20, direction=Direction.EGRESS, retransmit=True))
        sampler.finish(now=1.0)
        run = sampler.read_run()
        assert run.in_bytes[0] == 180
        assert run.in_ecn_bytes[0] == 50
        assert run.in_retx_bytes[0] == 30
        assert run.out_bytes[0] == 90
        assert run.out_retx_bytes[0] == 20

    def test_flow_counting_per_bucket(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        for i in range(5):
            sampler.observe(
                PacketObservation(
                    time=0.0, direction=Direction.INGRESS, size=10, flow_key=f"f{i}"
                )
            )
        sampler.finish(now=1.0)
        run = sampler.read_run()
        assert 4 <= run.conn_estimate[0] <= 6
        assert run.conn_estimate[1] == 0

    def test_flow_counting_disabled(self):
        sampler = make_sampler(count_flows=False)
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0))
        sampler.finish(now=1.0)
        run = sampler.read_run()
        assert run.conn_estimate.sum() == 0

    def test_non_monotonic_clock_rejected(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(5.0))
        with pytest.raises(SamplerError):
            sampler.observe(obs(4.9))

    def test_cannot_read_mid_run(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0))
        with pytest.raises(SamplerError):
            sampler.read_run()

    def test_finish_before_window_elapsed_rejected(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0))
        with pytest.raises(SamplerError):
            sampler.finish(now=0.005)

    def test_per_cpu_counters_merge(self):
        sampler = make_sampler(cpus=4)
        sampler.attach()
        sampler.enable()
        for cpu in range(4):
            sampler.observe(obs(0.0, size=25, cpu=cpu))
        sampler.finish(now=1.0)
        assert sampler.read_run().in_bytes[0] == 100

    def test_second_run_after_first(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0, size=10))
        sampler.finish(now=1.0)
        first = sampler.read_run()
        sampler.enable()
        sampler.observe(obs(2.0, size=20))
        sampler.finish(now=3.0)
        second = sampler.read_run()
        assert first.in_bytes[0] == 10
        assert second.in_bytes[0] == 20
        assert second.meta.start_time == 2.0


class TestCostModel:
    def test_breakeven_near_paper(self):
        """Paper: Millisampler beats tcpdump after ~33,000 packets."""
        assert 30_000 <= CostModel().breakeven_packets() <= 36_000

    def test_run_cost_components(self):
        model = CostModel()
        assert model.run_cost_ns(0) == (model.map_read_ms + model.attach_detach_ms) * 1e6
        assert model.run_cost_ns(100) - model.run_cost_ns(0) == 100 * 88.0

    def test_no_flow_counting_is_cheaper(self):
        model = CostModel()
        assert model.run_cost_ns(1000, count_flows=False) < model.run_cost_ns(1000)

    def test_impossible_breakeven_rejected(self):
        model = CostModel(per_packet_full_ns=300.0)
        with pytest.raises(SamplerError):
            model.breakeven_packets()

    def test_memory_footprint_near_paper(self):
        """Paper: ~3.6 MB average in-kernel footprint."""
        sampler = make_sampler(cpus=26, buckets=2000)
        footprint_mb = sampler.memory_footprint_bytes / (1024 * 1024)
        assert 2.0 < footprint_mb < 5.0

    def test_cpu_accounting_accumulates(self):
        sampler = make_sampler()
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0))
        assert sampler.stats.cpu_ns == pytest.approx(88.0)
        sampler.finish(1.0)
        sampler.read_run()
        assert sampler.stats.cpu_ns == pytest.approx(88.0 + 4.3e6)


@dataclass(frozen=True)
class _PodMetadata(RunMetadata):
    """RunMetadata extended the way a deployment might (regression rig)."""

    pod: str = ""


class TestReadRunMetadata:
    def test_read_run_preserves_extended_metadata(self):
        """read_run must flow every metadata field through one
        construction path: hand-copying fields silently dropped anything
        a RunMetadata extension carries (and its type)."""
        meta = _PodMetadata(host="h0", rack="r0", region="RegA", task="web/1", pod="pod7")
        sampler = make_sampler(meta=meta)
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(5.0, size=100))
        sampler.finish(now=6.0)
        run = sampler.read_run()
        assert isinstance(run.meta, _PodMetadata)
        assert run.meta.pod == "pod7"
        assert run.meta.task == "web/1"
        assert run.meta.start_time == 5.0

    def test_read_run_applies_sampler_interval_override(self):
        """The sampler's configured interval wins over the template's."""
        meta = RunMetadata(host="h0", sampling_interval=123.0)
        sampler = make_sampler(meta=meta, sampling_interval=2e-3)
        sampler.attach()
        sampler.enable()
        sampler.observe(obs(0.0, size=100))
        sampler.finish(now=1.0)
        assert sampler.read_run().meta.sampling_interval == 2e-3
