"""Tests for units, conversions, and configuration validation."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.config import BufferConfig, FleetConfig, RackConfig, SamplerConfig
from repro.errors import ConfigError


class TestUnits:
    def test_time_conversions(self):
        assert units.ms(1) == 1e-3
        assert units.us(100) == pytest.approx(100e-6)
        assert units.seconds_to_ms(0.002) == pytest.approx(2.0)
        assert units.DAY == 86400

    def test_data_conversions(self):
        assert units.kb(1) == 1024
        assert units.mb(1) == 1024 * 1024

    def test_rate_conversions(self):
        assert units.gbps(8) == 1e9  # 8 Gb/s = 1 GB/s
        assert units.mbps(8) == 1e6
        assert units.bytes_per_ms(units.gbps(12.5)) == pytest.approx(1_562_500)

    def test_utilization(self):
        line = units.gbps(12.5)
        assert units.utilization(line * 1e-3, 1e-3, line) == pytest.approx(1.0)
        assert units.utilization(0, 1e-3, line) == 0.0

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            units.utilization(1, 0, 1)
        with pytest.raises(ValueError):
            units.utilization(1, 1, 0)

    def test_paper_constants(self):
        """Section 3's rack profile is encoded exactly."""
        assert units.SERVER_LINK_RATE == units.gbps(12.5)
        assert units.TOR_BUFFER_BYTES == units.mb(16)
        assert units.QUADRANT_BYTES == units.mb(4)
        assert units.SHARED_QUADRANT_BYTES == units.mb(3.6)
        assert units.DEFAULT_ALPHA == 1.0
        assert units.ECN_THRESHOLD_BYTES == units.kb(120)
        assert units.MILLISAMPLER_BUCKETS == 2000
        assert units.BURST_UTILIZATION_THRESHOLD == 0.5
        assert units.SERVERS_PER_RACK == 92


class TestBufferConfig:
    def test_defaults_match_paper(self):
        config = BufferConfig()
        assert config.shared_bytes == units.SHARED_QUADRANT_BYTES
        assert config.alpha == 1.0
        # Dedicated + shared = one 4 MB quadrant.
        assert config.dedicated_bytes_per_queue + config.shared_bytes == pytest.approx(
            units.QUADRANT_BYTES
        )

    def test_saturated_limit_formula(self):
        config = BufferConfig(alpha=1.0)
        assert config.saturated_queue_limit(1) == pytest.approx(config.shared_bytes / 2)
        assert config.saturated_queue_limit(2) == pytest.approx(config.shared_bytes / 3)

    def test_zero_queues_full_alpha_share(self):
        config = BufferConfig(alpha=0.5)
        assert config.saturated_queue_limit(0) == 0.5 * config.shared_bytes

    def test_share_fraction_decreasing(self):
        config = BufferConfig()
        shares = [config.queue_share_fraction(s) for s in range(1, 20)]
        assert shares == sorted(shares, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BufferConfig(shared_bytes=0)
        with pytest.raises(ConfigError):
            BufferConfig(alpha=0)
        with pytest.raises(ConfigError):
            BufferConfig(dedicated_bytes_per_queue=-1)
        config = BufferConfig()
        with pytest.raises(ConfigError):
            config.saturated_queue_limit(-1)

    @given(alpha=st.floats(0.1, 8.0), queues=st.integers(1, 50))
    def test_fixed_point_identity(self, alpha, queues):
        """T = alpha*(B - S*T) must hold at the saturated limit."""
        config = BufferConfig(alpha=alpha)
        limit = config.saturated_queue_limit(queues)
        assert limit == pytest.approx(
            alpha * (config.shared_bytes - queues * limit), rel=1e-9
        )


class TestOtherConfigs:
    def test_rack_defaults(self):
        rack = RackConfig()
        assert rack.servers == 92
        assert rack.server_link_rate == units.gbps(12.5)

    def test_rack_validation(self):
        with pytest.raises(ConfigError):
            RackConfig(servers=0)
        with pytest.raises(ConfigError):
            RackConfig(rtt=0)

    def test_sampler_duration(self):
        config = SamplerConfig(sampling_interval=1e-3, buckets=2000)
        assert config.duration == pytest.approx(2.0)

    def test_sampler_validation(self):
        with pytest.raises(ConfigError):
            SamplerConfig(buckets=0)
        with pytest.raises(ConfigError):
            SamplerConfig(sampling_interval=0)

    def test_fleet_validation(self):
        # Zero racks/runs are valid degenerate scales (an empty
        # region-day); only negatives are rejected.
        assert FleetConfig(racks_per_region=0).racks_per_region == 0
        assert FleetConfig(runs_per_rack=0).runs_per_rack == 0
        with pytest.raises(ConfigError):
            FleetConfig(racks_per_region=-1)
        with pytest.raises(ConfigError):
            FleetConfig(runs_per_rack=-1)
        with pytest.raises(ConfigError):
            FleetConfig(hours=25)
