"""Tests for host-local run storage."""

import numpy as np
import pytest

from repro import units
from repro.core.storage import HostRunStore
from repro.errors import StorageError
from tests.conftest import make_run


class TestHostRunStore:
    def test_store_and_load(self):
        store = HostRunStore("h0")
        run = make_run([1, 2, 3], start_time=100.0)
        store.store(run)
        loaded = store.load(100.0)
        np.testing.assert_allclose(loaded.in_bytes, run.in_bytes)

    def test_wrong_host_rejected(self):
        store = HostRunStore("h0")
        with pytest.raises(StorageError):
            store.store(make_run([1], host="other"))

    def test_missing_run_rejected(self):
        with pytest.raises(StorageError):
            HostRunStore("h0").load(1.0)

    def test_week_retention(self):
        store = HostRunStore("h0")
        store.store(make_run([1], start_time=0.0))
        store.store(make_run([2], start_time=3 * units.DAY))
        assert len(store) == 2
        # A store at day 8 prunes the day-0 run (> 7 days old).
        store.store(make_run([3], start_time=8 * units.DAY))
        assert 0.0 not in store
        assert 3 * units.DAY in store

    def test_explicit_prune_counts(self):
        store = HostRunStore("h0", retention=10.0)
        store.store(make_run([1], start_time=0.0))
        store.store(make_run([1], start_time=5.0))
        assert store.prune(now=14.0) == 1
        assert store.prune(now=14.0) == 0

    def test_start_times_sorted(self):
        store = HostRunStore("h0")
        for start in (5.0, 1.0, 3.0):
            store.store(make_run([1], start_time=start))
        assert store.start_times() == [1.0, 3.0, 5.0]

    def test_stored_bytes_tracks_compressed_size(self):
        store = HostRunStore("h0")
        assert store.stored_bytes == 0
        store.store(make_run(np.zeros(2000)))
        assert 0 < store.stored_bytes < 2000

    def test_invalid_retention_rejected(self):
        with pytest.raises(StorageError):
            HostRunStore("h0", retention=0)

    def test_disk_backed_roundtrip(self, tmp_path):
        directory = str(tmp_path / "runs")
        store = HostRunStore("h0", directory=directory)
        store.store(make_run([7, 8], start_time=2.0))
        # A fresh store over the same directory can read it back.
        fresh = HostRunStore("h0", directory=directory)
        loaded = fresh.load(2.0)
        assert loaded.in_bytes.tolist() == [7, 8]

    def test_disk_prune_removes_files(self, tmp_path):
        directory = str(tmp_path / "runs")
        store = HostRunStore("h0", retention=1.0, directory=directory)
        store.store(make_run([1], start_time=0.0))
        store.store(make_run([1], start_time=5.0))
        import os

        assert len(os.listdir(directory)) == 1
