"""Tests for the SyncMillisampler control plane."""

import numpy as np
import pytest

from repro.core.millisampler import Millisampler
from repro.core.run import RunMetadata
from repro.core.scheduler import RunScheduler
from repro.core.storage import HostRunStore
from repro.core.syncsampler import SampledHost, SyncMillisampler
from repro.errors import SamplerError
from tests.conftest import make_run


def make_host(name: str, buckets: int = 10) -> SampledHost:
    sampler = Millisampler(
        RunMetadata(host=name, rack="r0", region="RegA"),
        sampling_interval=1e-3,
        buckets=buckets,
        cpus=1,
    )
    scheduler = RunScheduler(period=60.0, run_duration=sampler.duration, first_start=1e9)
    return SampledHost(sampler=sampler, scheduler=scheduler, store=HostRunStore(name))


class TestSyncMillisampler:
    def test_request_needs_lead_time(self):
        sync = SyncMillisampler()
        hosts = [make_host("h0")]
        with pytest.raises(SamplerError):
            sync.request_collection(hosts, "r0", "RegA", start_time=0.005, now=0.0)

    def test_request_needs_hosts(self):
        with pytest.raises(SamplerError):
            SyncMillisampler().request_collection([], "r0", "RegA", 1.0, now=0.0)

    def test_collection_lifecycle(self):
        sync = SyncMillisampler()
        hosts = [make_host(f"h{i}") for i in range(3)]
        sync_id = sync.request_collection(hosts, "r0", "RegA", start_time=1.0, now=0.0)
        assert sync.pending_ids() == [sync_id]

        # Drive each host: poll at the start time to begin, feed packets,
        # poll after the window to harvest.
        from repro.core.millisampler import Direction, PacketObservation

        for host in hosts:
            host.poll(now=1.0)
            assert host.sampler.enabled
            host.sampler.observe(
                PacketObservation(
                    time=1.0, direction=Direction.INGRESS, size=500, flow_key="f"
                )
            )
        for host in hosts:
            host.poll(now=1.1)
        sync_run = sync.assemble(sync_id)
        assert sync_run.servers == 3
        assert sync_run.rack == "r0"
        assert sync.pending_ids() == []

    def test_assemble_unknown_id_rejected(self):
        with pytest.raises(SamplerError):
            SyncMillisampler().assemble("nope")

    def test_assemble_picks_sync_run_over_adjacent_periodic_run(self):
        """Regression: a *periodic* run that started just inside the
        50 ms clock-skew tolerance window must not be mistaken for the
        sync run.  The host's agent records which stored run answered
        the sync request, so assembly matches exactly."""
        from repro.core.millisampler import Direction, PacketObservation

        sync = SyncMillisampler()
        host = make_host("h0")
        sync_id = sync.request_collection(
            [host], "r0", "RegA", start_time=1.0, now=0.0
        )
        # A periodic run landed in the store 30 ms before the sync start
        # — inside the tolerance, so naive earliest-candidate selection
        # would pick it.
        periodic = make_run(np.ones(10), host="h0", start_time=0.97)
        host.store.store(periodic)

        host.poll(now=1.0)  # the sync run begins
        host.sampler.observe(
            PacketObservation(
                time=1.0002, direction=Direction.INGRESS, size=500, flow_key="f"
            )
        )
        host.poll(now=1.02)  # harvest

        sync_run = sync.assemble(sync_id)
        chosen = sync_run.runs[0]
        assert chosen.meta.start_time != periodic.meta.start_time
        assert chosen.meta.start_time == pytest.approx(1.0, abs=50e-3)
        assert chosen.in_bytes.sum() == 500

    def test_assemble_fallback_picks_nearest_candidate(self):
        """Runs stored outside the poll loop (replayed from disk) have
        no recorded sync id; the fallback picks the candidate nearest
        the requested start, not the earliest in the window."""
        sync = SyncMillisampler()
        host = make_host("h0")
        sync_id = sync.request_collection(
            [host], "r0", "RegA", start_time=1.0, now=0.0
        )
        host.store.store(make_run(np.ones(10), host="h0", start_time=0.97))
        host.store.store(make_run(np.full(10, 2.0), host="h0", start_time=1.0005))
        sync_run = sync.assemble(sync_id)
        assert sync_run.runs[0].meta.start_time == pytest.approx(1.0005)

    def test_assemble_synthesizes_zero_run_for_idle_host(self):
        """A host that saw no traffic contributes an all-zero run — an
        idle server is data (zero contention), not an error."""
        sync = SyncMillisampler()
        hosts = [make_host("h0")]
        sync_id = sync.request_collection(hosts, "r0", "RegA", start_time=1.0, now=0.0)
        sync_run = sync.assemble(sync_id)
        assert sync_run.servers == 1
        assert sync_run.runs[0].in_bytes.sum() == 0

    def test_assemble_from_runs_aligns(self):
        runs = [
            make_run(np.arange(10.0), host="h0", start_time=0.0),
            make_run(np.arange(10.0), host="h1", start_time=0.0004),
        ]
        sync_run = SyncMillisampler.assemble_from_runs("r0", "RegA", runs, hour=7)
        assert sync_run.hour == 7
        assert len({r.buckets for r in sync_run.runs}) == 1

    def test_lead_must_cover_run_duration(self):
        with pytest.raises(SamplerError):
            SyncMillisampler(lead_runs=0.5)


class TestSampledHostPolling:
    def test_idle_run_force_finished_and_stored(self):
        host = make_host("h0")
        host.scheduler.request_sync_run(start_time=1.0, sync_id="s", now=0.0)
        host.poll(now=1.0)
        from repro.core.millisampler import Direction, PacketObservation

        host.sampler.observe(
            PacketObservation(time=1.0, direction=Direction.INGRESS, size=10, flow_key="f")
        )
        # Window is 10 ms; poll at 1.02 must finish, store, and detach.
        host.poll(now=1.02)
        assert len(host.store) == 1
        assert host.sampler.state.value == "detached"

    def test_no_traffic_run_not_stored(self):
        """A run that never saw a packet has no start time; polling
        should not store a phantom run."""
        host = make_host("h0")
        host.scheduler.request_sync_run(start_time=1.0, sync_id="s", now=0.0)
        host.poll(now=1.0)
        host.poll(now=2.0)
        assert len(host.store) == 0
