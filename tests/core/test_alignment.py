"""Tests for run trimming and interpolation (SyncMillisampler alignment)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alignment import align_runs, common_window, resample_run, trim_to_common_window
from repro.errors import AnalysisError
from tests.conftest import make_run


class TestCommonWindow:
    def test_basic_overlap(self):
        runs = [
            make_run([1] * 10, start_time=0.000),
            make_run([1] * 10, start_time=0.003),
        ]
        start, end = common_window(runs)
        assert start == pytest.approx(0.003)
        assert end == pytest.approx(0.010)

    def test_no_overlap_rejected(self):
        runs = [
            make_run([1] * 5, start_time=0.0),
            make_run([1] * 5, start_time=1.0),
        ]
        with pytest.raises(AnalysisError):
            common_window(runs)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            common_window([])


class TestResample:
    def test_aligned_resample_is_identity(self):
        run = make_run([1.0, 2.0, 3.0, 4.0], start_time=0.0)
        resampled = resample_run(run, start=0.0, buckets=4)
        np.testing.assert_allclose(resampled.in_bytes, run.in_bytes)

    def test_half_bucket_shift_conserves_volume(self):
        run = make_run([10.0, 20.0, 30.0, 40.0], start_time=0.0)
        resampled = resample_run(run, start=0.0005, buckets=3)
        # The interior of the run is fully covered, so interpolated
        # cumulative volume over 3 buckets equals the exact integral.
        assert resampled.in_bytes.sum() == pytest.approx(
            np.interp(0.0035, [0, 0.001, 0.002, 0.003, 0.004], [0, 10, 30, 60, 100])
            - np.interp(0.0005, [0, 0.001, 0.002, 0.003, 0.004], [0, 10, 30, 60, 100])
        )

    def test_resample_beyond_source_rejected(self):
        run = make_run([1.0, 2.0], start_time=0.0)
        with pytest.raises(AnalysisError):
            resample_run(run, start=0.001, buckets=3)

    def test_conn_estimate_interpolated_not_summed(self):
        run = make_run([0, 0, 0, 0], conns=[10, 20, 30, 40])
        resampled = resample_run(run, start=0.0005, buckets=3)
        assert resampled.conn_estimate[0] == pytest.approx(15.0)

    @given(
        offset_us=st.integers(0, 999),
        values=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=4,
            max_size=20,
        ),
    )
    @settings(max_examples=40)
    def test_interior_volume_conserved(self, offset_us, values):
        """Resampling onto a shifted grid conserves cumulative volume
        over the covered interval (within float tolerance)."""
        run = make_run(values, start_time=0.0)
        offset = offset_us * 1e-6
        buckets = len(values) - 1
        resampled = resample_run(run, start=offset, buckets=buckets)
        edges = np.arange(len(values) + 1) * 1e-3
        cumulative = np.concatenate([[0], np.cumsum(values)])
        expected = np.interp(offset + buckets * 1e-3, edges, cumulative) - np.interp(
            offset, edges, cumulative
        )
        assert resampled.in_bytes.sum() == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestTrim:
    def test_trim_to_common_window(self):
        runs = [
            make_run([1] * 10, start_time=0.000),
            make_run([1] * 10, start_time=0.002),
        ]
        trimmed = trim_to_common_window(runs)
        assert all(run.buckets == 8 for run in trimmed)

    def test_trim_equal_starts_noop(self):
        runs = [make_run([1] * 5), make_run([2] * 5)]
        trimmed = trim_to_common_window(runs)
        assert all(run.buckets == 5 for run in trimmed)


class TestAlignRuns:
    def test_aligned_output_uniform(self):
        runs = [
            make_run(np.arange(10, dtype=float), start_time=0.0),
            make_run(np.arange(10, dtype=float), start_time=0.0004),
            make_run(np.arange(10, dtype=float), start_time=0.0007),
        ]
        aligned = align_runs(runs)
        starts = {run.meta.start_time for run in aligned}
        buckets = {run.buckets for run in aligned}
        assert len(starts) == 1
        assert len(buckets) == 1
        # Average trimmed length shrinks by at most the max offset.
        assert aligned[0].buckets == 9

    def test_mixed_intervals_rejected(self):
        runs = [
            make_run([1] * 5),
            make_run([1] * 5, sampling_interval=10e-3),
        ]
        with pytest.raises(AnalysisError):
            align_runs(runs)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            align_runs([])

    def test_sub_bucket_offsets_preserve_burst_alignment(self):
        """A synchronized burst lands in the same aligned bucket even
        when host clocks differ by a fraction of the sampling interval
        (the Section 4.5 property)."""
        burst = np.zeros(20)
        burst[10] = 1e6
        runs = [
            make_run(burst, start_time=0.0),
            make_run(burst, start_time=0.0003),  # clock offset 300us
        ]
        aligned = align_runs(runs)
        peaks = [int(np.argmax(run.in_bytes)) for run in aligned]
        assert abs(peaks[0] - peaks[1]) <= 1


class TestBucketCountFloatError:
    """int() truncation of (end - start) / interval dropped buckets.

    Start times are sums of float intervals, so an exactly-N-bucket
    common window can compute as N - epsilon; both cases below fail on
    the pre-fix code (87 -> 86, and a valid 1-bucket overlap raising).
    """

    def test_exact_window_keeps_final_bucket(self):
        # (0.11 - 0.023) / 0.001 == 86.99999999999999 in binary floats.
        runs = [
            make_run([1.0] * 100, start_time=0.010),
            make_run([1.0] * 100, start_time=0.023),
        ]
        start, end = common_window(runs)
        assert (end - start) / 0.001 < 87  # the float hazard is present
        aligned = align_runs(runs)
        assert all(run.buckets == 87 for run in aligned)

    def test_one_bucket_overlap_is_valid(self):
        # Window (0.010, 0.011): exactly one bucket, but the float ratio
        # computes as 0.9999999999999991 and used to raise.
        runs = [
            make_run([1.0], start_time=0.010),
            make_run([1.0] * 11, start_time=0.0),
        ]
        start, end = common_window(runs)
        assert (end - start) / 0.001 < 1  # the float hazard is present
        aligned = align_runs(runs)
        assert all(run.buckets == 1 for run in aligned)


class TestConnEstimateEdgeClamp:
    """np.interp clamps conn_estimate at the half-bucket edges.

    When a new center falls (within tolerance) outside the old centers,
    the first/last observed estimate is held flat.  Pinned so a future
    refactor does not turn the edges into NaN or extrapolation.
    """

    def test_leading_edge_clamps_to_first_estimate(self):
        run = make_run([0.0] * 4, conns=[10.0, 20.0, 30.0, 40.0], start_time=0.0)
        # A start a hair before the run (inside the resample tolerance)
        # puts the first new center before the first old center.
        resampled = resample_run(run, start=-1e-13, buckets=4)
        assert np.all(np.isfinite(resampled.conn_estimate))
        assert resampled.conn_estimate[0] == 10.0  # clamped, not extrapolated (< 10)

    def test_trailing_edge_clamps_to_last_estimate(self):
        run = make_run([0.0] * 4, conns=[10.0, 20.0, 30.0, 40.0], start_time=0.0)
        # A start a hair after the run start pushes the last new center
        # past the last old center.
        resampled = resample_run(run, start=1e-13, buckets=4)
        assert np.all(np.isfinite(resampled.conn_estimate))
        assert resampled.conn_estimate[-1] == 40.0  # clamped, not extrapolated (> 40)

    def test_interior_still_interpolated(self):
        run = make_run([0.0] * 4, conns=[10.0, 20.0, 30.0, 40.0], start_time=0.0)
        resampled = resample_run(run, start=-1e-13, buckets=4)
        assert resampled.conn_estimate[1] == pytest.approx(20.0)
        assert resampled.conn_estimate[2] == pytest.approx(30.0)
