"""Tests for the periodic run scheduler with sync priority."""

import pytest

from repro.core.scheduler import RunScheduler, ScheduledRun
from repro.errors import SamplerError


class TestRunScheduler:
    def test_periodic_runs_on_cadence(self):
        scheduler = RunScheduler(period=10.0, run_duration=2.0, first_start=0.0)
        first = scheduler.next_run(now=0.0)
        assert first is not None and first.start_time == 0.0
        assert scheduler.next_run(now=5.0) is None
        second = scheduler.next_run(now=10.0)
        assert second is not None and second.start_time == 10.0

    def test_runs_never_overlap(self):
        scheduler = RunScheduler(period=10.0, run_duration=9.0)
        assert scheduler.next_run(now=0.0) is not None
        assert scheduler.busy_until == 9.0

    def test_sync_run_priority_over_periodic(self):
        scheduler = RunScheduler(period=10.0, run_duration=2.0, first_start=10.0)
        scheduler.request_sync_run(start_time=11.0, sync_id="s1", now=0.0)
        # At t=10 the periodic run would overlap the sync run; it yields.
        due = scheduler.next_run(now=10.0)
        assert due is None
        sync = scheduler.next_run(now=11.0)
        assert sync is not None and sync.is_sync and sync.sync_id == "s1"

    def test_sync_must_be_in_future(self):
        scheduler = RunScheduler(period=10.0, run_duration=2.0)
        with pytest.raises(SamplerError):
            scheduler.request_sync_run(start_time=5.0, sync_id="s", now=5.0)

    def test_sync_conflicting_with_active_run_rejected(self):
        scheduler = RunScheduler(period=10.0, run_duration=5.0, first_start=0.0)
        scheduler.next_run(now=0.0)  # busy until 5
        with pytest.raises(SamplerError):
            scheduler.request_sync_run(start_time=3.0, sync_id="s", now=1.0)

    def test_pending_sync_runs_listed(self):
        scheduler = RunScheduler(period=10.0, run_duration=1.0, first_start=100.0)
        scheduler.request_sync_run(start_time=20.0, sync_id="a", now=0.0)
        scheduler.request_sync_run(start_time=30.0, sync_id="b", now=0.0)
        pending = scheduler.pending_sync_runs()
        assert [entry.sync_id for entry in pending] == ["a", "b"]

    def test_run_duration_cannot_exceed_period(self):
        with pytest.raises(SamplerError):
            RunScheduler(period=1.0, run_duration=2.0)

    def test_invalid_parameters(self):
        with pytest.raises(SamplerError):
            RunScheduler(period=0, run_duration=1)
        with pytest.raises(SamplerError):
            RunScheduler(period=1, run_duration=0)

    def test_skipped_periodic_resumes_after_sync(self):
        scheduler = RunScheduler(period=10.0, run_duration=2.0, first_start=10.0)
        scheduler.request_sync_run(start_time=11.0, sync_id="s", now=0.0)
        assert scheduler.next_run(now=10.0) is None
        sync = scheduler.next_run(now=11.0)
        assert sync is not None and sync.is_sync
        # The next periodic run (t=20) still fires normally.
        later = scheduler.next_run(now=20.0)
        assert later is not None and not later.is_sync

    def test_scheduled_run_ordering(self):
        early = ScheduledRun(start_time=1.0, priority=1)
        late = ScheduledRun(start_time=2.0, priority=0)
        assert early < late
        tie_sync = ScheduledRun(start_time=1.0, priority=0)
        assert tie_sync < early
