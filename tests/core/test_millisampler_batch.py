"""Vectorized sampler fast path: observe_batch vs the scalar loop.

``observe_batch`` must be indistinguishable from calling ``observe``
per packet in array order — same counters, same sketch bitmaps, same
state transitions, same stats — including the awkward case where the
run completes in the middle of a batch.
"""

import numpy as np
import pytest

from repro.core.millisampler import (
    Direction,
    Millisampler,
    PacketObservation,
    SamplerState,
)
from repro.core.run import RunMetadata
from repro.core.sketch import hash_flow_keys
from repro.errors import SamplerError


def make_pair(count_flows=True, buckets=50, cpus=4):
    """Two identical enabled samplers: one fed scalars, one the batch."""
    samplers = []
    for _ in range(2):
        sampler = Millisampler(
            RunMetadata(host="h", region="RegA"),
            sampling_interval=1e-3,
            buckets=buckets,
            cpus=cpus,
            count_flows=count_flows,
        )
        sampler.attach()
        sampler.enable()
        samplers.append(sampler)
    return samplers


def random_packets(rng, count, horizon):
    return dict(
        times=np.sort(rng.uniform(0, horizon, count)),
        sizes=rng.integers(0, 65536, count),
        directions=rng.random(count) < 0.6,
        cpus=rng.integers(0, 11, count),  # > sampler cpus: exercises modulo
        ecn_marked=rng.random(count) < 0.1,
        retransmit=rng.random(count) < 0.05,
        keys=rng.integers(0, 400, count),
    )


def feed_scalar(sampler, p):
    for i in range(len(p["times"])):
        sampler.observe(
            PacketObservation(
                time=float(p["times"][i]),
                direction=Direction.INGRESS if p["directions"][i] else Direction.EGRESS,
                size=int(p["sizes"][i]),
                flow_key=int(p["keys"][i]),
                cpu=int(p["cpus"][i]),
                ecn_marked=bool(p["ecn_marked"][i]),
                retransmit=bool(p["retransmit"][i]),
            )
        )


def feed_batch(sampler, p):
    sampler.observe_batch(
        p["times"],
        p["sizes"],
        p["directions"],
        p["cpus"],
        p["ecn_marked"],
        p["retransmit"],
        flow_bits=hash_flow_keys(p["keys"]) if sampler.count_flows else None,
    )


def assert_samplers_equal(scalar, batch):
    assert scalar.state is batch.state
    assert scalar.stats == batch.stats
    assert np.array_equal(scalar._sketch_words, batch._sketch_words)
    if scalar.state is not SamplerState.ENABLED and scalar.start_time is not None:
        a, b = scalar.read_run(), batch.read_run()
        for field in (
            "in_bytes",
            "out_bytes",
            "in_retx_bytes",
            "out_retx_bytes",
            "in_ecn_bytes",
            "conn_estimate",
        ):
            assert np.array_equal(getattr(a, field), getattr(b, field)), field


class TestBatchEquivalence:
    @pytest.mark.parametrize("count_flows", [True, False])
    def test_completion_mid_batch(self, rng, count_flows):
        """Packets past the window flip the filter to DISABLED exactly
        where the scalar loop would, and the tail is accounted as
        disabled-path skips."""
        scalar, batch = make_pair(count_flows=count_flows)
        p = random_packets(rng, 4000, horizon=0.065)  # past the 50 ms window
        feed_scalar(scalar, p)
        feed_batch(batch, p)
        assert scalar.state is SamplerState.DISABLED
        assert_samplers_equal(scalar, batch)

    def test_all_in_window_stays_enabled(self, rng):
        scalar, batch = make_pair()
        p = random_packets(rng, 500, horizon=0.049)
        feed_scalar(scalar, p)
        feed_batch(batch, p)
        assert batch.state is SamplerState.ENABLED
        assert_samplers_equal(scalar, batch)

    def test_chunked_batches_equal_one_batch(self, rng):
        """Splitting a stream across observe_batch calls is associative."""
        whole, chunked = make_pair()
        p = random_packets(rng, 3000, horizon=0.07)
        feed_batch(whole, p)
        for lo in range(0, 3000, 700):
            hi = min(lo + 700, 3000)
            chunk = {
                k: v[lo:hi] for k, v in p.items()
            }
            feed_batch(chunked, chunk)
        assert_samplers_equal(whole, chunked)

    def test_disabled_sampler_counts_batch_as_skipped(self):
        scalar, batch = make_pair()
        # Complete both runs first.
        done = dict(
            times=np.array([0.0, 10.0]),
            sizes=np.array([100, 100]),
            directions=np.array([True, True]),
            cpus=np.zeros(2, dtype=np.int64),
            ecn_marked=np.zeros(2, dtype=bool),
            retransmit=np.zeros(2, dtype=bool),
            keys=np.array([1, 1]),
        )
        feed_batch(scalar, done)
        feed_batch(batch, done)
        before = batch.stats.packets_skipped_disabled
        p = random_packets(np.random.default_rng(0), 100, horizon=0.01)
        feed_scalar(scalar, p)
        feed_batch(batch, p)
        assert batch.stats.packets_skipped_disabled == before + 100
        assert scalar.stats == batch.stats

    def test_empty_batch_is_a_noop(self):
        _, batch = make_pair()
        empty = np.zeros(0)
        batch.observe_batch(empty, empty, np.zeros(0, dtype=bool))
        assert batch.stats.packets_processed == 0
        assert batch.state is SamplerState.ENABLED

    def test_first_packet_sets_start_time(self):
        _, batch = make_pair()
        batch.observe_batch(
            np.array([3.5, 3.51]),
            np.array([100, 200]),
            np.array([True, False]),
            flow_bits=np.array([0, 1]),
        )
        assert batch.start_time == 3.5


class TestBatchValidation:
    def test_detached_rejected(self):
        sampler = Millisampler(RunMetadata(host="h"))
        with pytest.raises(SamplerError):
            sampler.observe_batch(np.zeros(1), np.zeros(1), np.zeros(1, dtype=bool))

    def test_length_mismatch_rejected(self):
        _, batch = make_pair()
        with pytest.raises(SamplerError):
            batch.observe_batch(np.zeros(3), np.zeros(2), np.zeros(3, dtype=bool))

    def test_negative_size_rejected(self):
        _, batch = make_pair()
        with pytest.raises(SamplerError):
            batch.observe_batch(
                np.zeros(1), np.array([-5]), np.ones(1, dtype=bool), flow_bits=np.array([0])
            )

    def test_missing_flow_bits_rejected(self):
        _, batch = make_pair(count_flows=True)
        with pytest.raises(SamplerError):
            batch.observe_batch(np.zeros(1), np.ones(1), np.ones(1, dtype=bool))

    def test_flow_bits_out_of_range_rejected(self):
        _, batch = make_pair()
        with pytest.raises(SamplerError):
            batch.observe_batch(
                np.zeros(1), np.ones(1), np.ones(1, dtype=bool), flow_bits=np.array([128])
            )

    def test_non_monotonic_clock_rejected(self):
        _, batch = make_pair()
        with pytest.raises(SamplerError):
            batch.observe_batch(
                np.array([5.0, 1.0]),
                np.array([10, 10]),
                np.ones(2, dtype=bool),
                flow_bits=np.array([0, 0]),
            )


class TestSketchView:
    def test_sketch_accessor_matches_scalar_objects(self, rng):
        """The FlowSketch view over the uint64 backing reports the same
        bitmap/bits/estimate the old per-cell objects would have."""
        scalar, batch = make_pair(buckets=10, cpus=2)
        p = random_packets(rng, 300, horizon=0.009)
        feed_scalar(scalar, p)
        feed_batch(batch, p)
        for cpu in range(2):
            for bucket in range(10):
                a = scalar.sketch(cpu, bucket)
                b = batch.sketch(cpu, bucket)
                assert a.bitmap == b.bitmap
                assert a.bits_set == b.bits_set
                assert a.estimate() == b.estimate()

    def test_sketch_accessor_bounds(self):
        _, batch = make_pair()
        with pytest.raises(SamplerError):
            batch.sketch(99, 0)
        with pytest.raises(SamplerError):
            batch.sketch(0, 99)
