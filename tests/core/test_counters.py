"""Tests for per-CPU counter arrays."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.counters import BYTE_COUNTER_KINDS, CounterKind, CounterSet, PerCpuCounters
from repro.errors import SamplerError


class TestPerCpuCounters:
    def test_add_and_aggregate(self):
        counters = PerCpuCounters(cpus=2, buckets=4)
        counters.add(0, 1, 100)
        counters.add(1, 1, 50)
        counters.add(0, 3, 7)
        aggregated = counters.aggregate()
        assert aggregated.tolist() == [0, 150, 0, 7]

    def test_per_cpu_rows_are_independent(self):
        counters = PerCpuCounters(cpus=3, buckets=2)
        counters.add(2, 0, 5)
        assert counters.aggregate()[0] == 5
        counters.add(0, 0, 5)
        assert counters.aggregate()[0] == 10

    def test_reset_zeroes_everything(self):
        counters = PerCpuCounters(cpus=2, buckets=2)
        counters.add(0, 0, 9)
        counters.reset()
        assert counters.aggregate().sum() == 0

    def test_bad_cpu_rejected(self):
        counters = PerCpuCounters(cpus=2, buckets=2)
        with pytest.raises(SamplerError):
            counters.add(2, 0, 1)
        with pytest.raises(SamplerError):
            counters.add(-1, 0, 1)

    def test_bad_bucket_rejected(self):
        counters = PerCpuCounters(cpus=2, buckets=2)
        with pytest.raises(SamplerError):
            counters.add(0, 2, 1)

    def test_negative_amount_rejected(self):
        counters = PerCpuCounters(cpus=1, buckets=1)
        with pytest.raises(SamplerError):
            counters.add(0, 0, -1)

    def test_zero_dimensions_rejected(self):
        with pytest.raises(SamplerError):
            PerCpuCounters(cpus=0, buckets=1)
        with pytest.raises(SamplerError):
            PerCpuCounters(cpus=1, buckets=0)

    def test_footprint_is_eight_bytes_per_counter(self):
        counters = PerCpuCounters(cpus=4, buckets=100)
        assert counters.nbytes == 4 * 100 * 8

    @given(
        adds=st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 9), st.integers(0, 10_000)
            ),
            max_size=200,
        )
    )
    def test_aggregate_equals_sum_of_adds(self, adds):
        counters = PerCpuCounters(cpus=4, buckets=10)
        expected = np.zeros(10, dtype=np.uint64)
        for cpu, bucket, amount in adds:
            counters.add(cpu, bucket, amount)
            expected[bucket] += np.uint64(amount)
        assert counters.aggregate().tolist() == expected.tolist()


class TestCounterSet:
    def test_all_byte_kinds_present(self):
        counters = CounterSet(cpus=2, buckets=3)
        for kind in BYTE_COUNTER_KINDS:
            counters.add(kind, 0, 0, 1)
        aggregated = counters.aggregate()
        assert set(aggregated) == set(BYTE_COUNTER_KINDS)
        assert all(values[0] == 1 for values in aggregated.values())

    def test_flow_kind_is_not_a_byte_counter(self):
        counters = CounterSet(cpus=1, buckets=1)
        with pytest.raises(SamplerError):
            counters[CounterKind.FLOW_SKETCH]

    def test_footprint_includes_sketches_when_counting_flows(self):
        with_flows = CounterSet(cpus=2, buckets=10, count_flows=True)
        without = CounterSet(cpus=2, buckets=10, count_flows=False)
        assert with_flows.nbytes == without.nbytes + 2 * 10 * 16

    def test_reset_clears_all_kinds(self):
        counters = CounterSet(cpus=1, buckets=2)
        counters.add(CounterKind.IN_BYTES, 0, 0, 10)
        counters.add(CounterKind.OUT_RETX_BYTES, 0, 1, 20)
        counters.reset()
        aggregated = counters.aggregate()
        assert all(values.sum() == 0 for values in aggregated.values())
