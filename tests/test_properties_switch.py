"""Property suite: random forwarding and burst workloads under audit.

Random mixes of unicast, multicast, and uplink traffic — including
whole-rack burst workloads over real hosts and taps — run against the
:class:`InvariantAuditor`, which cross-checks every switch counter,
buffer charge, and queue occupancy per event.  This is the harness that
mechanically catches accounting bugs like ECN-marked bytes being
counted on discarded packets.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import units
from repro.config import BufferConfig, RackConfig
from repro.simnet.audit import audited
from repro.simnet.engine import Engine
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.switch import ToRSwitch
from repro.simnet.topology import build_rack
from repro.workload.flows import BurstServer, MulticastBurster

SERVERS = ["s0", "s1", "s2"]

#: (kind, destination_index, size, ecn_capable): kind 0-1 unicast to a
#: local server, 2 multicast to the rack group, 3 unicast to a remote
#: destination (exercises the uplink path).
PACKETS = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, len(SERVERS) - 1),
        st.integers(100, 9000),
        st.booleans(),
    ),
    max_size=120,
)


def make_audited_switch(shared=60_000, ecn_threshold=2000):
    engine = Engine()
    switch = ToRSwitch(
        engine,
        buffer_config=BufferConfig(
            shared_bytes=shared,
            dedicated_bytes_per_queue=500.0,
            alpha=1.0,
            ecn_threshold_bytes=ecn_threshold,
        ),
    )
    uplinked = []
    switch.default_route = uplinked.append
    for index, server in enumerate(SERVERS):
        # Uneven drain rates so queues build (and discard) differently.
        switch.connect_server(server, lambda p: None, rate=units.gbps(1) / (index + 1))
        switch.join_multicast("mcast", server)
    return engine, switch, uplinked


@given(packets=PACKETS)
@settings(max_examples=40)
def test_random_forwarding_mix_conserves_bytes(packets):
    with audited() as auditor:
        engine, switch, uplinked = make_audited_switch()
        for kind, dst_index, size, ecn in packets:
            if kind == 2:
                packet = Packet(
                    src=SERVERS[0],
                    dst="mcast",
                    size=size,
                    flow=FlowKey(SERVERS[0], "mcast", 1, 2, proto="udp"),
                    ecn_capable=False,
                    multicast_group="mcast",
                )
            else:
                dst = "remote-host" if kind == 3 else SERVERS[dst_index]
                packet = Packet(
                    src="sender",
                    dst=dst,
                    size=size,
                    flow=FlowKey("sender", dst, 1, 2),
                    ecn_capable=ecn,
                )
            switch.forward(packet)
        engine.run()
        auditor.verify()
    assert auditor.violations == []
    counters = switch.counters
    uplink_bytes = sum(p.size for p in uplinked)
    # End-to-end conservation, independent of the auditor's own checks:
    # unicast ingress is forwarded, discarded, or routed up; every
    # multicast ingress byte was replicated (then forwarded/discarded)
    # or rate-dropped, so totals reconcile exactly.
    replicated = counters.forwarded_bytes + counters.discard_bytes
    ingress_unicast = sum(
        size for kind, _d, size, _e in packets if kind != 2
    )
    assert ingress_unicast == counters.ingress_bytes - sum(
        size for kind, _d, size, _e in packets if kind == 2
    )
    assert uplink_bytes == sum(size for kind, _d, size, _e in packets if kind == 3)
    assert replicated + uplink_bytes <= counters.ingress_bytes * len(SERVERS)
    assert counters.ecn_marked_bytes <= counters.forwarded_bytes


@given(packets=PACKETS)
@settings(max_examples=25)
def test_ecn_marked_bytes_only_counts_enqueued_packets(packets):
    """Satellite fix 2 as a property: with a buffer tight enough to
    discard marked packets, marked bytes never exceed forwarded bytes
    (pre-fix, a marked-then-discarded packet inflated the counter)."""
    with audited() as auditor:
        engine, switch, _ = make_audited_switch(shared=12_000, ecn_threshold=500)
        for _kind, dst_index, size, _ecn in packets:
            dst = SERVERS[dst_index]
            switch.forward(
                Packet(
                    src="sender",
                    dst=dst,
                    size=size,
                    flow=FlowKey("sender", dst, 1, 2),
                    ecn_capable=True,
                )
            )
        engine.run()
        auditor.verify()
    assert auditor.violations == []
    assert switch.counters.ecn_marked_bytes <= switch.counters.forwarded_bytes


@given(
    burst_bytes=st.integers(20_000, 400_000),
    period=st.floats(min_value=5e-3, max_value=30e-3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=10, deadline=None)
def test_multicast_burst_workload_stays_invariant(burst_bytes, period, seed):
    """A full rack (hosts, taps, samplers, ToR) under a random
    multicast burst workload — the Figure 3 validation traffic —
    produces zero violations across every audited layer."""
    with audited() as auditor:
        rack = build_rack(
            name="r0",
            servers=4,
            rack_config=RackConfig(),
            rng=np.random.default_rng(seed),
        )
        for host in rack.hosts:
            rack.switch.join_multicast("grp", host.name)
        burster = MulticastBurster(
            rack.hosts[0], "grp", burst_bytes=burst_bytes, period=period
        )
        burster.start()
        rack.engine.run_until(0.1)
        burster.stop()
        rack.engine.run_until(0.2)
        auditor.verify()
    assert auditor.violations == []
    assert rack.switch.counters.multicast_replicas > 0


@given(
    volume=st.integers(50_000, 600_000),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=10, deadline=None)
def test_unicast_burst_workload_stays_invariant(volume, seed):
    """Random Figure 4-style server-to-client bursts through a real
    rack keep all conservation laws (loss included: oversized bursts
    exercise the discard path end to end)."""
    with audited() as auditor:
        rack = build_rack(
            name="r0", servers=3, rng=np.random.default_rng(seed)
        )
        server = BurstServer(rack.host_by_name("r0-s0"))
        server.transmit_burst("r0-s1", volume)
        server.transmit_burst("r0-s2", volume // 2)
        rack.engine.run_until(0.5)
        auditor.verify()
    assert auditor.violations == []
    delivered = sum(host.received_bytes for host in rack.hosts)
    assert delivered > 0
