"""Tests for statistical helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    BoxStats,
    bucket_means,
    cdf,
    cdf_value_at,
    pearson_correlation,
    percentile,
)
from repro.errors import AnalysisError


class TestCdf:
    def test_basic(self):
        x, y = cdf([3, 1, 2])
        assert x.tolist() == [1, 2, 3]
        assert y.tolist() == pytest.approx([100 / 3, 200 / 3, 100.0])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            cdf([])

    def test_cdf_value_at(self):
        assert cdf_value_at([1, 2, 3, 4], 2) == 50.0
        assert cdf_value_at([1, 2, 3, 4], 0) == 0.0
        assert cdf_value_at([1, 2, 3, 4], 10) == 100.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_cdf_monotone_and_bounded(self, values):
        x, y = cdf(values)
        assert (np.diff(x) >= 0).all()
        assert (np.diff(y) > 0).all()
        assert y[-1] == pytest.approx(100.0)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_bounds_checked(self):
        with pytest.raises(AnalysisError):
            percentile([1], 101)
        with pytest.raises(AnalysisError):
            percentile([], 50)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        st.floats(0, 100),
    )
    @settings(max_examples=40)
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestBoxStats:
    def test_five_numbers(self):
        stats = BoxStats.from_values(list(range(1, 101)))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.low_whisker >= 1
        assert stats.high_whisker <= 100
        assert stats.count == 100

    def test_outliers_excluded_from_whiskers(self):
        values = [10] * 50 + [1000]
        stats = BoxStats.from_values(values)
        assert stats.high_whisker == 10

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            BoxStats.from_values([])


class TestBucketMeans:
    def test_grouping(self):
        x = [0.5, 1.5, 1.6, 2.5]
        y = [10, 20, 40, 100]
        centers, means, counts = bucket_means(x, y, edges=[0, 1, 2, 3])
        assert means.tolist() == [10, 30, 100]
        assert counts.tolist() == [1, 2, 1]

    def test_empty_bucket_is_nan(self):
        centers, means, counts = bucket_means([0.5], [1.0], edges=[0, 1, 2])
        assert np.isnan(means[1])
        assert counts[1] == 0

    def test_misaligned_rejected(self):
        with pytest.raises(AnalysisError):
            bucket_means([1, 2], [1], [0, 1])


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            pearson_correlation([1], [1])
