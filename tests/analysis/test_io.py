"""Tests for the Millisampler-dataset reader/writer."""

import gzip
import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.io.msdata import (
    FieldMap,
    load_rack_directory,
    read_host_records,
    record_from_run,
    run_from_record,
    write_sync_run,
)
from tests.conftest import BURSTY, QUIET, make_run, make_sync_run


class TestRecordRoundtrip:
    def test_run_record_roundtrip(self):
        run = make_run([1.0, 2.0, 3.0], retx=[0, 1, 0], conns=[5, 5, 5])
        restored = run_from_record(record_from_run(run))
        np.testing.assert_allclose(restored.in_bytes, run.in_bytes)
        np.testing.assert_allclose(restored.in_retx_bytes, run.in_retx_bytes)
        assert restored.meta.host == run.meta.host
        assert restored.meta.sampling_interval == pytest.approx(
            run.meta.sampling_interval
        )
        assert restored.meta.line_rate == pytest.approx(run.meta.line_rate)

    def test_missing_optional_fields_zero_filled(self):
        record = {
            "host": "h0",
            "timestamp": 0.0,
            "interval_us": 1000,
            "ingress_bytes": [1, 2, 3],
        }
        run = run_from_record(record)
        assert run.out_bytes.sum() == 0
        assert run.conn_estimate.sum() == 0

    def test_missing_required_field_rejected(self):
        with pytest.raises(StorageError):
            run_from_record({"host": "h0", "interval_us": 1000})

    def test_bad_interval_rejected(self):
        with pytest.raises(StorageError):
            run_from_record(
                {"host": "h", "interval_us": 0, "ingress_bytes": [1]}
            )

    def test_misaligned_series_rejected(self):
        with pytest.raises(StorageError):
            run_from_record(
                {
                    "host": "h",
                    "interval_us": 1000,
                    "ingress_bytes": [1, 2],
                    "connections": [1],
                }
            )

    def test_custom_field_map(self):
        """A released dataset with different column names loads via a
        FieldMap, not a code change."""
        fields = FieldMap(
            host="hostname", ingress_bytes="inBytes", interval_us="binSizeUs"
        )
        record = {
            "hostname": "web-123",
            "binSizeUs": 1000,
            "inBytes": [100, 200],
        }
        run = run_from_record(record, fields)
        assert run.meta.host == "web-123"
        assert run.in_bytes.tolist() == [100, 200]


class TestFileIo:
    def test_write_and_load_directory(self, tmp_path):
        sync = make_sync_run([[BURSTY, QUIET], [QUIET, BURSTY]], hour=7)
        directory = str(tmp_path)
        path = write_sync_run(sync, directory)
        assert path.endswith(".ndjson.gz")
        loaded = load_rack_directory(directory)
        assert len(loaded) == 1
        assert loaded[0].hour == 7
        assert loaded[0].servers == 2
        assert loaded[0].rack == sync.rack

    def test_uncompressed_roundtrip(self, tmp_path):
        sync = make_sync_run([[1, 2, 3]])
        write_sync_run(sync, str(tmp_path), compress=False)
        loaded = load_rack_directory(str(tmp_path))
        np.testing.assert_allclose(loaded[0].runs[0].in_bytes, [1, 2, 3])

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            load_rack_directory(str(tmp_path))

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"host": "h", "interval_us": 1000, "ingress_bytes": [1]}\nnot-json\n')
        with pytest.raises(StorageError):
            read_host_records(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.ndjson"
        path.write_text(
            '\n{"host": "h", "interval_us": 1000, "ingress_bytes": [1]}\n\n'
        )
        assert len(read_host_records(str(path))) == 1

    def test_gzip_content_is_actually_compressed(self, tmp_path):
        sync = make_sync_run([np.zeros(2000)])
        path = write_sync_run(sync, str(tmp_path))
        raw_size = os.path.getsize(path)
        with gzip.open(path) as handle:
            expanded = len(handle.read())
        assert raw_size < expanded


class TestPipelineOnLoadedData:
    def test_full_analysis_on_reloaded_dataset(self, tmp_path):
        """Export a synthetic rack run, reload it, and run the paper's
        analysis — the pipeline is identical for real released data."""
        from repro.analysis.summary import summarize_run

        sync = make_sync_run(
            [
                [BURSTY, BURSTY, QUIET, QUIET],
                [QUIET, BURSTY, QUIET, QUIET],
            ],
            hour=6,
        )
        write_sync_run(sync, str(tmp_path))
        loaded = load_rack_directory(str(tmp_path))[0]
        summary = summarize_run(loaded)
        assert summary.bursty_server_runs() == 2
        assert summary.contention.max == 2
