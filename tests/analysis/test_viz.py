"""Tests for text visualization helpers."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.viz.ascii import ascii_cdf, ascii_histogram, ascii_plot, sparkline
from repro.viz.series import Series, format_csv, write_csv
from repro.viz.table import render_table


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_extremes(self):
        line = sparkline([0, 10])
        assert line[0] == " " or line[0] == "▁"
        assert line[1] == "█"

    def test_constant_series(self):
        assert len(sparkline([5, 5, 5])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_rendered_blank(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "


class TestAsciiPlot:
    def test_contains_axes_and_legend(self):
        text = ascii_plot([0, 1, 2], {"demo": [1, 2, 3]}, x_label="x", title="T")
        assert "T" in text
        assert "demo" in text
        assert "+" in text

    def test_multiple_series(self):
        text = ascii_plot([0, 1], {"a": [1, 2], "b": [2, 1]})
        assert "a" in text and "b" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot([], {})

    def test_nan_values_skipped(self):
        text = ascii_plot([0, 1, 2], {"a": [1.0, float("nan"), 3.0]})
        assert "a" in text


class TestAsciiCdf:
    def test_renders(self):
        text = ascii_cdf({"values": np.arange(100)}, x_label="v")
        assert "CDF" in text

    def test_multiple_groups(self):
        text = ascii_cdf({"a": [1, 2, 3], "b": [2, 3, 4]})
        assert "a" in text and "b" in text


class TestBoxplot:
    def _stats(self, values):
        from repro.analysis.stats import BoxStats

        return BoxStats.from_values(values)

    def test_renders_rows_with_shared_axis(self):
        from repro.viz.ascii import ascii_boxplot

        text = ascii_boxplot(
            {"a": self._stats([1, 2, 3, 4, 5]), "b": self._stats([4, 5, 6, 7, 8])}
        )
        lines = text.splitlines()
        assert len(lines) == 3  # two rows + axis
        assert "#" in lines[0] and "#" in lines[1]
        # b's median sits right of a's on the shared axis.
        assert lines[1].index("#") > lines[0].index("#")

    def test_empty_rejected(self):
        from repro.viz.ascii import ascii_boxplot

        with pytest.raises(AnalysisError):
            ascii_boxplot({})

    def test_degenerate_row(self):
        from repro.viz.ascii import ascii_box_row

        assert ascii_box_row(1, 1, 1, 1, 1, 1, 1).strip() == ""


class TestHistogram:
    def test_counts_sum(self):
        text = ascii_histogram([1, 1, 2, 3], bins=3)
        assert "#" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_histogram([])


class TestTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "a" in text and "22" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[3.14159], [0.0001], [12345.6]])
        assert "3.14" in text
        assert "0.0001" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            render_table(["a", "b"], [["only-one"]])

    def test_no_headers_rejected(self):
        with pytest.raises(AnalysisError):
            render_table([], [])


class TestSeries:
    def test_misaligned_rejected(self):
        with pytest.raises(AnalysisError):
            Series("s", np.array([1, 2]), np.array([1]))

    def test_format_csv(self):
        csv = format_csv([Series("s", np.array([1.0]), np.array([2.0]))], "x", "y")
        assert csv.splitlines()[0] == "series,x,y"
        assert "s,1,2" in csv

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            format_csv([])

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "sub" / "out.csv")
        write_csv([Series("s", np.array([1.0]), np.array([2.0]))], path)
        with open(path) as handle:
            assert "s,1,2" in handle.read()
