"""Tests for rack classification, task analysis, and diurnal grouping."""

import pytest

from repro.analysis.contention import ContentionStats
from repro.analysis.diurnal import hourly_box_stats, hourly_means, peak_window_increase
from repro.analysis.racks import (
    RackClass,
    classify_racks,
    classify_run,
    rack_profiles,
)
from repro.analysis.summary import RunSummary
from repro.analysis.tasks import dominant_share_by_rack, task_diversity
from repro.errors import AnalysisError


def make_summary(
    rack: str,
    mean_contention: float,
    hour: int = 6,
    region: str = "RegA",
    extras: dict | None = None,
    discards: float = 0.0,
    ingress: float = 1e9,
) -> RunSummary:
    return RunSummary(
        rack=rack,
        region=region,
        hour=hour,
        servers=4,
        buckets=100,
        sampling_interval=1e-3,
        contention=ContentionStats(
            mean=mean_contention,
            min_active=max(mean_contention - 1, 0),
            p90=mean_contention + 1,
            max=mean_contention + 2,
            frac_zero=0.1,
        ),
        bursts=[],
        server_stats=[],
        switch_discard_bytes=discards,
        switch_ingress_bytes=ingress,
        extras=extras or {},
    )


class TestRackProfiles:
    def test_aggregation(self):
        summaries = [
            make_summary("r0", 1.0, hour=1),
            make_summary("r0", 3.0, hour=5),
            make_summary("r1", 8.0),
        ]
        profiles = rack_profiles(summaries)
        by_rack = {profile.rack: profile for profile in profiles}
        assert by_rack["r0"].mean_contention == pytest.approx(2.0)
        assert by_rack["r0"].min_contention == 1.0
        assert by_rack["r0"].max_contention == 3.0
        assert by_rack["r0"].runs == 2

    def test_hour_filter(self):
        summaries = [make_summary("r0", 1.0, hour=1), make_summary("r0", 9.0, hour=6)]
        profiles = rack_profiles(summaries, hours={6})
        assert profiles[0].mean_contention == 9.0

    def test_no_matching_hours_rejected(self):
        with pytest.raises(AnalysisError):
            rack_profiles([make_summary("r0", 1.0, hour=1)], hours={5})

    def test_normalized_discards(self):
        profile = rack_profiles([make_summary("r0", 1.0, discards=100, ingress=1000)])[0]
        assert profile.normalized_discards == pytest.approx(0.1)

    def test_extras_carried(self):
        profile = rack_profiles(
            [make_summary("r0", 1.0, extras={"distinct_tasks": 9, "dominant_share": 0.7})]
        )[0]
        assert profile.distinct_tasks == 9
        assert profile.dominant_share == pytest.approx(0.7)


class TestClassification:
    def test_split(self):
        profiles = rack_profiles(
            [make_summary("low", 1.0), make_summary("high", 9.0)]
        )
        classes = classify_racks(profiles, split=4.5)
        assert [p.rack for p in classes[RackClass.TYPICAL]] == ["low"]
        assert [p.rack for p in classes[RackClass.HIGH]] == ["high"]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            classify_racks([])

    def test_classify_run(self):
        summary = make_summary("r0", 1.0)
        assert classify_run(summary, high_racks=set()) is RackClass.TYPICAL
        assert classify_run(summary, high_racks={"r0"}) is RackClass.HIGH


class TestTaskAnalysis:
    def test_diversity(self):
        profiles = rack_profiles(
            [
                make_summary("a", 1.0, extras={"distinct_tasks": 8}),
                make_summary("b", 1.0, extras={"distinct_tasks": 14}),
            ]
        )
        assert sorted(task_diversity(profiles).tolist()) == [8, 14]

    def test_dominant_share_sorted_by_contention(self):
        profiles = rack_profiles(
            [
                make_summary("hot", 9.0, extras={"dominant_share": 0.9}),
                make_summary("cold", 1.0, extras={"dominant_share": 0.25}),
            ]
        )
        ids, shares = dominant_share_by_rack(profiles)
        assert shares.tolist() == [25.0, 90.0]  # cold first

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            task_diversity([])


class TestDiurnal:
    def test_hourly_grouping(self):
        summaries = [
            make_summary("r0", 1.0, hour=3),
            make_summary("r1", 3.0, hour=3),
            make_summary("r0", 5.0, hour=10),
        ]
        boxes = hourly_box_stats(summaries)
        assert set(boxes) == {3, 10}
        assert boxes[3].mean == pytest.approx(2.0)

    def test_rack_filter(self):
        summaries = [
            make_summary("keep", 4.0, hour=3),
            make_summary("drop", 100.0, hour=3),
        ]
        means = hourly_means(summaries, racks={"keep"})
        assert means[3] == 4.0

    def test_filter_matches_nothing_rejected(self):
        with pytest.raises(AnalysisError):
            hourly_box_stats([make_summary("r0", 1.0)], racks={"ghost"})

    def test_peak_window_increase(self):
        means = {h: (2.0 if 4 <= h <= 10 else 1.0) for h in range(24)}
        assert peak_window_increase(means, window=(4, 10)) == pytest.approx(1.0)

    def test_peak_window_degenerate_rejected(self):
        with pytest.raises(AnalysisError):
            peak_window_increase({5: 1.0}, window=(4, 10))
