"""Mergeable streaming partials (repro.analysis.streaming).

Two families of guarantees:

* the generic partials (CountSum, Histogram, QuantileSketch) merge
  associatively and agree with direct computation;
* the exact figure accumulators are **bit-identical** to their
  in-memory oracles for any split of the summaries into shards and any
  merge order — the property the shard store's correctness rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diurnal import hourly_box_stats
from repro.analysis.racks import rack_profiles
from repro.analysis.streaming import (
    BurstContentionAccumulator,
    CountSum,
    Histogram,
    HourlyBoxAccumulator,
    QuantileSketch,
    RackProfileAccumulator,
    RunContentionAccumulator,
    Table1Accumulator,
    burst_contention_from_summaries,
    run_contention_from_summaries,
)
from repro.config import FleetConfig
from repro.errors import AnalysisError
from repro.fleet.dataset import generate_region_dataset
from repro.workload.region import REGION_A


@pytest.fixture(scope="module")
def summaries():
    config = FleetConfig(racks_per_region=5, runs_per_rack=4, seed=13)
    return generate_region_dataset(REGION_A, config, jobs=1).summaries


def split_into(items, pieces, seed):
    """A deterministic arbitrary partition of items into pieces chunks."""
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, pieces, size=len(items))
    return [
        [item for item, piece in zip(items, assignment) if piece == index]
        for index in range(pieces)
    ]


class TestCountSum:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
           st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concat(self, left, right):
        merged = CountSum()
        merged.add_array(np.asarray(left))
        other = CountSum()
        other.add_array(np.asarray(right))
        merged.merge(other)
        direct = CountSum()
        direct.add_array(np.asarray(left + right))
        assert merged.count == direct.count
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum
        assert merged.total == pytest.approx(direct.total, rel=1e-12)

    def test_empty_mean(self):
        assert CountSum().mean == 0.0


class TestHistogram:
    def test_counts_and_flows(self):
        histogram = Histogram([0.0, 1.0, 2.0])
        histogram.add_array([-1.0, 0.5, 1.5, 3.0, 1.0])
        assert histogram.underflow == 1
        assert histogram.overflow == 1
        assert histogram.counts.tolist() == [1, 2]
        assert histogram.total == 5

    def test_merge_requires_same_edges(self):
        with pytest.raises(AnalysisError):
            Histogram([0, 1]).merge(Histogram([0, 2]))

    def test_merge_adds_counts(self):
        left = Histogram([0, 1, 2])
        right = Histogram([0, 1, 2])
        left.add_array([0.5, 1.5])
        right.add_array([0.25, -3.0])
        left.merge(right)
        assert left.counts.tolist() == [2, 1]
        assert left.underflow == 1

    def test_bad_edges_rejected(self):
        with pytest.raises(AnalysisError):
            Histogram([1.0])
        with pytest.raises(AnalysisError):
            Histogram([0.0, 0.0, 1.0])


class TestQuantileSketch:
    def test_small_stream_is_exact(self):
        sketch = QuantileSketch(k=64)
        sketch.add_array(np.arange(50, dtype=float))
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 49.0
        assert abs(sketch.quantile(0.5) - 24.5) <= 1.0

    def test_large_stream_bounded_error(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=20_000)
        sketch = QuantileSketch(k=256)
        sketch.add_array(values)
        for q in (0.1, 0.5, 0.9):
            true = float(np.quantile(values, q))
            rank_true = q
            rank_est = float((values <= sketch.quantile(q)).mean())
            assert abs(rank_est - rank_true) < 0.05

    def test_merge_equivalent_to_single_stream(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(size=5_000)
        parts = np.array_split(values, 7)
        merged = QuantileSketch(k=128)
        for part in parts:
            piece = QuantileSketch(k=128)
            piece.add_array(part)
            merged.merge(piece)
        assert merged.count == values.size
        for q in (0.25, 0.5, 0.75):
            rank_est = float((values <= merged.quantile(q)).mean())
            assert abs(rank_est - q) < 0.08

    def test_rejects_tiny_capacity_and_bad_quantiles(self):
        with pytest.raises(AnalysisError):
            QuantileSketch(k=4)
        sketch = QuantileSketch()
        with pytest.raises(AnalysisError):
            sketch.quantile(1.5)
        with pytest.raises(AnalysisError):
            sketch.quantile(0.5)  # empty


def accumulate_split(make, summaries, pieces, seed):
    """Feed an arbitrary partition through per-piece accumulators and
    merge them in shuffled order — exactly what shard merging does."""
    chunks = split_into(summaries, pieces, seed)
    accumulators = []
    for chunk in chunks:
        accumulator = make()
        for summary in chunk:
            accumulator.add_summary(summary)
        accumulators.append(accumulator)
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(len(accumulators))
    merged = accumulators[order[0]]
    for index in order[1:]:
        merged.merge(accumulators[index])
    return merged


@pytest.mark.parametrize("pieces,seed", [(1, 0), (3, 1), (7, 2), (16, 3)])
class TestAccumulatorsMatchOracles:
    def test_table1(self, summaries, pieces, seed):
        merged = accumulate_split(
            lambda: Table1Accumulator("RegA"), summaries, pieces, seed
        )
        runs = len(summaries)
        row = merged.finalize()
        assert row.runs == runs
        assert row.server_runs == sum(s.servers for s in summaries)
        assert row.bursty_server_runs == sum(s.bursty_server_runs() for s in summaries)
        assert row.bursts == sum(len(s.bursts) for s in summaries)
        assert row.racks == len({s.rack for s in summaries})

    def test_rack_profiles(self, summaries, pieces, seed):
        merged = accumulate_split(RackProfileAccumulator, summaries, pieces, seed)
        assert merged.finalize() == rack_profiles(summaries)

    def test_rack_profiles_hour_filter(self, summaries, pieces, seed):
        hours = {s.hour for s in summaries[::3]}
        merged = accumulate_split(
            lambda: RackProfileAccumulator(hours=hours), summaries, pieces, seed
        )
        assert merged.finalize() == rack_profiles(summaries, hours=hours)

    def test_hourly_boxes(self, summaries, pieces, seed):
        merged = accumulate_split(HourlyBoxAccumulator, summaries, pieces, seed)
        assert merged.finalize() == hourly_box_stats(summaries)

    def test_run_contention(self, summaries, pieces, seed):
        merged = accumulate_split(RunContentionAccumulator, summaries, pieces, seed)
        actual = merged.finalize()
        expected = run_contention_from_summaries(summaries)
        assert actual.total == expected.total
        assert actual.excluded == expected.excluded
        assert np.array_equal(actual.mins, expected.mins)
        assert np.array_equal(actual.p90s, expected.p90s)

    def test_burst_contention(self, summaries, pieces, seed):
        merged = accumulate_split(BurstContentionAccumulator, summaries, pieces, seed)
        actual = merged.finalize()
        expected = burst_contention_from_summaries(summaries)
        assert np.array_equal(actual.racks, expected.racks)
        assert np.array_equal(actual.max_contention, expected.max_contention)
        assert np.array_equal(actual.lossy, expected.lossy)
        assert np.array_equal(
            actual.first_loss_contention, expected.first_loss_contention
        )


class TestAccumulatorEdgeCases:
    def test_empty_profile_raises_like_oracle(self):
        with pytest.raises(AnalysisError):
            RackProfileAccumulator().finalize()

    def test_empty_boxes_raise_like_oracle(self):
        with pytest.raises(AnalysisError):
            HourlyBoxAccumulator().finalize()

    def test_table1_merge_rejects_cross_region(self):
        with pytest.raises(AnalysisError):
            Table1Accumulator("RegA").merge(Table1Accumulator("RegB"))

    def test_profile_merge_rejects_filter_mismatch(self):
        with pytest.raises(AnalysisError):
            RackProfileAccumulator(hours={1}).merge(RackProfileAccumulator(hours={2}))

    def test_empty_run_contention_finalizes(self):
        view = RunContentionAccumulator().finalize()
        assert view.total == 0 and view.excluded == 0
        assert view.mins.size == 0 and view.p90s.size == 0
