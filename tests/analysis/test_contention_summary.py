"""Tests for contention metrics and run summaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.contention import (
    buffer_share,
    buffer_share_drop,
    contention_stats,
)
from repro.analysis.summary import summarize_run
from repro.config import BufferConfig
from repro.errors import AnalysisError
from tests.conftest import BURSTY, QUIET, make_sync_run


class TestContentionStats:
    def test_basic(self):
        stats = contention_stats(np.array([0, 1, 2, 3, 0]))
        assert stats.mean == pytest.approx(1.2)
        assert stats.min_active == 1
        assert stats.max == 3
        assert stats.frac_zero == pytest.approx(0.4)

    def test_all_zero(self):
        stats = contention_stats(np.zeros(10))
        assert stats.min_active == 0
        assert not stats.has_activity

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            contention_stats(np.array([]))

    def test_p90(self):
        series = np.concatenate([np.zeros(90), np.full(10, 5.0)])
        stats = contention_stats(series)
        assert stats.p90 <= 5.0


class TestBufferShare:
    def test_fixed_point_alpha_1(self):
        """S=1 -> B/2, S=2 -> B/3 (Section 2.1.2)."""
        assert buffer_share(1) == pytest.approx(0.5)
        assert buffer_share(2) == pytest.approx(1 / 3)

    def test_zero_contention_treated_as_one(self):
        assert buffer_share(0) == buffer_share(1)

    def test_alpha_2(self):
        config = BufferConfig(alpha=2.0)
        assert buffer_share(1, config) == pytest.approx(2 / 3)
        assert buffer_share(2, config) == pytest.approx(2 / 5)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            buffer_share(-1)

    def test_share_drop_1_to_2(self):
        """Section 7.3: contention 1 -> 2 is a 33.4% drop from peak."""
        assert buffer_share_drop(1, 2) == pytest.approx(1 / 3)

    def test_share_drop_zero_variation(self):
        assert buffer_share_drop(3, 3) == 0.0

    def test_share_drop_inverted_rejected(self):
        with pytest.raises(AnalysisError):
            buffer_share_drop(5, 2)

    @given(
        low=st.integers(1, 20),
        extra=st.integers(0, 20),
    )
    @settings(max_examples=40)
    def test_drop_monotone_in_spread(self, low, extra):
        drop_small = buffer_share_drop(low, low + extra)
        drop_big = buffer_share_drop(low, low + extra + 1)
        assert drop_big >= drop_small
        assert 0 <= drop_small < 1


class TestSummarizeRun:
    def test_summary_fields(self):
        sync = make_sync_run(
            [
                [BURSTY, BURSTY, QUIET, QUIET],
                [BURSTY, QUIET, QUIET, QUIET],
                [QUIET, QUIET, QUIET, QUIET],
            ],
            hour=6,
        )
        summary = summarize_run(sync)
        assert summary.servers == 3
        assert summary.hour == 6
        assert summary.bursty_server_runs() == 2
        assert len(summary.bursts) == 2
        assert summary.contention.mean == pytest.approx((2 + 1 + 0 + 0) / 4)

    def test_burst_contention_annotated(self):
        sync = make_sync_run(
            [
                [BURSTY, BURSTY],
                [BURSTY, QUIET],
            ]
        )
        summary = summarize_run(sync)
        burst0 = next(b for b in summary.bursts if b.server == 0)
        assert burst0.max_contention == 2

    def test_server_stats_utilizations(self):
        sync = make_sync_run([[BURSTY, QUIET]])
        summary = summarize_run(sync)
        stat = summary.server_stats[0]
        assert stat.bursty
        assert stat.utilization_in_bursts == pytest.approx(0.8)
        assert stat.utilization_outside_bursts == pytest.approx(0.1)
        assert stat.bursts_per_second == pytest.approx(1 / 0.002)

    def test_non_bursty_server_nan_fields(self):
        sync = make_sync_run([[QUIET, QUIET]])
        stat = summarize_run(sync).server_stats[0]
        assert not stat.bursty
        assert np.isnan(stat.utilization_in_bursts)

    def test_total_bytes(self):
        sync = make_sync_run([[100, 200], [300, 400]])
        assert summarize_run(sync).total_in_bytes == 1000

    def test_extras_preserved(self):
        sync = make_sync_run([[QUIET]], extras={"colocated": True})
        assert summarize_run(sync).extras["colocated"] is True
