"""Tests for the Section 9 placement-metric candidates."""

import pytest

from repro.analysis.bursts import Burst
from repro.analysis.contention import ContentionStats
from repro.analysis.placement_metrics import (
    burst_risk_score,
    contention_score,
    rank_correlation,
    realized_loss,
    score_racks,
    volume_score,
)
from repro.analysis.summary import RunSummary
from repro.errors import AnalysisError


def make_summary(rack="r0", bursts=None, ingress=1e9, mean_contention=1.0):
    return RunSummary(
        rack=rack,
        region="RegA",
        hour=6,
        servers=4,
        buckets=1000,
        sampling_interval=1e-3,
        contention=ContentionStats(
            mean=mean_contention, min_active=1, p90=2, max=3, frac_zero=0.5
        ),
        bursts=bursts or [],
        server_stats=[],
        switch_discard_bytes=0.0,
        switch_ingress_bytes=ingress,
    )


def make_burst(length=5, conns=50.0, contention=3, lossy=False, volume=1e6):
    burst = Burst(
        server=0, start=0, length=length, volume=volume, avg_connections=conns,
        lossy=lossy,
    )
    burst.max_contention = contention
    return burst


class TestScores:
    def test_volume_score_per_minute(self):
        summary = make_summary(ingress=2e9)  # over 1 s
        assert volume_score([summary]) == pytest.approx(120.0)  # GB/min

    def test_contention_score_mean(self):
        summaries = [make_summary(mean_contention=1.0), make_summary(mean_contention=3.0)]
        assert contention_score(summaries) == 2.0

    def test_burst_risk_selects_the_loss_regime(self):
        risky = make_burst(length=6, conns=55, contention=4)
        safe_short = make_burst(length=1, conns=55, contention=4)
        safe_fanin = make_burst(length=6, conns=5, contention=4)
        safe_uncontended = make_burst(length=6, conns=55, contention=1)
        summary = make_summary(
            bursts=[risky, safe_short, safe_fanin, safe_uncontended]
        )
        assert burst_risk_score([summary]) == pytest.approx(0.25)

    def test_realized_loss(self):
        summary = make_summary(bursts=[make_burst(lossy=True), make_burst()])
        assert realized_loss([summary]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            volume_score([])
        with pytest.raises(AnalysisError):
            score_racks([])

    def test_score_racks_groups(self):
        scores = score_racks([make_summary(rack="a"), make_summary(rack="b")])
        assert set(scores) == {"a", "b"}
        assert set(scores["a"]) == {"volume", "contention", "burst_risk", "realized_loss"}


class TestRankCorrelation:
    def test_perfect_monotone(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert rank_correlation([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_still_perfect(self):
        assert rank_correlation([1, 2, 3, 4], [1, 100, 101, 1e6]) == pytest.approx(1.0)

    def test_ties_handled(self):
        rho = rank_correlation([1, 1, 2, 3], [5, 5, 6, 7])
        assert 0.9 <= rho <= 1.0

    def test_constant_is_zero(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            rank_correlation([1, 2], [1, 2])


class TestOnDataset:
    def test_burst_risk_predicts_loss_best(self, small_ctx):
        """The Section 9 claim: the combined metric outperforms plain
        contention and volume at predicting rack loss."""
        scores = score_racks(small_ctx.summaries("RegA"))
        racks = sorted(scores)
        losses = [scores[r]["realized_loss"] for r in racks]
        rho_risk = rank_correlation([scores[r]["burst_risk"] for r in racks], losses)
        rho_contention = rank_correlation(
            [scores[r]["contention"] for r in racks], losses
        )
        assert rho_risk > rho_contention
        assert rho_risk > 0.4
