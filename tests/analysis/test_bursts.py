"""Tests for burst detection and properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bursts import (
    burst_frequency,
    bursty_fraction_of_bytes,
    detect_bursts,
    detect_run_bursts,
)
from repro.errors import AnalysisError
from tests.conftest import BURSTY, FULL_BUCKET, QUIET, make_run, make_sync_run


class TestDetectBursts:
    def test_single_burst(self):
        run = make_run([QUIET, BURSTY, BURSTY, QUIET])
        bursts = detect_bursts(run)
        assert len(bursts) == 1
        assert bursts[0].start == 1
        assert bursts[0].length == 2
        assert bursts[0].volume == pytest.approx(2 * BURSTY)

    def test_multiple_separated_bursts(self):
        run = make_run([BURSTY, QUIET, BURSTY, QUIET, BURSTY])
        bursts = detect_bursts(run)
        assert len(bursts) == 3
        assert [burst.length for burst in bursts] == [1, 1, 1]

    def test_burst_at_edges(self):
        run = make_run([BURSTY, QUIET, QUIET, BURSTY])
        bursts = detect_bursts(run)
        assert bursts[0].start == 0
        assert bursts[-1].end == 4

    def test_no_bursts_in_smooth_traffic(self):
        run = make_run([QUIET] * 10)
        assert detect_bursts(run) == []

    def test_exactly_50pct_is_not_a_burst(self):
        """The definition is *exceeds* 50% of line rate."""
        run = make_run([0.5 * FULL_BUCKET])
        assert detect_bursts(run) == []

    def test_loss_attribution_within_burst(self):
        retx = [0, 0, 1000, 0, 0]
        run = make_run([QUIET, BURSTY, BURSTY, QUIET, QUIET], retx=retx)
        bursts = detect_bursts(run)
        assert bursts[0].lossy
        assert bursts[0].retx_bytes == 1000

    def test_loss_attribution_one_rtt_later(self):
        """Section 4.6: retransmissions surface an RTT after the loss,
        so the window extends past the burst end."""
        retx = [0, 0, 0, 1000, 0]
        run = make_run([QUIET, BURSTY, BURSTY, QUIET, QUIET], retx=retx)
        bursts = detect_bursts(run, loss_lag_buckets=2)
        assert bursts[0].lossy

    def test_loss_outside_window_not_attributed(self):
        retx = [0, 0, 0, 0, 0, 1000]
        run = make_run([QUIET, BURSTY, BURSTY, QUIET, QUIET, QUIET], retx=retx)
        bursts = detect_bursts(run, loss_lag_buckets=2)
        assert not bursts[0].lossy

    def test_lag_window_clipped_at_next_burst(self):
        """Two bursts one quiet bucket apart: the first burst's lag
        window must stop at the second burst's start, so one loss event
        inside the second burst marks only the second burst lossy and
        its bytes are counted once."""
        #            b1      gap    b2      (retx lands in b2's first bucket)
        ingress = [BURSTY, QUIET, BURSTY, BURSTY, QUIET, QUIET]
        retx = [0, 0, 1000, 0, 0, 0]
        run = make_run(ingress, retx=retx)
        bursts = detect_bursts(run, loss_lag_buckets=2)
        assert len(bursts) == 2
        first, second = bursts
        assert not first.lossy
        assert first.retx_bytes == 0
        assert second.lossy
        assert second.retx_bytes == 1000

    def test_lag_window_still_covers_gap_before_next_burst(self):
        """Clipping keeps the gap buckets before the next burst: retx
        surfacing in the quiet bucket between bursts still belongs to
        the first burst."""
        ingress = [BURSTY, QUIET, BURSTY, QUIET]
        retx = [0, 500, 0, 0]
        run = make_run(ingress, retx=retx)
        first, second = detect_bursts(run, loss_lag_buckets=2)
        assert first.lossy
        assert first.retx_bytes == 500
        assert not second.lossy

    def test_connection_annotation(self):
        run = make_run([BURSTY, BURSTY], conns=[30, 50])
        bursts = detect_bursts(run)
        assert bursts[0].avg_connections == pytest.approx(40)

    def test_negative_lag_rejected(self):
        run = make_run([BURSTY])
        with pytest.raises(AnalysisError):
            detect_bursts(run, loss_lag_buckets=-1)

    @given(
        mask=st.lists(st.booleans(), min_size=1, max_size=100)
    )
    @settings(max_examples=50)
    def test_bursts_partition_bursty_samples(self, mask):
        """Every bursty sample belongs to exactly one burst; burst
        boundaries are maximal consecutive runs."""
        series = [BURSTY if m else QUIET for m in mask]
        run = make_run(series)
        bursts = detect_bursts(run)
        covered = np.zeros(len(mask), dtype=bool)
        for burst in bursts:
            assert not covered[burst.start : burst.end].any()  # disjoint
            covered[burst.start : burst.end] = True
        np.testing.assert_array_equal(covered, np.array(mask))


class TestDetectRunBursts:
    def test_max_contention_annotation(self):
        sync = make_sync_run(
            [
                [BURSTY, BURSTY, QUIET],
                [QUIET, BURSTY, QUIET],
            ]
        )
        bursts = detect_run_bursts(sync)
        long_burst = next(b for b in bursts if b.server == 0)
        assert long_burst.max_contention == 2
        assert long_burst.contended

    def test_non_contended_burst(self):
        sync = make_sync_run(
            [
                [BURSTY, QUIET],
                [QUIET, BURSTY],
            ]
        )
        bursts = detect_run_bursts(sync)
        assert all(burst.max_contention == 1 for burst in bursts)
        assert not any(burst.contended for burst in bursts)


class TestFirstLossContention:
    def test_first_loss_contention_annotated(self):
        """The alternate Section 8 methodology: a lossy burst records
        the contention at its first loss, which can be lower than the
        lifetime maximum."""
        sync = make_sync_run(
            [
                [BURSTY, BURSTY, BURSTY, QUIET],  # victim burst
                [QUIET, QUIET, BURSTY, QUIET],  # contention arrives late
            ]
        )
        # Loss repaired in bucket 2 with lag 2 -> loss at bucket 0.
        sync.runs[0].in_retx_bytes[2] = 500
        bursts = detect_run_bursts(sync, loss_lag_buckets=2)
        victim = next(b for b in bursts if b.server == 0)
        assert victim.lossy
        assert victim.max_contention == 2
        assert victim.first_loss_contention == 1  # alone when it lost

    def test_clean_burst_has_no_first_loss(self):
        sync = make_sync_run([[BURSTY, QUIET]])
        bursts = detect_run_bursts(sync)
        assert bursts[0].first_loss_contention == -1

    def test_first_loss_never_above_max(self):
        rng = np.random.default_rng(0)
        rows = (rng.random((6, 40)) < 0.3) * BURSTY
        sync = make_sync_run(list(rows))
        for run in sync.runs:
            run.in_retx_bytes[:] = (rng.random(40) < 0.1) * 100
        for burst in detect_run_bursts(sync):
            if burst.lossy:
                assert 1 <= burst.first_loss_contention <= burst.max_contention


class TestBurstAggregates:
    def test_frequency(self):
        run = make_run([BURSTY, QUIET] * 5)
        bursts = detect_bursts(run)
        assert burst_frequency(bursts, duration_s=0.01) == pytest.approx(500)

    def test_frequency_invalid_duration(self):
        with pytest.raises(AnalysisError):
            burst_frequency([], 0)

    def test_byte_fraction(self):
        run = make_run([BURSTY, QUIET])
        bursts = detect_bursts(run)
        expected = BURSTY / (BURSTY + QUIET)
        assert bursty_fraction_of_bytes(run, bursts) == pytest.approx(expected)

    def test_byte_fraction_empty_run(self):
        run = make_run([0, 0])
        assert bursty_fraction_of_bytes(run, []) == 0.0

    def test_length_ms(self):
        run = make_run([BURSTY] * 3)
        burst = detect_bursts(run)[0]
        assert burst.length_ms() == pytest.approx(3.0)
