"""Property suite: packet-level and fluid-style admission agree per policy.

The tentpole guarantee of the policy layer is that the packet-level
:class:`SharedBuffer` and the fluid model evaluate the *same*
:class:`SharingPolicy` objects over the *same* state quantities.  This
suite drives random admit/release/tick traces through an audited
``SharedBuffer`` and, in lockstep, through a one-queue-per-server fluid
mirror — plain arrays maintained exactly as
:class:`~repro.fleet.buffermodel.FluidBufferModel` maintains them (one
quadrant pool, per-queue shared occupancy, consecutive-active clocks) —
and asserts that every shared-pool admission decision agrees: same
accept/reject verdict, same dedicated/shared split, and the auditor
sees no invariant violations under any registered policy.

Select the deterministic CI profile with HYPOTHESIS_PROFILE=ci.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BufferConfig
from repro.fleet.policies import build_policy, registered_policy_specs
from repro.simnet.audit import audited
from repro.simnet.buffer import SharedBuffer

QUEUES = ["q0", "q1", "q2", "q3"]
ALL_SPECS = registered_policy_specs()

#: (op, queue_index, size): op 0-2 = admit, op 3 = release the oldest
#: held admission on that queue, op 4 = advance the activity clock one
#: step (a fluid-model bucket boundary).
OPERATIONS = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, len(QUEUES) - 1), st.integers(1, 600)),
    max_size=200,
)

CONFIGS = st.sampled_from(
    [
        # (shared, dedicated): all-shared and dedicated-first shapes.
        (1500, 0.0),
        (1500, 120.0),
    ]
)


class FluidMirror:
    """One-queue-per-server fluid-step state for ``n`` queues in one
    quadrant, evaluated through the same policy object the buffer uses."""

    def __init__(self, policy, config: BufferConfig, n: int) -> None:
        self.policy = policy
        self.config = config
        self.quadrant = np.zeros(n, dtype=np.int64)
        self.dedicated_used = np.zeros(n)
        self.shared_used = np.zeros(n)
        self.active_steps = np.zeros(n)

    @property
    def pool_used(self) -> float:
        return float(self.shared_used.sum())

    def limits(self) -> np.ndarray:
        """All queues' limits in one vectorized call, as the fluid
        kernel evaluates them per bucket."""
        return self.policy.limits(
            float(self.config.shared_bytes),
            np.array([self.pool_used]),
            self.quadrant,
            self.shared_used,
            self.active_steps,
        )

    def admit(self, index: int, size: int):
        """(accepted, from_dedicated, from_shared) under the fluid rule."""
        dedicated_free = self.config.dedicated_bytes_per_queue - self.dedicated_used[index]
        from_dedicated = min(size, max(int(dedicated_free), 0))
        from_shared = size - from_dedicated
        if from_shared > 0:
            limit = self.limits()[index]
            pool_free = self.config.shared_bytes - self.pool_used
            if self.shared_used[index] + from_shared > limit:
                return False, 0, 0
            if from_shared > pool_free:
                return False, 0, 0
        self.dedicated_used[index] += from_dedicated
        self.shared_used[index] += from_shared
        return True, from_dedicated, from_shared

    def release(self, index: int, admission) -> None:
        self.dedicated_used[index] -= admission.dedicated_bytes
        self.shared_used[index] -= admission.shared_bytes

    def tick(self) -> None:
        occupancy = self.dedicated_used + self.shared_used
        self.active_steps = np.where(occupancy > 0, self.active_steps + 1, 0.0)


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
@given(operations=OPERATIONS, config=CONFIGS)
@settings(max_examples=25)
def test_packet_and_fluid_admission_agree(spec, operations, config):
    shared, dedicated = config
    buffer_config = BufferConfig(
        shared_bytes=shared,
        dedicated_bytes_per_queue=dedicated,
        alpha=1.0,
        ecn_threshold_bytes=100,
    )
    policy = build_policy(spec, queues_per_quadrant=len(QUEUES))
    with audited() as auditor:
        buffer = SharedBuffer(buffer_config, policy=policy)
        mirror = FluidMirror(policy, buffer_config, len(QUEUES))
        held: dict[str, list] = {name: [] for name in QUEUES}
        for name in QUEUES:
            buffer.register_queue(name)
        for op, queue_index, size in operations:
            name = QUEUES[queue_index]
            if op <= 2:
                admission = buffer.admit(name, size)
                accepted, from_dedicated, from_shared = mirror.admit(queue_index, size)
                assert admission.accepted == accepted, spec.name
                if accepted:
                    assert admission.dedicated_bytes == from_dedicated
                    assert admission.shared_bytes == from_shared
                    held[name].append(admission)
            elif op == 3 and held[name]:
                admission = held[name].pop(0)
                buffer.release(name, admission)
                mirror.release(queue_index, admission)
            elif op == 4:
                buffer.tick()
                mirror.tick()
        # The two substrates hold identical state at the end of any trace.
        assert buffer.shared_occupancy == mirror.pool_used
        for index, name in enumerate(QUEUES):
            assert buffer.queue_occupancy(name) == (
                mirror.dedicated_used[index] + mirror.shared_used[index]
            )
            assert buffer.queue_active_steps(name) == mirror.active_steps[index]
    assert auditor.violations == []
