"""Concurrency, exactness, and crash-recovery suite for ``repro serve``.

Covers the service contracts end to end:

* query validation and the flight-key tag;
* single-flight coalescing — N identical concurrent queries run ONE
  generation and every subscriber sees the same event sequence;
* bit-exactness — the NDJSON ``result`` payload over real HTTP equals
  the module serializers applied to a one-shot
  :class:`ExperimentContext` (the CLI path) on a separate store;
* crash containment — SIGKILLing the pool's workers (idle and
  mid-build) yields a ``retry`` event, a replaced pool, a correct
  result, and a consistent shard store;
* the ``/metrics`` schema and the draining-shutdown behaviour.
"""

import copy
import glob
import http.client
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.config import FleetConfig
from repro.errors import ConfigError, ManifestError
from repro.experiments.context import ExperimentContext
from repro.obs.manifest import validate_service_metrics
from repro.service.core import (
    COALESCED,
    EXECUTED,
    POOL_REPLACED,
    REQUESTS,
    Query,
    QueryService,
    ServiceConfig,
    serialize_table1,
)

FLEET = FleetConfig(racks_per_region=2, runs_per_rack=2, seed=90125)


def _wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- query keys --------------------------------------------------------------


class TestQueryValidation:
    def test_tags(self):
        assert Query(kind="table1", region="RegB").tag == "table1/RegB"
        assert (
            Query(kind="figure", region="RegA", name="profiles").tag
            == "figure/RegA/profiles"
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "tables"},
            {"kind": "table1", "region": "RegC"},
            {"kind": "figure", "name": "pie_chart"},
            {"kind": "figure", "name": None},
            {"kind": "dataset", "name": "hourly_boxes"},
        ],
    )
    def test_invalid_queries_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            Query(**{"region": "RegA", **kwargs})


# -- single flight -----------------------------------------------------------


class TestSingleFlight:
    def test_identical_concurrent_queries_share_one_generation(
        self, tmp_path, monkeypatch
    ):
        service = QueryService(
            ServiceConfig(fleet=FLEET, cache_dir=str(tmp_path), request_threads=2)
        )
        try:
            release = threading.Event()
            calls = []

            def gated_execute(query, publish):
                calls.append(query)
                publish({"event": "shard", "tag": "t0", "runs": 1, "bursts": 0})
                assert release.wait(timeout=60)
                publish({"event": "shard", "tag": "t1", "runs": 2, "bursts": 0})
                return {"answer": 42}

            monkeypatch.setattr(service, "_execute", gated_execute, raising=False)

            query = Query(kind="table1", region="RegA")
            streams: list[list[dict] | None] = [None] * 5

            def client(slot: int) -> None:
                streams[slot] = list(service.stream(query))

            threads = [
                threading.Thread(target=client, args=(slot,)) for slot in range(5)
            ]
            for thread in threads:
                thread.start()
            # Hold the leader inside the body until every client has
            # requested — the late ones must coalesce, not regenerate.
            assert _wait_for(lambda: service.metrics.counter(REQUESTS) >= 5)
            release.set()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()

            assert len(calls) == 1  # ONE generation for five requests
            assert service.metrics.counter(COALESCED) == 4
            assert service.metrics.counter(EXECUTED) == 1
            coalesced_flags = sorted(events[0]["coalesced"] for events in streams)
            assert coalesced_flags == [False, True, True, True, True]
            # Identical event sequences for every subscriber, whether it
            # watched live or replayed the recorded prefix.
            reference = streams[0][1:]
            assert reference == [
                {"event": "shard", "tag": "t0", "runs": 1, "bursts": 0},
                {"event": "shard", "tag": "t1", "runs": 2, "bursts": 0},
                {"event": "result", "data": {"answer": 42}},
            ]
            for events in streams[1:]:
                assert events[1:] == reference
        finally:
            service.shutdown()


# -- HTTP transport and CLI equivalence --------------------------------------


@pytest.fixture
def served(tmp_path):
    """A real server (TCP + unix socket) on its own thread, plus the
    loop handle needed to stop it from the test thread."""
    import asyncio

    from repro.service.server import ReproServer

    service = QueryService(
        ServiceConfig(
            fleet=FLEET,
            cache_dir=str(tmp_path / "cache"),
            store_dir=str(tmp_path / "store"),
            shard_racks=1,
            shard_hours=12,
            request_threads=2,
        )
    )
    socket_path = str(tmp_path / "repro.sock")
    server = ReproServer(service, host="127.0.0.1", port=0, unix_socket=socket_path)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_until_complete(server.serve_forever(install_signals=False))
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=30)
    yield server, service, socket_path
    loop.call_soon_threadsafe(server.request_stop)
    thread.join(timeout=120)
    assert not thread.is_alive()
    assert service.healthz()["status"] == "draining"


def _get_ndjson(port: int, target: str) -> list[dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        body = response.read()  # http.client strips the chunked framing
    finally:
        conn.close()
    return [json.loads(line) for line in body.decode("utf-8").splitlines()]


def _get_json(port: int, target: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHTTPService:
    def test_serve_matches_one_shot_cli_bit_for_bit(self, served, tmp_path):
        server, _service, socket_path = served
        port = server.bound_port

        status, health = _get_json(port, "/healthz")
        assert status == 200 and health["status"] == "ok"

        events = _get_ndjson(port, "/v1/table1?region=RegA")
        assert events[0] == {
            "event": "start",
            "query": "table1/RegA",
            "coalesced": False,
        }
        assert any(e["event"] == "shard" for e in events)
        assert events[-1]["event"] == "result"

        # The one-shot CLI path: a fresh context on a separate cache,
        # serialized through the same module-level projection.
        oracle_ctx = ExperimentContext(
            fleet=FLEET, cache_dir=str(tmp_path / "oracle-cache")
        )
        oracle = serialize_table1(oracle_ctx.table1_row("RegA"))
        assert json.dumps(events[-1]["data"], sort_keys=True) == json.dumps(
            oracle, sort_keys=True
        )

        # Re-issuing the query hits the memoized dataset and returns the
        # identical payload (no shard events: nothing is rebuilt).
        again = _get_ndjson(port, "/v1/table1?region=RegA")
        assert again[-1] == events[-1]
        assert not any(e["event"] == "shard" for e in again)

    def test_error_routes(self, served):
        server, _service, _socket_path = served
        port = server.bound_port
        status, body = _get_json(port, "/v1/figure?region=RegA&name=pie_chart")
        assert status == 400 and "pie_chart" in body["error"]
        status, _body = _get_json(port, "/nope")
        assert status == 404

    def test_metrics_endpoint_is_schema_valid(self, served):
        server, service, _socket_path = served
        port = server.bound_port
        _get_ndjson(port, "/v1/dataset?region=RegA")
        status, document = _get_json(port, "/metrics")
        assert status == 200
        validate_service_metrics(document)  # must not raise
        assert document["service"]["requests"] >= 1
        assert document["config"]["racks_per_region"] == FLEET.racks_per_region
        assert service.pool_jobs() == document["service"]["pool_jobs"]

    def test_unix_socket_listener(self, served):
        _server, _service, socket_path = served
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30)
            sock.connect(socket_path)
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: repro\r\n\r\n")
            raw = b""
            while True:  # Connection: close — read to EOF
                piece = sock.recv(65536)
                if not piece:
                    break
                raw += piece
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200 OK" in head.split(b"\r\n", 1)[0]
        assert json.loads(body)["status"] == "ok"


# -- crash containment -------------------------------------------------------


class TestCrashRecovery:
    def _service(self, tmp_path) -> QueryService:
        return QueryService(
            ServiceConfig(
                fleet=FLEET,
                cache_dir=str(tmp_path / "cache"),
                store_dir=str(tmp_path / "store"),
                shard_racks=1,
                shard_hours=12,
                request_threads=1,
            )
        )

    def _kill_workers(self, service: QueryService) -> None:
        for pid in list(service.context.pool._processes):
            os.kill(pid, signal.SIGKILL)

    def test_idle_worker_kill_is_retried_transparently(self, tmp_path):
        service = self._service(tmp_path)
        try:
            self._kill_workers(service)
            assert _wait_for(lambda: service.context.pool._broken)
            events = list(service.stream(Query(kind="table1", region="RegA")))
            assert any(e.get("event") == "retry" for e in events)
            assert events[-1]["event"] == "result"
            assert service.metrics.counter(POOL_REPLACED) == 1
            # The replacement pool serves subsequent queries normally.
            again = list(service.stream(Query(kind="table1", region="RegA")))
            assert again[-1] == events[-1]
            assert service.metrics.counter(POOL_REPLACED) == 1
        finally:
            service.shutdown()

    def test_mid_build_worker_kill_leaves_store_consistent(self, tmp_path):
        service = self._service(tmp_path)
        try:
            box: dict = {}

            def client() -> None:
                box["events"] = list(
                    service.stream(Query(kind="table1", region="RegB"))
                )

            thread = threading.Thread(target=client)
            thread.start()
            # Kill the moment the first shard file lands: the build is
            # mid-flight, the manifest (written last) does not exist yet.
            store_glob = os.path.join(str(tmp_path / "store"), "**", "*.npy")
            assert _wait_for(lambda: glob.glob(store_glob, recursive=True))
            self._kill_workers(service)
            thread.join(timeout=300)
            assert not thread.is_alive()

            events = box["events"]
            assert any(e.get("event") == "retry" for e in events)
            assert events[-1]["event"] == "result"
            assert service.metrics.counter(POOL_REPLACED) == 1
            # Store consistency: the crashed build read as a miss and the
            # retry republished; a fresh one-shot context on the same
            # store now opens it without rebuilding and agrees exactly.
            verify_ctx = ExperimentContext(
                fleet=FLEET,
                cache_dir=str(tmp_path / "verify-cache"),
                store_dir=str(tmp_path / "store"),
                shard_racks=1,
                shard_hours=12,
            )
            oracle = serialize_table1(verify_ctx.table1_row("RegB"))
            assert json.dumps(events[-1]["data"], sort_keys=True) == json.dumps(
                oracle, sort_keys=True
            )
        finally:
            service.shutdown()


# -- metrics schema and lifecycle --------------------------------------------


class TestLifecycleAndMetrics:
    def test_metrics_document_round_trip_and_tamper(self, tmp_path):
        service = QueryService(
            ServiceConfig(fleet=FLEET, cache_dir=str(tmp_path), request_threads=1)
        )
        try:
            document = service.metrics_document()
            validate_service_metrics(document)  # must not raise
            tampered = copy.deepcopy(document)
            tampered["service"]["requests"] = "many"
            with pytest.raises(ManifestError):
                validate_service_metrics(tampered)
            missing = copy.deepcopy(document)
            del missing["service"]["pool_jobs"]
            with pytest.raises(ManifestError):
                validate_service_metrics(missing)
        finally:
            service.shutdown()

    def test_shutdown_drains_and_rejects_new_queries(self, tmp_path):
        service = QueryService(
            ServiceConfig(fleet=FLEET, cache_dir=str(tmp_path), request_threads=1)
        )
        service.shutdown()
        service.shutdown()  # idempotent
        assert service.healthz()["status"] == "draining"
        assert service.cancel_event.is_set()
        with pytest.raises(ConfigError):
            list(service.stream(Query(kind="table1", region="RegA")))
