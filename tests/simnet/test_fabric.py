"""Tests for the fabric layer and multi-rack pods."""

import pytest

from repro import units
from repro.config import BufferConfig
from repro.errors import SimulationError
from repro.simnet.fabric import FABRIC_BUFFER, build_pod
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.tcp import DctcpControl, open_connection


class TestBuildPod:
    def test_pod_wiring(self):
        pod = build_pod(racks=3, servers_per_rack=4)
        assert len(pod.racks) == 3
        assert pod.fabric.racks == ["rack0", "rack1", "rack2"]
        assert pod.host("rack1-s2").name == "rack1-s2"

    def test_unknown_host_rejected(self):
        pod = build_pod(racks=1, servers_per_rack=2)
        with pytest.raises(SimulationError):
            pod.host("ghost")

    def test_zero_racks_rejected(self):
        with pytest.raises(SimulationError):
            build_pod(racks=0)

    def test_double_attach_rejected(self):
        pod = build_pod(racks=1, servers_per_rack=2)
        with pytest.raises(SimulationError):
            pod.fabric.attach_rack(pod.racks[0])


class TestCrossRackForwarding:
    def test_intra_rack_bypasses_fabric(self):
        pod = build_pod(racks=2, servers_per_rack=4)
        a, b = pod.racks[0].hosts[0], pod.racks[0].hosts[1]
        received = []
        b.default_handler = received.append
        a.send(Packet(a.name, b.name, 1000, FlowKey(a.name, b.name)))
        pod.engine.run()
        assert len(received) == 1
        assert pod.fabric.forwarded_bytes == 0

    def test_cross_rack_goes_through_fabric(self):
        pod = build_pod(racks=2, servers_per_rack=4)
        a, b = pod.racks[0].hosts[0], pod.racks[1].hosts[0]
        received = []
        b.default_handler = received.append
        a.send(Packet(a.name, b.name, 1000, FlowKey(a.name, b.name)))
        pod.engine.run()
        assert len(received) == 1
        assert pod.fabric.forwarded_bytes == 1000

    def test_cross_rack_tcp_transfer(self):
        pod = build_pod(racks=3, servers_per_rack=4)
        sender, receiver = open_connection(
            pod.racks[0].hosts[0], pod.racks[2].hosts[1], DctcpControl(mss=1448)
        )
        sender.send(1_000_000)
        pod.engine.run_until(1.0)
        assert sender.done
        assert receiver.received_payload == 1_000_000

    def test_unroutable_destination_rejected(self):
        pod = build_pod(racks=1, servers_per_rack=2)
        with pytest.raises(SimulationError):
            pod.fabric.forward(Packet("x", "nowhere", 100, FlowKey("x", "nowhere")))


class TestFabricBuffering:
    def test_fabric_has_larger_headroom_than_tor(self):
        """The Section 8.1 premise: the fabric's ASICs have larger
        buffers (and faster links) than the studied ToRs."""
        tor = BufferConfig()
        assert FABRIC_BUFFER.shared_bytes > 4 * tor.shared_bytes
        assert FABRIC_BUFFER.alpha >= tor.alpha

    def test_fabric_discards_under_extreme_fanin(self):
        """Cram many racks' uplinks into one downlink: the fabric buffer
        eventually discards, and the counter records it."""
        pod = build_pod(
            racks=4,
            servers_per_rack=2,
            fabric_buffer=BufferConfig(
                shared_bytes=50_000, dedicated_bytes_per_queue=0,
                alpha=1.0, ecn_threshold_bytes=1e12,
            ),
        )
        # Slow the target downlink so the burst must queue.
        pod.fabric._downlinks["rack0"].rate = units.gbps(1)
        target = pod.racks[0].hosts[0]
        flows = 0
        for rack in pod.racks[1:]:
            for host in rack.hosts:
                flow = FlowKey(host.name, target.name, 7000 + flows, 7000)
                for k in range(20):
                    host.send(
                        Packet(host.name, target.name, 16_000, flow, seq=k * 16_000,
                               payload=16_000)
                    )
                flows += 1
        pod.engine.run_until(1.0)
        assert pod.fabric.discard_bytes > 0

    def test_downlink_occupancy_visible(self):
        pod = build_pod(racks=2, servers_per_rack=2)
        assert pod.fabric.downlink_occupancy("rack1") == 0
        with pytest.raises(SimulationError):
            pod.fabric.downlink_occupancy("ghost")


class TestFabricSmoothing:
    def test_fabric_smooths_bursts_arriving_at_tor(self):
        """Section 8.1: fabric traversal results in 'somewhat smoother
        bursts arriving downstream at the racks' — a burst that would
        arrive at 4x the server rate is paced by the fabric downlink
        and the ToR sees a longer, flatter arrival."""
        pod = build_pod(racks=2, servers_per_rack=2)
        # Constrain the downlink to just above server speed.
        pod.fabric._downlinks["rack0"].rate = units.gbps(25)
        target = pod.racks[0].hosts[0]
        source = pod.racks[1].hosts[0]
        source.uplink.rate = units.gbps(100)  # bursts at 8x server rate
        arrivals = []
        target.default_handler = lambda p: arrivals.append(pod.engine.now)
        flow = FlowKey(source.name, target.name, 1, 2)
        for k in range(64):
            source.send(
                Packet(source.name, target.name, 16_000, flow, seq=k * 16_000,
                       payload=16_000)
            )
        pod.engine.run_until(1.0)
        assert len(arrivals) == 64
        span = max(arrivals) - min(arrivals)
        # At 100 Gbps the 1 MB burst spans ~82 us; after the 25 Gbps
        # fabric hop and the 12.5 Gbps server link it is stretched well
        # past that — smoothing.
        assert span > 3 * (64 * 16_000 / units.gbps(100))
