"""Tests for host clocks and NTP discipline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.clock import HostClock, NtpDiscipline, max_pairwise_skew


class TestHostClock:
    def test_perfect_clock(self):
        clock = HostClock()
        assert clock.read(123.456) == 123.456
        assert clock.error_at(50.0) == 0.0

    def test_offset(self):
        clock = HostClock(offset=0.001)
        assert clock.read(10.0) == pytest.approx(10.001)

    def test_drift_accumulates(self):
        clock = HostClock(drift_ppm=10.0, epoch=0.0)
        assert clock.error_at(100.0) == pytest.approx(100.0 * 10e-6)

    @given(
        offset=st.floats(-1e-3, 1e-3),
        drift=st.floats(-50, 50),
        t=st.floats(0, 1e5),
    )
    @settings(max_examples=50)
    def test_invert_roundtrip(self, offset, drift, t):
        clock = HostClock(offset=offset, drift_ppm=drift)
        host_time = clock.read(t)
        assert clock.invert(host_time) == pytest.approx(t, abs=1e-6)


class TestNtpDiscipline:
    def test_offsets_bounded(self):
        discipline = NtpDiscipline(
            offset_std=100e-6, max_offset=500e-6, rng=np.random.default_rng(0)
        )
        clocks = discipline.make_clocks(200)
        assert all(abs(clock.offset) <= 500e-6 for clock in clocks)

    def test_sub_millisecond_skew(self):
        """Section 4.5: host clocks are synchronized well below the 1 ms
        sampling interval."""
        discipline = NtpDiscipline(rng=np.random.default_rng(1))
        clocks = discipline.make_clocks(100)
        assert max_pairwise_skew(clocks, true_time=10.0) < 1.1e-3

    def test_empty_skew(self):
        assert max_pairwise_skew([], 0.0) == 0.0

    def test_deterministic_given_rng(self):
        a = NtpDiscipline(rng=np.random.default_rng(7)).make_clock()
        b = NtpDiscipline(rng=np.random.default_rng(7)).make_clock()
        assert a.offset == b.offset
        assert a.drift_ppm == b.drift_ppm
