"""Tests for the shared-memory buffer with dynamic thresholds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BufferConfig
from repro.errors import SimulationError
from repro.simnet.buffer import SharedBuffer


def make_buffer(alpha=1.0, shared=1000, dedicated=0.0) -> SharedBuffer:
    return SharedBuffer(
        BufferConfig(
            shared_bytes=shared,
            dedicated_bytes_per_queue=dedicated,
            alpha=alpha,
            ecn_threshold_bytes=100,
        )
    )


class TestDynamicThreshold:
    def test_empty_buffer_threshold(self):
        buffer = make_buffer(alpha=1.0, shared=1000)
        assert buffer.threshold() == 1000.0

    def test_threshold_shrinks_with_occupancy(self):
        buffer = make_buffer(alpha=1.0, shared=1000)
        buffer.register_queue("q0")
        buffer.admit("q0", 400)
        assert buffer.threshold() == 600.0

    def test_single_queue_limited_to_half_at_alpha_1(self):
        """Section 3: 'the maximum buffer that a single queue can
        consume in an otherwise empty buffer is 50%'."""
        buffer = make_buffer(alpha=1.0, shared=1000)
        buffer.register_queue("q0")
        admitted = 0
        while buffer.admit("q0", 10).accepted:
            admitted += 10
        assert admitted == pytest.approx(500, abs=10)

    def test_two_queues_get_a_third_each(self):
        buffer = make_buffer(alpha=1.0, shared=900)
        for name in ("q0", "q1"):
            buffer.register_queue(name)
        admitted = {"q0": 0, "q1": 0}
        progress = True
        while progress:
            progress = False
            for name in admitted:
                if buffer.admit(name, 10).accepted:
                    admitted[name] += 10
                    progress = True
        assert admitted["q0"] == pytest.approx(300, abs=20)
        assert admitted["q1"] == pytest.approx(300, abs=20)

    def test_alpha_2_single_queue_gets_two_thirds(self):
        buffer = make_buffer(alpha=2.0, shared=900)
        buffer.register_queue("q0")
        admitted = 0
        while buffer.admit("q0", 10).accepted:
            admitted += 10
        assert admitted == pytest.approx(600, abs=10)


class TestAdmission:
    def test_dedicated_consumed_first(self):
        buffer = make_buffer(shared=1000, dedicated=100)
        buffer.register_queue("q0")
        admission = buffer.admit("q0", 80)
        assert admission.accepted
        assert admission.dedicated_bytes == 80
        assert admission.shared_bytes == 0

    def test_spill_into_shared(self):
        buffer = make_buffer(shared=1000, dedicated=100)
        buffer.register_queue("q0")
        admission = buffer.admit("q0", 150)
        assert admission.dedicated_bytes == 100
        assert admission.shared_bytes == 50
        assert buffer.shared_occupancy == 50

    def test_atomic_rejection(self):
        """A packet that does not fully fit is rejected whole."""
        buffer = make_buffer(alpha=1.0, shared=100, dedicated=0)
        buffer.register_queue("q0")
        buffer.admit("q0", 45)
        # Threshold is now 55; a 60-byte packet must be rejected whole.
        admission = buffer.admit("q0", 60)
        assert not admission.accepted
        assert buffer.shared_occupancy == 45

    def test_discard_accounting(self):
        buffer = make_buffer(shared=100)
        buffer.register_queue("q0")
        buffer.admit("q0", 60)
        buffer.admit("q0", 60)
        packets, size = buffer.discards("q0")
        assert packets == 1
        assert size == 60
        assert buffer.total_discard_bytes() == 60

    def test_unknown_queue_rejected(self):
        buffer = make_buffer()
        with pytest.raises(SimulationError):
            buffer.admit("missing", 10)

    def test_duplicate_registration_rejected(self):
        buffer = make_buffer()
        buffer.register_queue("q0")
        with pytest.raises(SimulationError):
            buffer.register_queue("q0")

    def test_zero_size_rejected(self):
        buffer = make_buffer()
        buffer.register_queue("q0")
        with pytest.raises(SimulationError):
            buffer.admit("q0", 0)


class TestRelease:
    def test_release_returns_bytes(self):
        buffer = make_buffer(shared=1000, dedicated=50)
        buffer.register_queue("q0")
        admission = buffer.admit("q0", 120)
        buffer.release("q0", admission)
        assert buffer.shared_occupancy == 0
        assert buffer.queue_occupancy("q0") == 0

    def test_double_release_rejected(self):
        buffer = make_buffer(shared=1000)
        buffer.register_queue("q0")
        admission = buffer.admit("q0", 100)
        buffer.release("q0", admission)
        with pytest.raises(SimulationError):
            buffer.release("q0", admission)

    def test_release_rejected_admission(self):
        buffer = make_buffer(shared=10)
        buffer.register_queue("q0")
        rejected = buffer.admit("q0", 100)
        with pytest.raises(SimulationError):
            buffer.release("q0", rejected)

    def test_double_release_with_other_bytes_outstanding_is_silent(self):
        """The buffer's own guard only fires on counter underflow: a
        double release while other admissions keep the counters positive
        silently corrupts occupancy.  This pins down why the audit tap's
        release-once law exists (see tests/simnet/test_audit.py for the
        auditor catching it)."""
        buffer = make_buffer(shared=1000)
        buffer.register_queue("q0")
        first = buffer.admit("q0", 100)
        buffer.admit("q0", 100)
        buffer.release("q0", first)
        buffer.release("q0", first)  # no underflow -> no error
        # Occupancy is now wrong: 100 admitted bytes remain buffered but
        # the counters read zero.
        assert buffer.queue_occupancy("q0") == 0
        assert buffer.shared_occupancy == 0

    def test_partial_release_keeps_remaining_charges(self):
        """Releasing one of several admissions returns exactly that
        admission's dedicated/shared split and leaves the rest charged."""
        buffer = make_buffer(shared=1000, dedicated=150)
        buffer.register_queue("q0")
        first = buffer.admit("q0", 100)   # all dedicated
        second = buffer.admit("q0", 100)  # 50 dedicated + 50 shared
        assert (second.dedicated_bytes, second.shared_bytes) == (50, 50)
        buffer.release("q0", second)
        assert buffer.queue_occupancy("q0") == 100
        assert buffer.shared_occupancy == 0
        buffer.release("q0", first)
        assert buffer.queue_occupancy("q0") == 0

    def test_reset_counters_mid_run_preserves_occupancy(self):
        """A per-minute counter rollover zeroes the cumulative counters
        but must not touch live buffer state: outstanding admissions
        stay charged and releasable."""
        buffer = make_buffer(shared=1000, dedicated=50)
        buffer.register_queue("q0")
        held = buffer.admit("q0", 200)
        buffer.admit("q0", 2000)  # discarded
        buffer.reset_counters()
        assert buffer.total_admitted_bytes() == 0
        assert buffer.total_discard_bytes() == 0
        assert buffer.queue_occupancy("q0") == 200
        assert buffer.shared_occupancy == 150
        # Post-reset traffic accounts from zero; the held admission
        # still releases cleanly.
        buffer.admit("q0", 100)
        assert buffer.total_admitted_bytes() == 100
        buffer.release("q0", held)
        assert buffer.queue_occupancy("q0") == 100


class TestActiveQueues:
    def test_active_queue_counting(self):
        buffer = make_buffer(shared=1000)
        for name in ("a", "b", "c"):
            buffer.register_queue(name)
        assert buffer.active_queues() == 0
        buffer.admit("a", 10)
        keep = buffer.admit("b", 10)
        assert buffer.active_queues() == 2
        buffer.release("b", keep)
        assert buffer.active_queues() == 1

    def test_counters_reset(self):
        buffer = make_buffer(shared=50)
        buffer.register_queue("q0")
        buffer.admit("q0", 40)
        buffer.admit("q0", 40)  # discarded
        buffer.reset_counters()
        assert buffer.total_discard_bytes() == 0
        assert buffer.total_admitted_bytes() == 0


class TestInvariants:
    @given(
        operations=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 400)), max_size=200
        )
    )
    @settings(max_examples=40)
    def test_occupancy_never_exceeds_capacity(self, operations):
        """Under any admission sequence, shared occupancy stays within
        [0, shared_bytes] and per-queue accounting is consistent."""
        buffer = make_buffer(alpha=2.0, shared=1000, dedicated=50)
        queues = [f"q{i}" for i in range(4)]
        for name in queues:
            buffer.register_queue(name)
        held: list[tuple[str, object]] = []
        for queue_index, size in operations:
            name = queues[queue_index]
            admission = buffer.admit(name, size)
            if admission.accepted:
                held.append((name, admission))
            assert 0 <= buffer.shared_occupancy <= 1000
        total_queue_shared = sum(
            max(buffer.queue_occupancy(name) - 50, 0) for name in queues
        )
        # Per-queue occupancies must be consistent with the pool.
        assert buffer.shared_occupancy <= total_queue_shared + 1e-9
        for name, admission in held:
            buffer.release(name, admission)
        assert buffer.shared_occupancy == 0
