"""Tests for hosts, tap chains, and rack topology assembly."""

import numpy as np
import pytest

from repro.config import SamplerConfig
from repro.core.millisampler import Direction
from repro.errors import SimulationError
from repro.simnet.host import Host
from repro.simnet.engine import Engine
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.tap import TapChain, rss_cpu
from repro.simnet.topology import build_rack


class RecordingTap:
    def __init__(self):
        self.seen = []

    def on_packet(self, packet, direction, now):
        self.seen.append((packet.packet_id, direction, now))


class TestTapChain:
    def test_dispatch_order(self):
        chain = TapChain()
        first, second = RecordingTap(), RecordingTap()
        chain.attach(first)
        chain.attach(second)
        packet = Packet("a", "b", 100, FlowKey("a", "b"))
        chain.dispatch(packet, Direction.INGRESS, 1.0)
        assert first.seen and second.seen

    def test_double_attach_rejected(self):
        chain = TapChain()
        tap = RecordingTap()
        chain.attach(tap)
        with pytest.raises(ValueError):
            chain.attach(tap)

    def test_detach(self):
        chain = TapChain()
        tap = RecordingTap()
        chain.attach(tap)
        chain.detach(tap)
        assert len(chain) == 0

    def test_rss_cpu_consistent_per_flow(self):
        packet1 = Packet("a", "b", 10, FlowKey("a", "b", 1, 2))
        packet2 = Packet("a", "b", 99, FlowKey("a", "b", 1, 2))
        assert rss_cpu(packet1, 8) == rss_cpu(packet2, 8)


class TestHost:
    def test_send_requires_connection(self):
        host = Host(Engine(), "h0")
        with pytest.raises(SimulationError):
            host.send(Packet("h0", "x", 100, FlowKey("h0", "x")))

    def test_send_rejects_spoofed_source(self):
        host = Host(Engine(), "h0")
        host.connect(lambda p: None)
        with pytest.raises(SimulationError):
            host.send(Packet("other", "x", 100, FlowKey("other", "x")))

    def test_taps_see_both_directions(self):
        engine = Engine()
        host = Host(engine, "h0")
        host.connect(lambda p: None)
        tap = RecordingTap()
        host.taps.attach(tap)
        host.send(Packet("h0", "x", 100, FlowKey("h0", "x")))
        host.deliver(Packet("x", "h0", 200, FlowKey("x", "h0")))
        directions = [d for _, d, _ in tap.seen]
        assert Direction.EGRESS in directions
        assert Direction.INGRESS in directions

    def test_flow_demux(self):
        host = Host(Engine(), "h0")
        flow = FlowKey("x", "h0", 5, 6)
        got = []
        host.register_flow(flow, got.append)
        fallback = []
        host.default_handler = fallback.append
        host.deliver(Packet("x", "h0", 100, flow))
        host.deliver(Packet("y", "h0", 100, FlowKey("y", "h0", 7, 8)))
        assert len(got) == 1
        assert len(fallback) == 1

    def test_duplicate_flow_registration_rejected(self):
        host = Host(Engine(), "h0")
        flow = FlowKey("x", "h0")
        host.register_flow(flow, lambda p: None)
        with pytest.raises(SimulationError):
            host.register_flow(flow, lambda p: None)


class TestBuildRack:
    def test_rack_fully_wired(self):
        rack = build_rack(servers=4)
        assert len(rack.hosts) == 4
        assert len(rack.sampled_hosts) == 4
        assert set(rack.switch.servers) == {host.name for host in rack.hosts}

    def test_hosts_can_exchange_traffic(self):
        rack = build_rack(servers=2)
        received = []
        rack.hosts[1].default_handler = received.append
        rack.hosts[0].send(
            Packet(rack.hosts[0].name, rack.hosts[1].name, 1000,
                   FlowKey(rack.hosts[0].name, rack.hosts[1].name))
        )
        rack.engine.run()
        assert len(received) == 1

    def test_millisampler_attached_to_each_host(self):
        rack = build_rack(servers=3)
        for host in rack.hosts:
            assert len(host.taps) == 1

    def test_clock_offsets_are_sub_millisecond(self):
        rack = build_rack(servers=10, rng=np.random.default_rng(0))
        offsets = [abs(host.clock.offset) for host in rack.hosts]
        assert max(offsets) < 1e-3

    def test_sampler_config_respected(self):
        rack = build_rack(servers=2, sampler_config=SamplerConfig(buckets=500, cpus=2))
        assert rack.sampled_hosts[0].sampler.buckets == 500
        assert rack.sampled_hosts[0].sampler.cpus == 2

    def test_lookup_helpers(self):
        rack = build_rack(servers=2)
        name = rack.hosts[1].name
        assert rack.host_by_name(name) is rack.hosts[1]
        assert rack.sampled_host_by_name(name).name == name
        with pytest.raises(SimulationError):
            rack.host_by_name("ghost")

    def test_invalid_server_count(self):
        with pytest.raises(SimulationError):
            build_rack(servers=0)
