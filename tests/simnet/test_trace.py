"""Tests for the trace tap and sampler-vs-trace cross-validation."""

import numpy as np
import pytest

from repro.core.millisampler import Direction
from repro.errors import SimulationError
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.topology import build_rack
from repro.simnet.trace import TraceTap
from repro.simnet.tcp import DctcpControl, open_connection


class TestTraceTap:
    def test_records_packets(self):
        tap = TraceTap()
        packet = Packet("a", "b", 100, FlowKey("a", "b", 1, 2))
        tap.on_packet(packet, Direction.INGRESS, 1.0)
        assert len(tap.entries) == 1
        assert tap.entries[0].size == 100
        assert tap.total_bytes() == 100

    def test_direction_filter(self):
        tap = TraceTap()
        packet = Packet("a", "b", 100, FlowKey("a", "b"))
        tap.on_packet(packet, Direction.INGRESS, 1.0)
        tap.on_packet(packet, Direction.EGRESS, 1.0)
        assert tap.total_bytes(Direction.INGRESS) == 100
        assert tap.total_bytes() == 200

    def test_truncation_guard(self):
        tap = TraceTap(max_entries=2)
        packet = Packet("a", "b", 100, FlowKey("a", "b"))
        for _ in range(5):
            tap.on_packet(packet, Direction.INGRESS, 1.0)
        assert len(tap.entries) == 2
        assert tap.truncated

    def test_bucketize(self):
        tap = TraceTap()
        packet = Packet("a", "b", 100, FlowKey("a", "b"))
        tap.on_packet(packet, Direction.INGRESS, 0.0005)
        tap.on_packet(packet, Direction.INGRESS, 0.0015)
        tap.on_packet(packet, Direction.INGRESS, 0.0016)
        series = tap.bucketize(1e-3, start=0.0, buckets=3)
        assert series.tolist() == [100, 200, 0]

    def test_bucketize_validation(self):
        with pytest.raises(SimulationError):
            TraceTap().bucketize(0)

    def test_flows_and_clear(self):
        tap = TraceTap()
        tap.on_packet(Packet("a", "b", 1, FlowKey("a", "b", 1, 1)), Direction.INGRESS, 0)
        tap.on_packet(Packet("a", "b", 1, FlowKey("a", "b", 2, 2)), Direction.INGRESS, 0)
        assert len(tap.flows()) == 2
        tap.clear()
        assert tap.entries == []


class TestSamplerAgainstGroundTruth:
    def test_sampler_counters_match_trace_exactly(self):
        """Millisampler's per-bucket counters must equal the ground-truth
        trace bucketization — the sampler loses no bytes."""
        rack = build_rack(servers=2, rng=np.random.default_rng(0))
        receiver = rack.hosts[1]
        trace = TraceTap()
        receiver.taps.attach(trace)

        sampled = rack.sampled_host_by_name(receiver.name)
        sampler = sampled.sampler
        sampler.attach()
        sampler.enable()

        sender, _ = open_connection(rack.hosts[0], receiver, DctcpControl(mss=1448))
        sender.send(1_000_000)
        rack.engine.run_until(0.5)
        sampler.finish(now=rack.engine.now + sampler.duration)
        run = sampler.read_run()

        # Compare on the host-clock time base the sampler used.
        start = sampler.start_time
        clock = receiver.clock
        truth = np.zeros(run.buckets)
        for entry in trace.entries:
            if entry.direction is not Direction.INGRESS:
                continue
            bucket = int((clock.read(entry.time) - start) / run.meta.sampling_interval)
            if 0 <= bucket < run.buckets:
                truth[bucket] += entry.size
        np.testing.assert_allclose(run.in_bytes, truth)
