"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simnet.engine import Engine


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.at(3.0, lambda: order.append("c"))
        engine.at(1.0, lambda: order.append("a"))
        engine.at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.at(1.0, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.at(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_after_is_relative(self):
        engine = Engine(start_time=10.0)
        seen = []
        engine.after(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [11.5]

    def test_scheduling_in_past_rejected(self):
        engine = Engine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.after(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: fired.append(1))
        engine.at(3.0, lambda: fired.append(3))
        engine.run_until(2.0)
        assert fired == [1]
        assert engine.now == 2.0
        assert engine.pending == 1

    def test_events_can_schedule_events(self):
        engine = Engine()
        results = []

        def chain(depth: int) -> None:
            results.append(depth)
            if depth < 3:
                engine.after(1.0, lambda: chain(depth + 1))

        engine.at(0.0, lambda: chain(0))
        engine.run()
        assert results == [0, 1, 2, 3]
        assert engine.now == 3.0

    def test_event_budget_guards_loops(self):
        engine = Engine()

        def forever() -> None:
            engine.after(0.0, forever)

        engine.at(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_exact_budget_drains_heap_without_raising(self):
        """Regression: draining exactly ``max_events`` events is success,
        not budget exhaustion — the guard must check whether events
        remain before raising."""
        engine = Engine()
        for index in range(100):
            engine.at(float(index), lambda: None)
        engine.run(max_events=100)
        assert engine.events_run == 100
        assert engine.pending == 0

    def test_budget_one_short_still_raises(self):
        engine = Engine()
        for index in range(101):
            engine.at(float(index), lambda: None)
        with pytest.raises(SimulationError, match="budget exhausted"):
            engine.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
    @settings(max_examples=30)
    def test_execution_order_is_sorted(self, times):
        engine = Engine()
        executed = []
        for t in times:
            engine.at(t, lambda t=t: executed.append(t))
        engine.run()
        assert executed == sorted(times)
