"""Direct tests for the egress queue."""

import pytest

from repro.config import BufferConfig
from repro.errors import SimulationError
from repro.simnet.buffer import SharedBuffer
from repro.simnet.engine import Engine
from repro.simnet.packet import FlowKey, Packet
from repro.simnet.queues import EgressQueue


def make_queue(rate=1000.0, shared=10_000, dedicated=0, propagation=0.0):
    engine = Engine()
    buffer = SharedBuffer(
        BufferConfig(
            shared_bytes=shared, dedicated_bytes_per_queue=dedicated,
            alpha=1.0, ecn_threshold_bytes=100,
        )
    )
    delivered = []
    queue = EgressQueue(
        engine, buffer, "q0", rate,
        on_dequeue=lambda p: delivered.append((engine.now, p)),
        propagation_delay=propagation,
    )
    return engine, buffer, queue, delivered


def packet(size=100):
    return Packet("a", "b", size, FlowKey("a", "b"))


class TestEgressQueue:
    def test_fifo_order(self):
        engine, _, queue, delivered = make_queue()
        first, second = packet(100), packet(100)
        queue.enqueue(first)
        queue.enqueue(second)
        engine.run()
        assert [p.packet_id for _, p in delivered] == [
            first.packet_id, second.packet_id,
        ]

    def test_drain_rate_spacing(self):
        engine, _, queue, delivered = make_queue(rate=1000.0)
        queue.enqueue(packet(100))
        queue.enqueue(packet(100))
        engine.run()
        times = [t for t, _ in delivered]
        assert times[0] == pytest.approx(0.1)
        assert times[1] == pytest.approx(0.2)

    def test_propagation_delay_added(self):
        engine, _, queue, delivered = make_queue(rate=1000.0, propagation=0.05)
        queue.enqueue(packet(100))
        engine.run()
        assert delivered[0][0] == pytest.approx(0.15)

    def test_buffer_released_on_dequeue(self):
        engine, buffer, queue, _ = make_queue()
        queue.enqueue(packet(100))
        assert buffer.queue_occupancy("q0") == 100
        engine.run()
        assert buffer.queue_occupancy("q0") == 0

    def test_rejected_when_buffer_full(self):
        engine, buffer, queue, _ = make_queue(rate=1.0, shared=150)
        assert queue.enqueue(packet(100))
        # Threshold is now 50 (alpha=1): the second packet is rejected.
        assert not queue.enqueue(packet(100))
        assert buffer.total_discard_bytes() == 100

    def test_occupancy_and_len(self):
        engine, _, queue, _ = make_queue(rate=1.0)
        queue.enqueue(packet(100))
        queue.enqueue(packet(50))
        assert len(queue) == 2
        assert queue.occupancy == 150

    def test_counters(self):
        engine, _, queue, _ = make_queue()
        queue.enqueue(packet(100))
        queue.enqueue(packet(200))
        engine.run()
        assert queue.dequeued_packets == 2
        assert queue.dequeued_bytes == 300

    def test_drain_restarts_after_idle(self):
        engine, _, queue, delivered = make_queue(rate=1000.0)
        queue.enqueue(packet(100))
        engine.run()
        engine.at(1.0, lambda: queue.enqueue(packet(100)))
        engine.run()
        assert len(delivered) == 2
        assert delivered[1][0] == pytest.approx(1.1)

    def test_invalid_rate_rejected(self):
        engine = Engine()
        buffer = SharedBuffer(BufferConfig(shared_bytes=100, dedicated_bytes_per_queue=0))
        with pytest.raises(SimulationError):
            EgressQueue(engine, buffer, "q", 0.0, on_dequeue=lambda p: None)
