"""Tests for the TCP stacks: reliability, loss recovery, DCTCP, Cubic."""

import pytest

from repro import units
from repro.config import BufferConfig, RackConfig
from repro.simnet.tcp import CubicControl, DctcpControl, RenoControl, open_connection
from repro.simnet.tcp.base import TcpSender
from repro.simnet.topology import build_rack


def run_transfer(nbytes, control_factory, servers=2, rack_config=None, until=2.0):
    rack = build_rack(servers=servers, rack_config=rack_config)
    sender, receiver = open_connection(
        rack.hosts[0], rack.hosts[1], control_factory()
    )
    sender.send(nbytes)
    rack.engine.run_until(until)
    return rack, sender, receiver


class TestReliableDelivery:
    @pytest.mark.parametrize(
        "control_factory",
        [
            lambda: RenoControl(mss=1448),
            lambda: DctcpControl(mss=1448),
            lambda: CubicControl(mss=1448),
        ],
        ids=["reno", "dctcp", "cubic"],
    )
    def test_delivers_all_bytes(self, control_factory):
        _, sender, receiver = run_transfer(1_000_000, control_factory)
        assert sender.done
        assert receiver.received_payload == 1_000_000

    def test_completion_callback_fires_once(self):
        rack = build_rack(servers=2)
        completions = []
        sender, _ = open_connection(
            rack.hosts[0],
            rack.hosts[1],
            DctcpControl(mss=1448),
            on_complete=lambda: completions.append(rack.engine.now),
        )
        sender.send(100_000)
        rack.engine.run_until(1.0)
        assert len(completions) == 1

    def test_multiple_sends_accumulate(self):
        rack = build_rack(servers=2)
        sender, receiver = open_connection(
            rack.hosts[0], rack.hosts[1], DctcpControl(mss=1448)
        )
        sender.send(50_000)
        rack.engine.run_until(0.5)
        sender.send(50_000)
        rack.engine.run_until(1.5)
        assert receiver.received_payload == 100_000


class TestLossRecovery:
    def _tiny_buffer_rack(self):
        """A rack whose ToR buffer is small enough to force loss."""
        config = RackConfig(
            servers=8,
            buffer=BufferConfig(
                shared_bytes=60_000,
                dedicated_bytes_per_queue=0,
                alpha=1.0,
                ecn_threshold_bytes=1e12,  # disable ECN: force real loss
            ),
        )
        return build_rack(servers=8, rack_config=config)

    def test_incast_causes_retransmissions_and_recovers(self):
        rack = self._tiny_buffer_rack()
        receivers = []
        senders = []
        for host in rack.hosts[1:6]:
            sender, receiver = open_connection(
                host, rack.hosts[0], RenoControl(mss=1448, initial_cwnd_segments=40),
                segment_bytes=8 * 1024,
            )
            sender.send(400_000)
            senders.append(sender)
            receivers.append(receiver)
        rack.engine.run_until(3.0)
        assert all(sender.done for sender in senders)
        assert sum(receiver.received_payload for receiver in receivers) == 5 * 400_000
        assert sum(sender.retransmissions for sender in senders) > 0
        assert rack.switch.counters.discard_packets > 0

    def test_retransmit_bit_set_on_retransmissions(self):
        """Section 4.2: retransmitted packets carry the label bit, which
        the sampler counts."""
        rack = self._tiny_buffer_rack()
        senders = []
        for host in rack.hosts[1:6]:
            sender, _ = open_connection(
                host, rack.hosts[0], RenoControl(mss=1448, initial_cwnd_segments=40),
                segment_bytes=8 * 1024,
            )
            sender.send(400_000)
            senders.append(sender)
        rack.engine.run_until(3.0)
        retx_seen = rack.hosts[0].received_bytes  # sanity: traffic flowed
        assert retx_seen > 0
        total_retx = sum(sender.retransmissions for sender in senders)
        assert total_retx > 0


class TestDctcp:
    def test_ecn_reduces_window_without_loss(self):
        """DCTCP backs off on marks: with a low ECN threshold the window
        converges instead of growing until loss."""
        config = RackConfig(
            servers=4,
            buffer=BufferConfig(
                shared_bytes=units.mb(3.6),
                dedicated_bytes_per_queue=units.kb(64),
                alpha=1.0,
                ecn_threshold_bytes=units.kb(120),
            ),
        )
        rack = build_rack(servers=4, rack_config=config)
        # Two senders into one receiver: the 2:1 fan-in builds a queue
        # (a single flow over equal-speed links cannot).
        senders = []
        for host in rack.hosts[1:3]:
            sender, _ = open_connection(host, rack.hosts[0], DctcpControl(mss=1448))
            sender.send(4_000_000)
            senders.append(sender)
        rack.engine.run_until(1.0)
        assert all(sender.done for sender in senders)
        assert rack.switch.counters.ecn_marked_bytes > 0
        assert rack.switch.counters.discard_packets == 0
        assert any(sender.control.alpha > 0.0 for sender in senders)

    def test_alpha_ewma_update(self):
        control = DctcpControl(mss=1000, gain=0.5)
        control._window_end_bytes = 1000
        control.on_ack(1000, ecn_echo=True, now=0.0, rtt=1e-4)
        assert control.alpha == pytest.approx(0.5)

    def test_unmarked_windows_decay_alpha(self):
        control = DctcpControl(mss=1000, gain=0.5)
        control.alpha = 0.8
        control._window_end_bytes = 1000
        control.on_ack(1000, ecn_echo=False, now=0.0, rtt=1e-4)
        assert control.alpha == pytest.approx(0.4)

    def test_marked_window_reduces_cwnd_proportionally(self):
        control = DctcpControl(mss=1000, gain=1.0)
        start_cwnd = control.cwnd
        control._window_end_bytes = 1000
        control.on_ack(1000, ecn_echo=True, now=0.0, rtt=1e-4)
        # alpha becomes 1.0; cwnd scales by (1 - 1/2).
        assert control.cwnd == pytest.approx(start_cwnd / 2)

    def test_invalid_gain_rejected(self):
        with pytest.raises(ValueError):
            DctcpControl(mss=1000, gain=0.0)


class TestCubic:
    def test_loss_applies_beta(self):
        control = CubicControl(mss=1000)
        control.ssthresh = 0  # force congestion avoidance
        control.cwnd = 100_000
        control.on_fast_retransmit(now=1.0)
        assert control.cwnd == pytest.approx(70_000)

    def test_window_grows_toward_wmax(self):
        control = CubicControl(mss=1000)
        control.ssthresh = 0
        control.cwnd = 50_000
        control._w_max = 100_000
        for step in range(200):
            control.on_ack(1000, ecn_echo=False, now=step * 1e-3, rtt=1e-4)
        assert control.cwnd > 50_000

    def test_ignores_ecn(self):
        control = CubicControl(mss=1000)
        before = control.cwnd
        control.on_ack(1000, ecn_echo=True, now=0.0, rtt=1e-4)
        assert control.cwnd >= before  # no ECN reaction

    def test_timeout_collapses_window(self):
        control = CubicControl(mss=1000)
        control.cwnd = 50_000
        control.on_timeout(now=1.0)
        assert control.cwnd == 1000


class TestSenderMechanics:
    def test_rto_lower_bound(self):
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], RenoControl(mss=1448))
        assert sender.rto >= TcpSender.MIN_RTO

    def test_rto_exponential_backoff(self):
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], RenoControl(mss=1448))
        base = sender.rto
        sender._backoff = 3
        assert sender.rto == pytest.approx(base * 8)
        sender._backoff = 100  # capped
        assert sender.rto == pytest.approx(base * 2**TcpSender.MAX_BACKOFF)

    def test_backoff_resets_on_progress(self):
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], RenoControl(mss=1448))
        sender._backoff = 4
        sender.send(10_000)
        rack.engine.run_until(1.0)
        assert sender.done
        assert sender._backoff == 0

    def test_invalid_send_rejected(self):
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], RenoControl(mss=1448))
        with pytest.raises(Exception):
            sender.send(0)

    def test_flight_never_negative(self):
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], DctcpControl(mss=1448))
        sender.send(500_000)
        for _ in range(2000):
            if not rack.engine.step():
                break
            assert sender.flight >= 0

    def test_srtt_estimated(self):
        rack = build_rack(servers=2)
        sender, _ = open_connection(rack.hosts[0], rack.hosts[1], RenoControl(mss=1448))
        sender.send(100_000)
        rack.engine.run_until(1.0)
        assert sender.srtt is not None
        assert 0 < sender.srtt < 0.01
